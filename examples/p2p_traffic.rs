//! Network-utilization analytics over P2P traffic records.
//!
//! The paper's second scenario: "a network administrator may use the
//! recorded link usage information in order to calculate network
//! utilization among different routes or subnets". Each graph record is
//! one session's traffic over the overlay; measures are transferred MB per
//! link.
//!
//! Run with `cargo run --release --example p2p_traffic`.

use graphbi::{AggFn, GraphStore, IoStats, PathAggQuery, QueryExpr};
use graphbi_graph::GraphQuery;
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn main() {
    let d = Dataset::synthesize(&DatasetSpec::gnu(15_000));
    println!(
        "loaded {} traffic records over {} overlay links",
        d.records.len(),
        d.universe.edge_count()
    );
    let queries = graphbi_workload::queries::generate(&d.base, &QuerySpec::uniform(50));
    let store = GraphStore::load(d.universe, &d.records);

    // ----- Route utilization: AVG and MAX transfer along hot routes ------
    println!("\nper-route utilization (first 5 routes with traffic):");
    let mut shown = 0;
    for q in &queries {
        let (avg, _) = store
            .path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Avg))
            .expect("route queries are paths");
        if avg.is_empty() {
            continue;
        }
        let (peak, _) = store
            .path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Max))
            .unwrap();
        let mean: f64 = (0..avg.len()).map(|i| avg.row(i)[0]).sum::<f64>() / avg.len() as f64;
        let max: f64 = (0..peak.len()).map(|i| peak.row(i)[0]).fold(0.0, f64::max);
        println!(
            "  route of {} links: {} sessions, avg {:.2} MB/link, peak link {:.2} MB",
            q.len(),
            avg.len(),
            mean,
            max
        );
        shown += 1;
        if shown == 5 {
            break;
        }
    }

    // ----- Subnet exclusion: sessions using route A but NOT route B ------
    let with_traffic: Vec<&GraphQuery> = queries
        .iter()
        .filter(|q| !store.evaluate(q).0.is_empty())
        .collect();
    if let [a, b, ..] = with_traffic.as_slice() {
        let mut stats = IoStats::new();
        let only_a = store.evaluate_expr(
            &QueryExpr::and_not((*a).clone().into(), (*b).clone().into()),
            &mut stats,
        );
        println!(
            "\nsessions on route 1 avoiding route 2: {} (bitmap ops over {} columns)",
            only_a.len(),
            stats.structural_columns()
        );
    }

    // ----- Top talkers: which sessions moved the most data anywhere ------
    let mut top: Vec<(f64, u32)> = Vec::new();
    for q in &queries {
        let (sums, _) = store
            .path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))
            .unwrap();
        for (i, &rid) in sums.records.iter().enumerate() {
            top.push((sums.row(i)[0], rid));
        }
    }
    top.sort_by(|a, b| b.0.total_cmp(&a.0));
    top.dedup_by_key(|&mut (_, rid)| rid);
    println!("\ntop 3 sessions by route transfer volume:");
    for (mb, rid) in top.iter().take(3) {
        println!("  session {rid}: {mb:.1} MB");
    }
}
