//! A tour of the graph-view machinery (§5): candidate generation, greedy
//! selection, query rewriting and the cost model — printed step by step on
//! the paper's own Figure 2 example.
//!
//! Run with `cargo run --example view_advisor`.

use graphbi::{GraphStore, IoStats};
use graphbi_graph::{GraphQuery, RecordBuilder, Universe};
use graphbi_views::{
    agg_candidates, generate_candidates, interesting_nodes, rewrite_query, select_views, Rewrite,
};

fn main() {
    // ----- Figure 2's three graphs, used as the query workload -----------
    let mut u = Universe::new();
    let q1 = GraphQuery::from_edge_names(&mut u, &[("A", "C"), ("C", "E"), ("A", "B")]);
    let q2 = GraphQuery::from_edge_names(
        &mut u,
        &[
            ("A", "C"),
            ("C", "E"),
            ("A", "D"),
            ("D", "E"),
            ("E", "F"),
            ("F", "G"),
        ],
    );
    let q3 = GraphQuery::from_edge_names(&mut u, &[("A", "D"), ("D", "E"), ("E", "F"), ("F", "G")]);
    let workload = vec![q1, q2, q3];
    let label = |q: &GraphQuery| -> String {
        q.edges()
            .iter()
            .map(|&e| u.edge_label(e))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("workload:");
    for (i, q) in workload.iter().enumerate() {
        println!("  Gq{}: {}", i + 1, label(q));
    }

    // ----- Candidate graph views: the intersection closure (§5.2) --------
    let candidates = generate_candidates(&workload);
    println!("\ncandidate graph views (queries + intersections, superseded removed):");
    for c in &candidates {
        println!(
            "  {}  — usable by {} queries",
            c.edges
                .iter()
                .map(|&e| u.edge_label(e))
                .collect::<Vec<_>>()
                .join(" "),
            c.queries.len()
        );
    }

    // ----- Greedy extended set cover under a budget of 2 -----------------
    let chosen = select_views(&workload, &candidates, 2);
    println!("\ngreedy selection (budget 2):");
    for &i in &chosen {
        println!(
            "  materialize {}",
            candidates[i]
                .edges
                .iter()
                .map(|&e| u.edge_label(e))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    // ----- Rewriting: per-query plans over the selected views ------------
    let views: Vec<_> = chosen
        .iter()
        .map(|&i| candidates[i].edges.clone())
        .collect();
    println!("\nper-query rewrites (bitmaps fetched: views + residual edges):");
    for (i, q) in workload.iter().enumerate() {
        let r = rewrite_query(q, &views);
        println!(
            "  Gq{}: {} views + {} edges = {} bitmaps (oblivious: {})",
            i + 1,
            r.views.len(),
            r.residual_edges.len(),
            r.bitmap_cost(),
            Rewrite::oblivious(q).bitmap_cost()
        );
    }

    // ----- Aggregate-view candidates: interesting nodes (§5.4) -----------
    let paths: Vec<_> = workload
        .iter()
        .flat_map(|q| q.maximal_paths(&u).expect("figure 2 queries are DAGs"))
        .collect();
    let nodes = interesting_nodes(&paths);
    println!(
        "\ninteresting nodes: {}",
        nodes
            .iter()
            .map(|&n| u.node_name(n))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let agg = agg_candidates(&workload, &u).unwrap();
    println!("candidate aggregate views ({} total):", agg.len());
    for c in &agg {
        println!(
            "  [{}]",
            c.nodes
                .iter()
                .map(|&n| u.node_name(n))
                .collect::<Vec<_>>()
                .join(",")
        );
    }

    // ----- End to end on a real store ------------------------------------
    // Load Figure 2's graphs as *records* this time and verify the rewrite
    // fetches fewer columns for identical answers.
    let mut records = Vec::new();
    for q in &workload {
        let mut b = RecordBuilder::new();
        for (i, &e) in q.edges().iter().enumerate() {
            b.add(e, 1.0 + i as f64);
        }
        records.push(b.build());
    }
    let mut store = GraphStore::load(u, &records);
    let target = workload[1].clone();
    let (before, s_before) = store.evaluate(&target);
    store.advise_views(&workload, 2);
    let (after, s_after) = store.evaluate(&target);
    assert_eq!(before, after);
    println!(
        "\nGq2 on the store: {} → {} bitmap columns after materialization, same {} rows",
        s_before.structural_columns(),
        s_after.structural_columns(),
        after.len()
    );
    let mut s = IoStats::new();
    let _ = store.match_records(&target, &mut s);
    println!("done.");
}
