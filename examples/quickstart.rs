//! Quickstart: the paper's Figure 1 supply-chain scenario in miniature.
//!
//! Builds a universe of named locations, loads a handful of delivery
//! records, and runs the three motivating queries of §2:
//!
//! * Q1 — delivery time along a concrete path,
//! * Q2 — cost over a *set* of leased routes (logical OR of graph queries),
//! * Q3 — longest delay via MAX path aggregation.
//!
//! Run with `cargo run --example quickstart`.

use graphbi::{AggFn, GraphStore, IoStats, PathAggQuery, QueryExpr};
use graphbi_graph::{GraphQuery, RecordBuilder, Universe};

fn main() {
    // ----- The universe: production lines, hubs, customer endpoints -----
    let mut u = Universe::new();
    let ad = u.edge_by_names("A", "D"); // production line A → hub D
    let de = u.edge_by_names("D", "E");
    let eg = u.edge_by_names("E", "G");
    let gi = u.edge_by_names("G", "I"); // … → customer endpoint I
    let ch = u.edge_by_names("C", "H"); // leased leg
    let fj = u.edge_by_names("F", "J"); // leased route F→J→K
    let jk = u.edge_by_names("J", "K");
    let ab = u.edge_by_names("A", "B");
    let bf = u.edge_by_names("B", "F");

    // ----- Graph records: traces of individual customer orders -----
    // Measures are shipping hours on each leg.
    let mut orders = Vec::new();
    let mut o1 = RecordBuilder::new(); // fast-track via D,E,G
    o1.add(ad, 2.0).add(de, 1.5).add(eg, 2.5).add(gi, 1.0);
    orders.push(o1.build());
    let mut o2 = RecordBuilder::new(); // same path, slower
    o2.add(ad, 3.0).add(de, 4.0).add(eg, 2.0).add(gi, 2.0);
    orders.push(o2.build());
    let mut o3 = RecordBuilder::new(); // leased routing via B,F,J,K and C,H
    o3.add(ab, 1.0)
        .add(bf, 2.0)
        .add(fj, 3.0)
        .add(jk, 1.0)
        .add(ch, 2.5);
    orders.push(o3.build());

    let store = GraphStore::load(u, &orders);
    println!("loaded {} order records", store.record_count());

    // ----- Q1: delivery time for all articles shipped via [A,D,E,G,I] ----
    let q1 = GraphQuery::from_edges(vec![ad, de, eg, gi]);
    let paq = PathAggQuery::new(q1.clone(), AggFn::Sum);
    let (agg, stats) = store.path_aggregate(&paq).expect("path query is acyclic");
    println!("\nQ1: total delivery time along [A,D,E,G,I]:");
    for (i, &rid) in agg.records.iter().enumerate() {
        println!("  order {rid}: {:.1} h", agg.row(i)[0]);
    }
    println!(
        "  (cost: {} bitmap columns fetched)",
        stats.structural_columns()
    );

    // ----- Q2: orders using either leased route (logical OR) -------------
    let leased_ch = GraphQuery::from_edges(vec![ch]);
    let leased_fjk = GraphQuery::from_edges(vec![fj, jk]);
    let mut stats = IoStats::new();
    let hits = store.evaluate_expr(
        &QueryExpr::or(leased_ch.into(), leased_fjk.clone().into()),
        &mut stats,
    );
    println!(
        "\nQ2: orders shipped via leased routes: {:?}",
        hits.to_vec()
    );
    let (cost, _) = store
        .path_aggregate(&PathAggQuery::new(leased_fjk, AggFn::Sum))
        .unwrap();
    for (i, &rid) in cost.records.iter().enumerate() {
        println!(
            "  order {rid} leased-leg [F,J,K] time: {:.1} h",
            cost.row(i)[0]
        );
    }

    // ----- Q3: longest single-leg delay on the main corridor -------------
    let (worst, _) = store
        .path_aggregate(&PathAggQuery::new(q1, AggFn::Max))
        .unwrap();
    println!("\nQ3: longest leg delay along [A,D,E,G,I]:");
    for (i, &rid) in worst.records.iter().enumerate() {
        println!("  order {rid}: {:.1} h", worst.row(i)[0]);
    }
}
