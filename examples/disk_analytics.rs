//! Disk-resident analytics: the paper's larger-than-memory regime.
//!
//! Builds a dataset, lets the advisor materialize views, writes the whole
//! database to disk, then reopens it *cold* through the disk store and
//! compares the I/O of oblivious vs view-assisted plans — the cost model as
//! actual reads.
//!
//! Run with `cargo run --release --example disk_analytics`.

use graphbi::disk::{save_store, DiskGraphStore};
use graphbi::{AggFn, GraphStore, PathAggQuery};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = Dataset::synthesize(&DatasetSpec::gnu(20_000));
    let queries = graphbi_workload::queries::generate(&d.base, &QuerySpec::zipf(100));
    let mut store = GraphStore::load(d.universe, &d.records);
    println!("{}", store.statistics().render());

    let dir = std::env::temp_dir().join("graphbi-disk-analytics");
    let _ = std::fs::remove_dir_all(&dir);

    // ----- Phase 1: no views, cold cache ---------------------------------
    save_store(&store, &dir)?;
    let disk = DiskGraphStore::open(&dir, 128 << 20)?;
    let mut cold = graphbi::IoStats::new();
    let t0 = std::time::Instant::now();
    for q in &queries {
        let (_, s) = disk.path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))?;
        cold.merge(&s);
    }
    println!(
        "\noblivious, cold cache: {:.1?}, {} disk reads, {:.1} MB",
        t0.elapsed(),
        cold.disk_reads,
        cold.disk_bytes as f64 / 1e6
    );

    // Warm rerun: the buffer pool absorbs everything.
    let mut warm = graphbi::IoStats::new();
    let t0 = std::time::Instant::now();
    for q in &queries {
        let (_, s) = disk.path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))?;
        warm.merge(&s);
    }
    println!(
        "oblivious, warm cache: {:.1?}, {} disk reads",
        t0.elapsed(),
        warm.disk_reads
    );

    // ----- Phase 2: advisor views, cold cache ----------------------------
    store.advise_views(&queries, 50);
    store.advise_agg_views(&queries, AggFn::Sum, 50)?;
    save_store(&store, &dir)?;
    let disk = DiskGraphStore::open(&dir, 128 << 20)?;
    let mut viewed = graphbi::IoStats::new();
    let t0 = std::time::Instant::now();
    for q in &queries {
        let (_, s) = disk.path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))?;
        viewed.merge(&s);
    }
    println!(
        "\nwith views, cold cache: {:.1?}, {} disk reads, {:.1} MB \
         ({} agg-view + {} view-bitmap columns)",
        t0.elapsed(),
        viewed.disk_reads,
        viewed.disk_bytes as f64 / 1e6,
        viewed.agg_view_columns,
        viewed.view_bitmap_columns
    );
    println!(
        "reads cut by {:.0}%, bytes by {:.0}%",
        (1.0 - viewed.disk_reads as f64 / cold.disk_reads as f64) * 100.0,
        (1.0 - viewed.disk_bytes as f64 / cold.disk_bytes as f64) * 100.0
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
