//! Workflow-management BI: cyclic process traces, flattened and analyzed.
//!
//! Process instances bounce between review stages (rework loops); the §6.2
//! flattening turns each trace into a DAG with versioned stage copies, and
//! the store answers latency/rework questions — including zooming a whole
//! stage group into one aggregate node.
//!
//! Run with `cargo run --example workflow_bi`.

use graphbi::ql::QlAnswer;
use graphbi::{AggFn, GraphStore};
use graphbi_graph::{zoom, GraphQuery, Universe};
use graphbi_workload::scenarios::WorkflowScenario;

fn main() {
    let mut u = Universe::new();
    let wf = WorkflowScenario::build(&mut u, 6);
    let instances = wf.instances(&mut u, 5_000, 0.2, 2026);
    println!(
        "5000 process instances over a 6-stage pipeline, 20% rework; \
         universe grew to {} states ({} transitions)",
        u.node_count(),
        u.edge_count()
    );

    // Zoom: treat the middle review stages as one aggregate "review" block
    // before storage, the paper's aggregate-node abstraction.
    let review_members: Vec<_> = wf.states()[2..4].to_vec();
    let region = zoom::Region::define(&mut u, "review", &review_members);
    let zoomed: Vec<_> = instances
        .iter()
        .map(|r| zoom::zoom_out(&mut u, r, &region, AggFn::Sum))
        .collect();

    let store = GraphStore::load(u.clone(), &instances);
    let zoomed_store = GraphStore::load(u, &zoomed);

    // How many instances completed without any rework?
    let QlAnswer::Aggregates(clean) = store
        .query("SUM [stage0,stage1,stage2,stage3,stage4,stage5]")
        .unwrap()
    else {
        unreachable!()
    };
    println!(
        "\nrework-free instances: {} of {}",
        clean.len(),
        store.record_count()
    );
    let avg: f64 = (0..clean.len()).map(|i| clean.row(i)[0]).sum::<f64>() / clean.len() as f64;
    println!("their average end-to-end latency: {avg:.1} h");

    // How many instances bounced out of stage 2 at least once?
    let QlAnswer::Records(bounced) = store.query("[stage2,stage1~2]").unwrap() else {
        unreachable!()
    };
    println!(
        "instances that reworked stage 1 from stage 2: {}",
        bounced.len()
    );

    // On the zoomed store, the whole review block is a single node whose
    // self-edge carries the block's total internal latency.
    let zu = zoomed_store.universe();
    let review = zu.find_node("review").expect("region node");
    let self_edge = zu.find_edge(review, review).expect("region self-edge");
    let q = GraphQuery::from_edges(vec![self_edge]);
    let (block, _) = zoomed_store.evaluate(&q);
    let total: f64 = block.measures.iter().sum();
    println!(
        "\nzoomed store: {} instances spent time inside the review block, \
         {:.0} h in total",
        block.len(),
        total
    );
}
