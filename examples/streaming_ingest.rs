//! Streaming ingest: the README "Writing data" walkthrough, runnable.
//!
//! Publishes a small order database to disk, reopens it read-write as an
//! [`MvccStore`], and exercises the whole write path:
//!
//! * commits land in a CRC32-framed WAL (`wal.gbl`) and are durable when
//!   `commit()` returns — a reopen replays them,
//! * snapshots pin one `(generation, epoch)` and ignore later commits,
//! * `compact()` folds the delta into the next immutable generation and
//!   truncates the WAL; `gc()` sweeps generations no snapshot pins.
//!
//! Run with `cargo run --example streaming_ingest`.

use graphbi::disk::save_store_with;
use graphbi::{GraphStore, MvccStore, QueryRequest, Session};
use graphbi_columnstore::{os_vfs, DeltaOp, Verify};
use graphbi_graph::{GraphQuery, RecordBuilder, Universe};

fn main() {
    // ----- A published base generation: two delivery orders on disk -----
    let mut u = Universe::new();
    let ad = u.edge_by_names("A", "D");
    let de = u.edge_by_names("D", "E");
    let eg = u.edge_by_names("E", "G");

    let mut o1 = RecordBuilder::new();
    o1.add(ad, 2.0).add(de, 1.5).add(eg, 2.5);
    let mut o2 = RecordBuilder::new();
    o2.add(ad, 3.0).add(de, 4.0);
    let base = GraphStore::load(u, &[o1.build(), o2.build()]);

    let dir = std::env::temp_dir().join("graphbi_streaming_ingest");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create example db dir");
    let vfs = os_vfs();
    save_store_with(vfs.as_ref(), &base, &dir).expect("publish base generation");

    let store = MvccStore::open_disk(&dir, 64 << 10, vfs.clone(), Verify::Checksums).expect("open");
    println!(
        "opened generation {} with {} records",
        store.generation(),
        store.record_count()
    );

    // ----- Commit: WAL-append + fsync, then visible -----
    let q = GraphQuery::from_edges(vec![ad, de]);
    let req = QueryRequest::new(q);

    let mut o3 = RecordBuilder::new();
    o3.add(ad, 5.0).add(de, 0.5).add(eg, 1.0);
    let mut o2fix = RecordBuilder::new();
    o2fix.add(ad, 3.0).add(de, 4.0).add(eg, 9.0);
    let epoch = store
        .commit(&[
            DeltaOp::Insert(o3.build()),
            DeltaOp::Update(1, o2fix.build()),
        ])
        .expect("commit");
    println!("committed epoch {epoch}: 1 insert + 1 whole-record update");

    // ----- Snapshot isolation: a pinned reader ignores later commits -----
    let snap = store.snapshot();
    let count_on = |s: &dyn Session| {
        s.execute(&req)
            .expect("query")
            .0
            .into_records()
            .expect("graph request")
            .records
            .len()
    };
    let pinned = count_on(&snap);

    let mut o4 = RecordBuilder::new();
    o4.add(ad, 1.0).add(de, 1.0);
    store
        .commit(&[DeltaOp::Insert(o4.build())])
        .expect("commit o4");
    println!(
        "snapshot still sees {pinned} matches; live store sees {}",
        count_on(&store)
    );
    assert_eq!(pinned, count_on(&snap), "pinned snapshot moved");

    // ----- Durability: a fresh open replays the WAL -----
    let replayed =
        MvccStore::open_disk(&dir, 64 << 10, vfs.clone(), Verify::Checksums).expect("reopen");
    assert_eq!(replayed.epoch(), store.epoch(), "WAL replay lost a commit");
    println!(
        "reopen replayed the WAL to epoch {} ({} records)",
        replayed.epoch(),
        replayed.record_count()
    );

    // ----- Compaction: fold the delta into the next generation -----
    drop(snap); // release the pin so gc() may sweep the old generation
    let generation = store.compact().expect("compact");
    store.gc().expect("gc");
    println!(
        "compacted into generation {generation}; {} records in the new base",
        store.record_count()
    );
    let folded = MvccStore::open_disk(&dir, 64 << 10, vfs, Verify::Checksums).expect("reopen");
    assert_eq!(folded.record_count(), store.record_count());
    assert_eq!(
        count_on(&folded),
        count_on(&store),
        "compaction changed answers"
    );
    println!("post-compaction reopen answers match the live store");

    let _ = std::fs::remove_dir_all(&dir);
}
