//! Supply-chain analytics at workload scale.
//!
//! Synthesizes a road-network delivery dataset (the paper's NY shape),
//! loads it into the column store, and runs a BI session: find slow
//! corridors, compare carriers, and watch materialized views cut the cost
//! of a recurring report.
//!
//! Run with `cargo run --release --example scm_delivery`.

use graphbi::{AggFn, GraphStore, IoStats, PathAggQuery, QueryRequest, Session};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn main() {
    // ----- Synthesize a month of delivery traces -------------------------
    let spec = DatasetSpec::ny(20_000);
    let d = Dataset::synthesize(&spec);
    println!(
        "synthesized {} delivery records, {} measures over {} route legs",
        d.records.len(),
        d.total_measures(),
        d.universe.edge_count()
    );
    let store_records = d.records.len();
    let mut store = GraphStore::load(d.universe, &d.records);
    println!(
        "column store resident size: {:.1} MB ({} vertical partitions)",
        store.size_in_bytes() as f64 / 1e6,
        store.relation().partition_count()
    );

    // ----- The recurring report: 100 corridor delivery-time queries ------
    let report = d.base.walkable(); // keep base alive
    let _ = report;
    let queries = graphbi_workload::queries::generate(&d.base, &QuerySpec::zipf(100));

    let mut oblivious = IoStats::new();
    let mut matches = 0u64;
    let mut slowest: (f64, u32) = (0.0, 0);
    for q in &queries {
        let paq = PathAggQuery::new(q.clone(), AggFn::Sum);
        let (resp, s) = store
            .execute(&QueryRequest::aggregate(paq).oblivious())
            .expect("corridor queries are paths");
        let agg = resp.into_aggregates().expect("aggregate response");
        oblivious.merge(&s);
        matches += agg.len() as u64;
        for (i, &rid) in agg.records.iter().enumerate() {
            if agg.row(i)[0] > slowest.0 {
                slowest = (agg.row(i)[0], rid);
            }
        }
    }
    println!(
        "\nreport over {} corridors: {matches} matching orders (of {store_records})",
        queries.len()
    );
    println!(
        "slowest delivery: order {} at {:.1} h total",
        slowest.1, slowest.0
    );
    println!(
        "oblivious plan cost: {} bitmap + {} measure columns",
        oblivious.structural_columns(),
        oblivious.measure_columns
    );

    // ----- Let the advisor materialize views for the report --------------
    let n_views = store.advise_views(&queries, 50);
    let n_agg = store
        .advise_agg_views(&queries, AggFn::Sum, 50)
        .expect("acyclic workload");
    println!("\nadvisor materialized {n_views} graph views + {n_agg} aggregate views");

    let mut with_views = IoStats::new();
    for q in &queries {
        let paq = PathAggQuery::new(q.clone(), AggFn::Sum);
        let (_, s) = store.path_aggregate(&paq).unwrap();
        with_views.merge(&s);
    }
    println!(
        "rewritten plan cost: {} bitmap(+view) + {} measure + {} agg-view columns",
        with_views.structural_columns(),
        with_views.measure_columns,
        with_views.agg_view_columns
    );
    let before = oblivious.structural_columns() + oblivious.measure_columns;
    let after =
        with_views.structural_columns() + with_views.measure_columns + with_views.agg_view_columns;
    println!(
        "column fetches reduced by {:.0}% for ~{:.1}% extra space",
        (1.0 - after as f64 / before as f64) * 100.0,
        store.relation().view_size_in_bytes() as f64 / store.relation().base_size_in_bytes() as f64
            * 100.0
    );
}
