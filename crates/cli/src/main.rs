//! `graphbi` — command-line front end.
//!
//! ```text
//! graphbi synth <ny|gnu> <records> <dir>     synthesize a dataset into <dir>
//! graphbi stats <dir>                        Table-2 style statistics
//! graphbi query <dir> "<query>"              run a query (paper notation)
//! graphbi advise <dir> <budget> "<q>" ...    select+persist graph views for a workload
//! ```
//!
//! Queries use the paper's bracket notation, e.g. `[A,D,E,G,I]`,
//! `MAX [r12,r13) JOIN [r13,r14]`, `[a,b] AND NOT (c,d)`. A stored database
//! directory holds the column store (`*.gbi`) plus the universe
//! (`universe.txt`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use graphbi::ql::QlAnswer;
use graphbi::{GraphStore, Session};
use graphbi_columnstore::persist;
use graphbi_graph::Universe;
use graphbi_workload::{Dataset, DatasetSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  graphbi synth <ny|gnu> <records> <dir>
  graphbi stats <dir>
  graphbi query <dir> \"<query>\"
  graphbi queryd <dir> <cache_mb> \"<query>\"   (disk-resident, reports I/O)
  graphbi explain <dir> \"<query>\"
  graphbi profile <dir> \"<query>\" [--json <file>]   (EXPLAIN ANALYZE)
  graphbi advise <dir> <budget> \"<query>\" [\"<query>\" ...]
  graphbi serve <dir> <addr> [--mvcc] [--slowlog-file <path>]
                             [--slow-ms <n>] [--sample <n>]
  graphbi connect <addr> query \"<query>\"
  graphbi connect <addr> insert <edge>:<measure> [...]
  graphbi connect <addr> profile \"<query>\"
  graphbi connect <addr> metrics
  graphbi connect <addr> trace <rid>           replay a captured request trace
  graphbi connect <addr> slowlog [n]           recent over-threshold requests
  graphbi connect <addr> top                   one live server snapshot
  graphbi top <addr> [--once]                  refreshing server dashboard";

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [cmd, rest @ ..] => match cmd.as_str() {
            "synth" => synth(rest),
            "stats" => stats(rest),
            "query" => query(rest),
            "queryd" => query_disk(rest),
            "explain" => explain(rest),
            "profile" => profile(rest),
            "advise" => advise(rest),
            "serve" => serve(rest),
            "connect" => connect(rest),
            "top" => top(rest),
            other => Err(format!("unknown command {other:?}")),
        },
        [] => Err("missing command".into()),
    }
}

fn open(dir: &Path) -> Result<GraphStore, String> {
    // A freshly-synthesized database has no views metadata; one touched by
    // `advise` carries it as a generation-named sidecar (format v2), and
    // load_store reattaches its views.
    if persist::has_sidecar(&graphbi_columnstore::OsVfs, dir, "views_meta.txt") {
        graphbi::disk::load_store(dir).map_err(|e| format!("loading: {e}"))
    } else {
        let universe = Universe::load(&dir.join("universe.txt"))
            .map_err(|e| format!("loading universe: {e}"))?;
        let relation = persist::load(dir).map_err(|e| format!("loading relation: {e}"))?;
        Ok(GraphStore::from_relation(universe, relation))
    }
}

fn synth(args: &[String]) -> Result<(), String> {
    let [kind, records, dir] = args else {
        return Err("synth needs: <ny|gnu> <records> <dir>".into());
    };
    let n: usize = records
        .parse()
        .map_err(|_| "record count must be a number")?;
    let spec = match kind.as_str() {
        "ny" => DatasetSpec::ny(n),
        "gnu" => DatasetSpec::gnu(n),
        other => return Err(format!("unknown dataset kind {other:?} (ny or gnu)")),
    };
    let dir = PathBuf::from(dir);
    println!("synthesizing {n} {kind} records…");
    let d = Dataset::synthesize(&spec);
    let store = GraphStore::load(d.universe, &d.records);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    store
        .universe()
        .save(&dir.join("universe.txt"))
        .map_err(|e| format!("saving universe: {e}"))?;
    let bytes = persist::save(store.relation(), &dir).map_err(|e| format!("saving: {e}"))?;
    println!(
        "wrote {} records, {} measures, {:.1} MB to {}",
        store.record_count(),
        store.relation().total_measures(),
        bytes as f64 / 1e6,
        dir.display()
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let [dir] = args else {
        return Err("stats needs: <dir>".into());
    };
    let dir = PathBuf::from(dir);
    let store = open(&dir)?;
    let disk = persist::disk_size(&dir).map_err(|e| e.to_string())?;
    println!("{}", store.statistics().render());
    println!("named nodes      {}", store.universe().node_count());
    println!("partitions       {}", store.relation().partition_count());
    println!("disk size        {:.1} KiB", disk as f64 / 1024.0);
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let [dir, text] = args else {
        return Err("query needs: <dir> \"<query>\"".into());
    };
    let store = open(&PathBuf::from(dir))?;
    let started = std::time::Instant::now();
    let answer = store.query(text).map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    match answer {
        QlAnswer::Records(r) => {
            println!("{} matching records ({:.2?})", r.len(), elapsed);
            for (i, &rid) in r.records.iter().take(10).enumerate() {
                if r.edges.is_empty() {
                    println!("  record {rid}");
                } else {
                    let row: Vec<String> = r.row(i).iter().map(|v| format!("{v:.2}")).collect();
                    println!("  record {rid}: [{}]", row.join(", "));
                }
            }
            if r.len() > 10 {
                println!("  … {} more", r.len() - 10);
            }
        }
        QlAnswer::Aggregates(a) => {
            println!(
                "{} matching records × {} paths ({:.2?})",
                a.len(),
                a.path_count,
                elapsed
            );
            for (i, &rid) in a.records.iter().take(10).enumerate() {
                let row: Vec<String> = a.row(i).iter().map(|v| format!("{v:.2}")).collect();
                println!("  record {rid}: [{}]", row.join(", "));
            }
            if a.len() > 10 {
                println!("  … {} more", a.len() - 10);
            }
        }
        QlAnswer::Ranked(top) => {
            println!("top {} records ({:.2?})", top.len(), elapsed);
            for r in &top {
                println!("  record {}: {:.2}", r.record, r.value);
            }
        }
    }
    Ok(())
}

fn query_disk(args: &[String]) -> Result<(), String> {
    let [dir, cache_mb, text] = args else {
        return Err("queryd needs: <dir> <cache_mb> \"<query>\"".into());
    };
    let cache_mb: usize = cache_mb
        .parse()
        .map_err(|_| "cache size must be a number")?;
    let store = graphbi::disk::DiskGraphStore::open(&PathBuf::from(dir), cache_mb << 20)
        .map_err(|e| e.to_string())?;
    // The disk backend answers through the same Session entry point as
    // every other engine — full statements work, not just plain patterns.
    let req = parse_request(text, store.universe())?;
    let started = std::time::Instant::now();
    let (result, stats) = graphbi::Session::execute(&store, &req).map_err(|e| e.to_string())?;
    println!(
        "{} matching records ({:.2?}); {} disk reads, {:.1} KiB read, \
         {} bitmap + {} measure columns, {} fetches skipped",
        response_len(&result),
        started.elapsed(),
        stats.disk_reads,
        stats.disk_bytes as f64 / 1024.0,
        stats.structural_columns(),
        stats.measure_columns,
        stats.fetches_skipped
    );
    // A second, warm run shows the cache working.
    let started = std::time::Instant::now();
    let (_, warm) = graphbi::Session::execute(&store, &req).map_err(|e| e.to_string())?;
    println!(
        "warm rerun: {:.2?}, {} disk reads",
        started.elapsed(),
        warm.disk_reads
    );
    Ok(())
}

/// Result cardinality of any [`graphbi::Response`] kind.
fn response_len(resp: &graphbi::Response) -> usize {
    match resp {
        graphbi::Response::Records(r) => r.len(),
        graphbi::Response::Matches(b) => usize::try_from(b.len()).unwrap_or(usize::MAX),
        graphbi::Response::Aggregates(a) => a.len(),
    }
}

fn explain(args: &[String]) -> Result<(), String> {
    let [dir, text] = args else {
        return Err("explain needs: <dir> \"<query>\"".into());
    };
    let store = open(&PathBuf::from(dir))?;
    let statement = graphbi::ql::parse(&graphbi::ql::lex(text).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let resolved = graphbi::ql::resolve(&statement, store.universe()).map_err(|e| e.to_string())?;
    let patterns: Vec<graphbi::GraphQuery> = match resolved {
        graphbi::ql::Resolved::Expr(expr) => expr.atoms().into_iter().cloned().collect(),
        graphbi::ql::Resolved::Agg(paq) | graphbi::ql::Resolved::TopAgg(paq, _) => {
            vec![paq.query]
        }
    };
    for (i, q) in patterns.iter().enumerate() {
        if patterns.len() > 1 {
            println!("pattern {}:", i + 1);
        }
        println!("{}", store.explain(q).render(&store));
    }
    Ok(())
}

/// Parses `text` against `universe` into an executable [`QueryRequest`]
/// (top-k statements have no session form and are rejected) — the shared
/// text→request path also used by the server's client.
fn parse_request(text: &str, universe: &Universe) -> Result<graphbi::QueryRequest, String> {
    graphbi::ql::request_from_text(text, universe).map_err(|e| e.to_string())
}

fn profile(args: &[String]) -> Result<(), String> {
    let (dir, text, json_out) = match args {
        [dir, text] => (dir, text, None),
        [dir, text, flag, path] if flag == "--json" => (dir, text, Some(PathBuf::from(path))),
        _ => return Err("profile needs: <dir> \"<query>\" [--json <file>]".into()),
    };
    let dir = PathBuf::from(dir);
    // Same backend choice as `query`: disk-resident once `advise` has
    // persisted views metadata, plain in-memory otherwise.
    let on_disk = persist::has_sidecar(&graphbi_columnstore::OsVfs, &dir, "views_meta.txt");
    let (plain, plain_stats, resp, prof) = if on_disk {
        let store =
            graphbi::disk::DiskGraphStore::open(&dir, 64 << 20).map_err(|e| e.to_string())?;
        let req = parse_request(text, store.universe())?;
        let (plain, plain_stats) =
            graphbi::Session::execute(&store, &req).map_err(|e| e.to_string())?;
        let (resp, prof) = store.profile(&req).map_err(|e| e.to_string())?;
        (plain, plain_stats, resp, prof)
    } else {
        let store = open(&dir)?;
        let req = parse_request(text, store.universe())?;
        let (plain, plain_stats) =
            graphbi::Session::execute(&store, &req).map_err(|e| e.to_string())?;
        let (resp, prof) = store.profile(&req).map_err(|e| e.to_string())?;
        (plain, plain_stats, resp, prof)
    };
    // Tracing must not change the answer or the logical I/O cost. Physical
    // disk traffic legitimately differs between the two runs (the second
    // hits a warm cache), so those two counters are masked.
    if resp != plain {
        return Err("traced run returned a different answer than untraced".into());
    }
    let (mut a, mut b) = (prof.stats, plain_stats);
    a.disk_reads = 0;
    a.disk_bytes = 0;
    b.disk_reads = 0;
    b.disk_bytes = 0;
    if a != b {
        return Err(format!(
            "traced run changed the logical I/O stats: {a:?} vs {b:?}"
        ));
    }
    println!("{}", prof.render());
    if let Some(path) = json_out {
        std::fs::write(&path, prof.render_json()).map_err(|e| e.to_string())?;
        println!("json profile written to {}", path.display());
    }
    Ok(())
}

fn advise(args: &[String]) -> Result<(), String> {
    let [dir, budget, queries @ ..] = args else {
        return Err("advise needs: <dir> <budget> \"<query>\" …".into());
    };
    if queries.is_empty() {
        return Err("advise needs at least one workload query".into());
    }
    let budget: usize = budget.parse().map_err(|_| "budget must be a number")?;
    let dir = PathBuf::from(dir);
    let mut store = open(&dir)?;
    // Parse each workload query down to its structural pattern.
    let mut workload = Vec::new();
    for text in queries {
        let _ = store.query(text).map_err(|e| format!("{text:?}: {e}"))?;
        // Re-resolve to obtain the pattern (query() executes; we want the
        // GraphQuery itself for the advisor).
        let statement = graphbi::ql::parse(&graphbi::ql::lex(text).map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        match graphbi::ql::resolve(&statement, store.universe()).map_err(|e| e.to_string())? {
            graphbi::ql::Resolved::Expr(expr) => {
                for atom in expr.atoms() {
                    workload.push(atom.clone());
                }
            }
            graphbi::ql::Resolved::Agg(paq) | graphbi::ql::Resolved::TopAgg(paq, _) => {
                workload.push(paq.query)
            }
        }
    }
    let before = store.graph_views().len();
    let n = store.advise_views(&workload, budget);
    println!(
        "materialized {n} graph views for {} workload patterns",
        workload.len()
    );
    for v in &store.graph_views()[before..] {
        let labels: Vec<String> = v
            .edges
            .iter()
            .map(|&e| store.universe().edge_label(e))
            .collect();
        println!("  new view: {}", labels.join(" "));
    }
    println!(
        "catalog now holds {} graph views:",
        store.graph_views().len()
    );
    for v in store.graph_views() {
        let labels: Vec<String> = v
            .edges
            .iter()
            .map(|&e| store.universe().edge_label(e))
            .collect();
        println!("  view: {}", labels.join(" "));
    }
    // Persist the updated database (views included, with their metadata).
    graphbi::disk::save_store(&store, &dir).map_err(|e| format!("saving: {e}"))?;
    println!("saved to {}", dir.display());
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let [dir, addr, flags @ ..] = args else {
        return Err(
            "serve needs: <dir> <addr> [--mvcc] [--slowlog-file <path>] [--slow-ms <n>] [--sample <n>]"
                .into(),
        );
    };
    let mut mvcc = false;
    let mut cfg = graphbi_serve::ServeConfig::default();
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mvcc" => mvcc = true,
            "--slowlog-file" => {
                let path = it.next().ok_or("--slowlog-file needs a path")?;
                cfg.slowlog_export = Some(graphbi_serve::SlowlogExport {
                    vfs: std::sync::Arc::new(graphbi_columnstore::OsVfs),
                    path: PathBuf::from(path),
                });
            }
            "--slow-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--slow-ms needs a millisecond count")?;
                cfg.slow_threshold = std::time::Duration::from_millis(ms);
            }
            "--sample" => {
                cfg.sample_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--sample needs a number (sample 1 in N; 0 disables)")?;
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    let store = open(&PathBuf::from(dir))?;
    let store = if mvcc {
        // MVCC sessions: readers pin snapshots while commits proceed.
        graphbi_serve::ServeStore::Mvcc(std::sync::Arc::new(graphbi::MvccStore::new_mem(store)))
    } else {
        graphbi_serve::ServeStore::Shared(graphbi::SharedStore::new(store))
    };
    let server = graphbi_serve::Server::start(store, addr, cfg)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "serving on {} ({})",
        server.addr(),
        if mvcc {
            "mvcc snapshots"
        } else {
            "shared store"
        }
    );
    server.wait();
    Ok(())
}

fn connect(args: &[String]) -> Result<(), String> {
    let [addr, cmd, rest @ ..] = args else {
        return Err("connect needs: <addr> query|insert|profile|metrics …".into());
    };
    let mut client =
        graphbi_serve::Client::connect(addr.as_str()).map_err(|e| format!("connecting: {e}"))?;
    match (cmd.as_str(), rest) {
        ("query", [text]) => {
            let started = std::time::Instant::now();
            let resp = client.query_ql(text).map_err(|e| e.to_string())?;
            let elapsed = started.elapsed();
            match resp {
                graphbi::Response::Records(r) => {
                    println!("{} matching records ({elapsed:.2?})", r.len());
                    for (i, &rid) in r.records.iter().take(10).enumerate() {
                        let row: Vec<String> = r.row(i).iter().map(|v| format!("{v:.2}")).collect();
                        println!("  record {rid}: [{}]", row.join(", "));
                    }
                }
                graphbi::Response::Matches(b) => {
                    println!("{} matching records ({elapsed:.2?})", b.len());
                    for rid in b.iter().take(10) {
                        println!("  record {rid}");
                    }
                }
                graphbi::Response::Aggregates(a) => {
                    println!(
                        "{} matching records × {} paths ({elapsed:.2?})",
                        a.len(),
                        a.path_count
                    );
                    for (i, &rid) in a.records.iter().take(10).enumerate() {
                        let row: Vec<String> = a.row(i).iter().map(|v| format!("{v:.2}")).collect();
                        println!("  record {rid}: [{}]", row.join(", "));
                    }
                }
            }
        }
        ("insert", elems) if !elems.is_empty() => {
            let op = graphbi_serve::protocol::parse_op(&format!("insert {}", elems.join(" ")))
                .map_err(|e| e.to_string())?;
            let (generation, epoch) = client.commit(&[op]).map_err(|e| e.to_string())?;
            println!("committed (generation {generation}, epoch {epoch})");
        }
        ("profile", [text]) => {
            let req = parse_request(text, client.universe())?;
            println!("{}", client.profile(&req).map_err(|e| e.to_string())?);
        }
        ("metrics", []) => print!("{}", client.metrics().map_err(|e| e.to_string())?),
        ("trace", [rid]) => {
            let rid: u64 = rid
                .parse()
                .map_err(|_| "trace needs a numeric request id (from an OK head's id= field)")?;
            println!("{}", client.trace(rid).map_err(|e| e.to_string())?);
        }
        ("slowlog", rest) if rest.len() <= 1 => {
            let n = match rest {
                [n] => Some(n.parse().map_err(|_| "slowlog count must be a number")?),
                _ => None,
            };
            let entries = client.slowlog(n).map_err(|e| e.to_string())?;
            if entries.is_empty() {
                println!("slowlog is empty");
            }
            for entry in entries {
                println!("{entry}");
            }
        }
        ("top", []) => println!("{}", client.top().map_err(|e| e.to_string())?),
        _ => return Err(format!("unknown connect subcommand {cmd:?}")),
    }
    client.quit().map_err(|e| e.to_string())?;
    Ok(())
}

/// A refreshing dashboard over the server's `TOP` verb: one rendered
/// snapshot every 2 seconds (`--once` prints a single snapshot — what
/// scripts and tests use).
fn top(args: &[String]) -> Result<(), String> {
    let (addr, once) = match args {
        [addr] => (addr, false),
        [addr, flag] if flag == "--once" => (addr, true),
        _ => return Err("top needs: <addr> [--once]".into()),
    };
    let mut client =
        graphbi_serve::Client::connect(addr.as_str()).map_err(|e| format!("connecting: {e}"))?;
    loop {
        let snapshot = client.top().map_err(|e| e.to_string())?;
        if once {
            println!("{}", render_top_text(&snapshot)?);
            break;
        }
        // Clear the screen and repaint, like top(1).
        print!("\x1b[2J\x1b[H");
        println!("graphbi top — {addr}");
        println!("{}", render_top_text(&snapshot)?);
        std::thread::sleep(std::time::Duration::from_secs(2));
    }
    client.quit().map_err(|e| e.to_string())?;
    Ok(())
}

/// Renders the `TOP` JSON snapshot as aligned human-readable lines.
fn render_top_text(snapshot: &str) -> Result<String, String> {
    use graphbi_obs::json::Json;
    let doc = graphbi_obs::json::parse(snapshot).map_err(|e| format!("bad TOP json: {e}"))?;
    let num = |key: &str| {
        doc.get(key)
            .and_then(Json::as_f64)
            .map_or_else(|| "?".into(), |v| format!("{v}"))
    };
    let mut out = String::new();
    out.push_str(&format!(
        "connections {:>8}   queue depth {:>6}   in-flight batch {:>5}\n",
        num("connections"),
        num("queue_depth"),
        num("inflight_batch")
    ));
    out.push_str(&format!(
        "generation  {:>8}   epoch       {:>6}   kernel {}\n",
        num("generation"),
        num("epoch"),
        doc.get("kernel")
            .and_then(Json::as_str)
            .unwrap_or("?")
    ));
    out.push_str(&format!(
        "requests    {:>8}   commits     {:>6}   busy   {:>6}\n",
        num("requests_total"),
        num("commits_total"),
        num("busy_total")
    ));
    out.push_str(&format!(
        "read bytes  {:>8}   write bytes {:>6}   wal commits {:>4}   compactions {:>3}\n",
        num("read_bytes_total"),
        num("write_bytes_total"),
        num("wal_commits_total"),
        num("compactions_total")
    ));
    if let Some(verbs) = doc.get("verbs") {
        out.push_str("verb        count      p50_us     p99_us\n");
        for name in ["query", "batch", "commit", "profile"] {
            if let Some(v) = verbs.get(name) {
                let f = |k: &str| {
                    v.get(k)
                        .and_then(Json::as_f64)
                        .map_or_else(|| "?".into(), |x| format!("{x}"))
                };
                out.push_str(&format!(
                    "{name:<10} {:>6} {:>11} {:>10}\n",
                    f("count"),
                    f("p50_us"),
                    f("p99_us")
                ));
            }
        }
    }
    if let Some(rec) = doc.get("recorder") {
        let f = |k: &str| {
            rec.get(k)
                .and_then(Json::as_f64)
                .map_or_else(|| "?".into(), |x| format!("{x}"))
        };
        out.push_str(&format!(
            "recorder: {} requests, {} captured, {} slow, sampling 1/{}, threshold {} ms",
            f("requests"),
            f("captured"),
            f("slow"),
            f("sample_every"),
            f("slow_threshold_ms")
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("graphbi-cli-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| (*p).to_string()).collect()
    }

    #[test]
    fn usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&s(&["synth", "ny"])).is_err());
        assert!(run(&s(&["synth", "mars", "10", "/tmp/x"])).is_err());
        assert!(run(&s(&["stats"])).is_err());
        assert!(run(&s(&["queryd", "/nonexistent", "nan", "[a]"])).is_err());
        assert!(run(&s(&["serve", "/nonexistent"])).is_err());
        assert!(run(&s(&["connect"])).is_err());
        assert!(run(&s(&["connect", "127.0.0.1:1", "metrics"])).is_err());
    }

    #[test]
    fn serve_connect_round_trip() {
        let dir = tmpdir("serve");
        let dirs = dir.to_string_lossy().to_string();
        run(&s(&["synth", "ny", "120", &dirs])).unwrap();
        let uni = std::fs::read_to_string(dir.join("universe.txt")).unwrap();
        let nodes: Vec<&str> = uni.lines().filter_map(|l| l.strip_prefix("n ")).collect();
        let edge_line = uni.lines().find_map(|l| l.strip_prefix("e ")).unwrap();
        let (a, b) = edge_line.split_once(' ').unwrap();
        let (a, b): (usize, usize) = (a.parse().unwrap(), b.parse().unwrap());
        let q = format!("[{},{}]", nodes[a], nodes[b]);

        let store = open(&dir).unwrap();
        let server = graphbi_serve::Server::start(
            graphbi_serve::ServeStore::Mvcc(std::sync::Arc::new(graphbi::MvccStore::new_mem(
                store,
            ))),
            "127.0.0.1:0",
            graphbi_serve::ServeConfig::default(),
        )
        .unwrap();
        let addr = server.addr().to_string();
        run(&s(&["connect", &addr, "query", &q])).unwrap();
        run(&s(&["connect", &addr, "query", &format!("SUM {q}")])).unwrap();
        run(&s(&["connect", &addr, "profile", &q])).unwrap();
        run(&s(&["connect", &addr, "metrics"])).unwrap();
        run(&s(&["connect", &addr, "insert", "0:1.5", "1:2.0"])).unwrap();
        // Introspection verbs over the CLI: a PROFILE is always captured,
        // so some trace id is replayable; slowlog and top always answer.
        run(&s(&["connect", &addr, "slowlog"])).unwrap();
        run(&s(&["connect", &addr, "slowlog", "5"])).unwrap();
        run(&s(&["connect", &addr, "top"])).unwrap();
        run(&s(&["top", &addr, "--once"])).unwrap();
        {
            let mut client = graphbi_serve::Client::connect(addr.as_str()).unwrap();
            let req = parse_request(&q, client.universe()).unwrap();
            client.profile(&req).unwrap();
            let rid = client.last_request_id().expect("profile reply carries id=");
            run(&s(&["connect", &addr, "trace", &rid.to_string()])).unwrap();
            assert!(run(&s(&["connect", &addr, "trace", "99999999"])).is_err());
            client.quit().unwrap();
        }
        assert!(run(&s(&["connect", &addr, "insert", "notanop"])).is_err());
        assert!(run(&s(&["connect", &addr, "bogus"])).is_err());
        assert!(run(&s(&["connect", &addr, "trace", "notanumber"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synth_stats_query_advise_cycle() {
        let dir = tmpdir("cycle");
        let dirs = dir.to_string_lossy().to_string();
        run(&s(&["synth", "ny", "300", &dirs])).unwrap();
        run(&s(&["stats", &dirs])).unwrap();
        // Find a real edge to query from the universe file.
        let uni = std::fs::read_to_string(dir.join("universe.txt")).unwrap();
        let nodes: Vec<&str> = uni.lines().filter_map(|l| l.strip_prefix("n ")).collect();
        let edge_line = uni
            .lines()
            .find_map(|l| l.strip_prefix("e "))
            .expect("at least one edge");
        let (a, b) = edge_line.split_once(' ').unwrap();
        let (a, b): (usize, usize) = (a.parse().unwrap(), b.parse().unwrap());
        let q = format!("[{},{}]", nodes[a], nodes[b]);
        run(&s(&["query", &dirs, &q])).unwrap();
        run(&s(&["explain", &dirs, &q])).unwrap();
        // Memory-backend profile (no views metadata yet).
        run(&s(&["profile", &dirs, &q])).unwrap();
        run(&s(&["advise", &dirs, "2", &q])).unwrap();
        run(&s(&["queryd", &dirs, "16", &q])).unwrap();
        // Disk-backend profile, with a parseable JSON snapshot.
        let json_path = dir.join("profile.json");
        let json_s = json_path.to_string_lossy().to_string();
        run(&s(&["profile", &dirs, &q, "--json", &json_s])).unwrap();
        let doc = graphbi_obs::json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(
            doc.get("backend").and_then(graphbi_obs::json::Json::as_str),
            Some("disk")
        );
        for phase in graphbi::PHASE_NAMES {
            assert!(
                doc.get("phases").and_then(|p| p.get(phase)).is_some(),
                "phase {phase} missing from profile json"
            );
        }
        // Unknown node errors cleanly.
        assert!(run(&s(&["query", &dirs, "[nosuchnode,alsonot]"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
