//! Structural analysis of query graphs: sources, terminals, maximal paths.
//!
//! §3.3: "a graph query `Gq` can be described as a set of maximal paths from
//! the source nodes of `Gq` to its terminal nodes". This module materializes
//! that view from an edge set: it rebuilds the digraph through the universe,
//! checks acyclicity (required for path aggregation, §6.2) and enumerates the
//! maximal paths `[Src(Gq), Ter(Gq)]*`.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{EdgeId, NodeId, Universe};
use crate::path::Path;
use crate::GraphError;

/// The digraph structure of a query (node self-edges excluded — they are
/// measures, not topology).
#[derive(Debug, Clone)]
pub struct QueryShape {
    /// Outgoing adjacency, deterministic order.
    succ: BTreeMap<NodeId, Vec<NodeId>>,
    /// Incoming adjacency.
    pred: BTreeMap<NodeId, Vec<NodeId>>,
    nodes: BTreeSet<NodeId>,
}

impl QueryShape {
    /// Builds the shape of an edge set, resolving endpoints via `universe`.
    pub fn from_edges(edges: &[EdgeId], universe: &Universe) -> QueryShape {
        let mut succ: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut pred: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut nodes = BTreeSet::new();
        for &e in edges {
            let (s, t) = universe.endpoints(e);
            nodes.insert(s);
            nodes.insert(t);
            if s != t {
                succ.entry(s).or_default().push(t);
                pred.entry(t).or_default().push(s);
            }
        }
        for v in succ.values_mut().chain(pred.values_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        QueryShape { succ, pred, nodes }
    }

    /// All nodes touched by the query.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Successors of `n`.
    pub fn successors(&self, n: NodeId) -> &[NodeId] {
        self.succ.get(&n).map_or(&[], Vec::as_slice)
    }

    /// Predecessors of `n`.
    pub fn predecessors(&self, n: NodeId) -> &[NodeId] {
        self.pred.get(&n).map_or(&[], Vec::as_slice)
    }

    /// `Src(Gq)`: nodes with no incoming edge.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|n| self.predecessors(*n).is_empty())
            .collect()
    }

    /// `Ter(Gq)`: nodes with no outgoing edge.
    pub fn terminals(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|n| self.successors(*n).is_empty())
            .collect()
    }

    /// Kahn's algorithm: true when the (self-loop-free) digraph is acyclic.
    pub fn is_dag(&self) -> bool {
        let mut indeg: BTreeMap<NodeId, usize> = self
            .nodes
            .iter()
            .map(|&n| (n, self.predecessors(n).len()))
            .collect();
        let mut queue: Vec<NodeId> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut seen = 0usize;
        while let Some(n) = queue.pop() {
            seen += 1;
            for &m in self.successors(n) {
                let d = indeg.get_mut(&m).expect("successor is a node");
                *d -= 1;
                if *d == 0 {
                    queue.push(m);
                }
            }
        }
        seen == self.nodes.len()
    }

    /// The maximal paths `[Src(Gq), Ter(Gq)]*` (§3.3), as closed paths in
    /// deterministic order.
    ///
    /// Requires acyclicity: with a cycle the set of source→terminal paths is
    /// not well defined (and may be empty even for non-empty queries), which
    /// is exactly why §6.2 flattens records into DAGs before aggregation.
    pub fn maximal_paths(&self) -> Result<Vec<Path>, GraphError> {
        if !self.is_dag() {
            return Err(GraphError::CyclicQuery);
        }
        let terminals: BTreeSet<NodeId> = self.terminals().into_iter().collect();
        let mut out = Vec::new();
        for s in self.sources() {
            let mut stack = vec![s];
            self.dfs_paths(&mut stack, &terminals, &mut out);
        }
        Ok(out)
    }

    fn dfs_paths(
        &self,
        stack: &mut Vec<NodeId>,
        terminals: &BTreeSet<NodeId>,
        out: &mut Vec<Path>,
    ) {
        let last = *stack.last().expect("stack non-empty");
        if terminals.contains(&last) {
            out.push(Path::closed(stack.clone()).expect("stack non-empty"));
            return;
        }
        for &next in self.successors(last) {
            stack.push(next);
            self.dfs_paths(stack, terminals, out);
            stack.pop();
        }
    }

    /// All simple paths from any node in `from` to any node in `to` — the
    /// expansion of the composite path `[from, to]*`.
    ///
    /// Unlike [`QueryShape::maximal_paths`] this works on cyclic shapes by
    /// restricting to simple paths.
    pub fn paths_between(&self, from: &[NodeId], to: &[NodeId]) -> Vec<Path> {
        let targets: BTreeSet<NodeId> = to.iter().copied().collect();
        let mut out = Vec::new();
        for &s in from {
            if !self.nodes.contains(&s) {
                continue;
            }
            let mut stack = vec![s];
            let mut on_path: BTreeSet<NodeId> = [s].into();
            self.dfs_between(&mut stack, &mut on_path, &targets, &mut out);
        }
        out
    }

    fn dfs_between(
        &self,
        stack: &mut Vec<NodeId>,
        on_path: &mut BTreeSet<NodeId>,
        targets: &BTreeSet<NodeId>,
        out: &mut Vec<Path>,
    ) {
        let last = *stack.last().expect("stack non-empty");
        if targets.contains(&last) && stack.len() > 1 {
            out.push(Path::closed(stack.clone()).expect("stack non-empty"));
            // Do not return: longer paths through a target are still paths.
        }
        for &next in self.successors(last) {
            if on_path.contains(&next) {
                continue; // simple paths only
            }
            stack.push(next);
            on_path.insert(next);
            self.dfs_between(stack, on_path, targets, out);
            on_path.remove(&next);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 1 SCM record topology (region arrows only).
    fn figure1(u: &mut Universe) -> Vec<EdgeId> {
        // A→D, D→E, E→G, G→I, A→B, B→F, F→J, J→K, C→H, H→K, B? — keep to a
        // representative subset with sources {A, C} and terminals {I, K}.
        [
            ("A", "D"),
            ("D", "E"),
            ("E", "G"),
            ("G", "I"),
            ("A", "B"),
            ("B", "F"),
            ("F", "J"),
            ("J", "K"),
            ("C", "H"),
            ("H", "K"),
        ]
        .iter()
        .map(|(s, t)| u.edge_by_names(s, t))
        .collect()
    }

    #[test]
    fn sources_and_terminals() {
        let mut u = Universe::new();
        let edges = figure1(&mut u);
        let shape = QueryShape::from_edges(&edges, &u);
        let names = |ns: Vec<NodeId>| -> Vec<&str> { ns.iter().map(|&n| u.node_name(n)).collect() };
        assert_eq!(names(shape.sources()), vec!["A", "C"]);
        assert_eq!(names(shape.terminals()), vec!["I", "K"]);
        assert!(shape.is_dag());
    }

    #[test]
    fn maximal_paths_enumerates_all_source_terminal_paths() {
        let mut u = Universe::new();
        let edges = figure1(&mut u);
        let shape = QueryShape::from_edges(&edges, &u);
        let paths = shape.maximal_paths().unwrap();
        let rendered: Vec<String> = paths.iter().map(|p| p.display(&u).to_string()).collect();
        assert_eq!(rendered, vec!["[A,D,E,G,I]", "[A,B,F,J,K]", "[C,H,K]"]);
    }

    #[test]
    fn cyclic_query_rejected_for_maximal_paths() {
        let mut u = Universe::new();
        let edges = vec![
            u.edge_by_names("A", "B"),
            u.edge_by_names("B", "C"),
            u.edge_by_names("C", "A"),
        ];
        let shape = QueryShape::from_edges(&edges, &u);
        assert!(!shape.is_dag());
        assert_eq!(shape.maximal_paths(), Err(GraphError::CyclicQuery));
    }

    #[test]
    fn self_edges_do_not_affect_topology() {
        let mut u = Universe::new();
        let a = u.node("A");
        let b = u.node("B");
        let edges = vec![u.edge(a, b), u.node_edge(a), u.node_edge(b)];
        let shape = QueryShape::from_edges(&edges, &u);
        assert!(shape.is_dag());
        let paths = shape.maximal_paths().unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes(), &[a, b]);
    }

    #[test]
    fn paths_between_expands_composite_paths() {
        let mut u = Universe::new();
        // Diamond: A→B→D, A→C→D plus D→E.
        let edges = vec![
            u.edge_by_names("A", "B"),
            u.edge_by_names("B", "D"),
            u.edge_by_names("A", "C"),
            u.edge_by_names("C", "D"),
            u.edge_by_names("D", "E"),
        ];
        let shape = QueryShape::from_edges(&edges, &u);
        let a = u.find_node("A").unwrap();
        let d = u.find_node("D").unwrap();
        let paths = shape.paths_between(&[a], &[d]);
        let mut rendered: Vec<String> = paths.iter().map(|p| p.display(&u).to_string()).collect();
        rendered.sort();
        assert_eq!(rendered, vec!["[A,B,D]", "[A,C,D]"]);
    }

    #[test]
    fn paths_between_handles_cycles_via_simple_paths() {
        let mut u = Universe::new();
        let edges = vec![
            u.edge_by_names("A", "B"),
            u.edge_by_names("B", "A"),
            u.edge_by_names("B", "C"),
        ];
        let shape = QueryShape::from_edges(&edges, &u);
        let a = u.find_node("A").unwrap();
        let c = u.find_node("C").unwrap();
        let paths = shape.paths_between(&[a], &[c]);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].display(&u).to_string(), "[A,B,C]");
    }
}
