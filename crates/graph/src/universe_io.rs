//! Universe persistence.
//!
//! The master relation's columns are meaningless without the naming scheme
//! that maps edge ids to named entities, so a stored database carries its
//! universe alongside (a line-oriented text file — names are user-facing
//! strings, and the file doubles as documentation of the schema).
//!
//! Format (`universe.txt`):
//!
//! ```text
//! graphbi-universe v1
//! n <name>            -- one per node, in NodeId order
//! e <src-id> <tgt-id> -- one per edge, in EdgeId order
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::ids::{NodeId, Universe};

/// Errors from universe (de)serialization.
#[derive(Debug)]
pub enum UniverseIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed file contents.
    Format {
        /// Offending line number (1-based).
        line: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for UniverseIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UniverseIoError::Io(e) => write!(f, "io error: {e}"),
            UniverseIoError::Format { line, what } => {
                write!(f, "bad universe file at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for UniverseIoError {}

impl From<std::io::Error> for UniverseIoError {
    fn from(e: std::io::Error) -> Self {
        UniverseIoError::Io(e)
    }
}

impl Universe {
    /// Renders the universe in its line-oriented text format — the byte
    /// payload of [`Universe::save`], exposed so callers can route it
    /// through other transports (e.g. a store sidecar).
    pub fn to_text(&self) -> String {
        let mut out = String::from("graphbi-universe v1\n");
        for i in 0..self.node_count() {
            out.push_str(&format!("n {}\n", self.node_name(NodeId(i as u32))));
        }
        for (_, s, t) in self.edges() {
            out.push_str(&format!("e {} {}\n", s.0, t.0));
        }
        out
    }

    /// Parses the text format produced by [`Universe::to_text`].
    pub fn parse_text(text: &str) -> Result<Universe, UniverseIoError> {
        Universe::parse_lines(text.lines().map(|l| Ok(l.to_owned())))
    }

    /// Writes the universe to `path`.
    pub fn save(&self, path: &Path) -> Result<(), UniverseIoError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(self.to_text().as_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads a universe previously written by [`Universe::save`].
    pub fn load(path: &Path) -> Result<Universe, UniverseIoError> {
        let r = BufReader::new(std::fs::File::open(path)?);
        Universe::parse_lines(r.lines())
    }

    fn parse_lines(
        lines: impl Iterator<Item = std::io::Result<String>>,
    ) -> Result<Universe, UniverseIoError> {
        let mut u = Universe::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            let lineno = i + 1;
            if i == 0 {
                if line.trim() != "graphbi-universe v1" {
                    return Err(UniverseIoError::Format {
                        line: lineno,
                        what: "missing header",
                    });
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            match line.split_once(' ') {
                Some(("n", name)) => {
                    u.node(name);
                }
                Some(("e", pair)) => {
                    let (s, t) = pair.split_once(' ').ok_or(UniverseIoError::Format {
                        line: lineno,
                        what: "edge needs two node ids",
                    })?;
                    let parse = |x: &str| {
                        x.parse::<u32>().map_err(|_| UniverseIoError::Format {
                            line: lineno,
                            what: "node id not a number",
                        })
                    };
                    let (s, t) = (parse(s)?, parse(t)?);
                    let max = u.node_count() as u32;
                    if s >= max || t >= max {
                        return Err(UniverseIoError::Format {
                            line: lineno,
                            what: "edge references unknown node",
                        });
                    }
                    u.edge(NodeId(s), NodeId(t));
                }
                _ => {
                    return Err(UniverseIoError::Format {
                        line: lineno,
                        what: "unknown record kind",
                    })
                }
            }
        }
        Ok(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("graphbi-universe-{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_ids_and_names() {
        let mut u = Universe::new();
        let a = u.node("hub A");
        let b = u.node("B~2");
        let ab = u.edge(a, b);
        let self_a = u.node_edge(a);
        let path = tmpfile("roundtrip");
        u.save(&path).unwrap();
        let back = Universe::load(&path).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 2);
        assert_eq!(back.find_node("hub A"), Some(a));
        assert_eq!(back.find_node("B~2"), Some(b));
        assert_eq!(back.find_edge(a, b), Some(ab));
        assert_eq!(back.find_edge(a, a), Some(self_a));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_missing_header_and_bad_edges() {
        let path = tmpfile("bad");
        std::fs::write(&path, "nonsense\n").unwrap();
        assert!(matches!(
            Universe::load(&path),
            Err(UniverseIoError::Format { line: 1, .. })
        ));
        std::fs::write(&path, "graphbi-universe v1\nn A\ne 0 7\n").unwrap();
        assert!(matches!(
            Universe::load(&path),
            Err(UniverseIoError::Format { line: 3, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn text_round_trip_matches_file_round_trip() {
        let mut u = Universe::new();
        let a = u.node("A");
        let b = u.node("B");
        u.edge(a, b);
        let text = u.to_text();
        let back = Universe::parse_text(&text).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        assert_eq!(back.to_text(), text);
        assert!(Universe::parse_text("nonsense\n").is_err());
    }

    #[test]
    fn empty_universe_round_trips() {
        let u = Universe::new();
        let path = tmpfile("empty");
        u.save(&path).unwrap();
        let back = Universe::load(&path).unwrap();
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
