//! Cycle removal by node versioning (§3.1, §6.2).
//!
//! Graph queries are insensitive to cycles, but *path aggregation* needs
//! acyclic records: summing "the delivery time from the first departure at A"
//! requires distinguishing the first visit of A from a later one. The paper
//! flattens each record into a DAG by giving repeated visits fresh versioned
//! identifiers (`A, A~2, A~3, …`), using the same deterministic naming scheme
//! for data and queries so they keep matching each other.
//!
//! Two entry points:
//!
//! * [`flatten_walk`] — for records born as a visit sequence (RFID traces,
//!   random-walk synthesis): each revisit of a node becomes its next version.
//! * [`flatten_to_dag`] — for records born as arbitrary digraphs: a DFS from
//!   the sources redirects every back edge to a fresh version of its target,
//!   preserving all edges and measures while guaranteeing acyclicity.

use std::collections::HashMap;

use crate::ids::{EdgeId, NodeId, Universe};
use crate::record::{GraphRecord, RecordBuilder};

/// Flattens a node walk with per-step measures into an acyclic record.
///
/// `steps[i]` is the measure of the edge from `walk[i]` to `walk[i+1]`, so
/// `steps.len() == walk.len() - 1`. The paper's example — A, B, C, A, D, E —
/// becomes edges `(A,B), (B,C), (C,A~2), (A~2,D), (D,E)`.
///
/// # Panics
///
/// Panics when `steps.len() + 1 != walk.len()`.
pub fn flatten_walk(universe: &mut Universe, walk: &[NodeId], steps: &[f64]) -> GraphRecord {
    let mut builder = RecordBuilder::with_capacity(steps.len());
    let Some(&first) = walk.first() else {
        assert!(steps.is_empty(), "an empty walk has no step measures");
        return builder.build();
    };
    assert_eq!(
        steps.len() + 1,
        walk.len(),
        "a walk of n nodes has n-1 step measures"
    );
    let mut visits: HashMap<NodeId, u32> = HashMap::new();
    visits.insert(first, 1);
    let mut current = first;
    for (i, &next_base) in walk[1..].iter().enumerate() {
        let seen = visits.entry(next_base).or_insert(0);
        *seen += 1;
        let next = if *seen == 1 {
            next_base
        } else {
            universe.versioned_node(next_base, *seen)
        };
        let edge = universe.edge(current, next);
        builder.add_combining(edge, steps[i], |a, b| a + b);
        current = next;
    }
    builder.build()
}

/// Flattens an arbitrary measured digraph into an acyclic record.
///
/// Runs a DFS from every source (and then from any still-unvisited node, to
/// cover source-free cycles). Tree/forward/cross edges keep their endpoints;
/// every *back edge* — one that would close a cycle — is redirected to a
/// fresh version of its target, as in the paper's `(D1, A2)` example.
pub fn flatten_to_dag(universe: &mut Universe, edges: &[(NodeId, NodeId, f64)]) -> GraphRecord {
    let mut succ: HashMap<NodeId, Vec<(NodeId, f64)>> = HashMap::new();
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    let mut order: Vec<NodeId> = Vec::new();
    for &(s, t, m) in edges {
        if !succ.contains_key(&s) {
            order.push(s);
        }
        succ.entry(s).or_default().push((t, m));
        if !succ.contains_key(&t) && !indeg.contains_key(&t) {
            order.push(t);
        }
        *indeg.entry(t).or_insert(0) += 1;
        indeg.entry(s).or_insert(0);
    }
    for targets in succ.values_mut() {
        targets.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        New,
        Active,
        Done,
    }
    let mut state: HashMap<NodeId, State> = HashMap::new();
    let mut versions: HashMap<NodeId, u32> = HashMap::new();
    let mut builder = RecordBuilder::with_capacity(edges.len());

    // Deterministic root order: true sources first, then leftovers (cycles
    // with no source), both in first-appearance order.
    let mut roots: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|n| indeg.get(n).copied().unwrap_or(0) == 0)
        .collect();
    roots.extend(
        order
            .iter()
            .copied()
            .filter(|n| indeg.get(n).copied().unwrap_or(0) > 0),
    );

    // Iterative DFS with an explicit exit marker so Active state is precise.
    for root in roots {
        if *state.get(&root).unwrap_or(&State::New) != State::New {
            continue;
        }
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((node, exiting)) = stack.pop() {
            if exiting {
                state.insert(node, State::Done);
                continue;
            }
            if *state.get(&node).unwrap_or(&State::New) != State::New {
                continue;
            }
            state.insert(node, State::Active);
            stack.push((node, true));
            if let Some(targets) = succ.get(&node).cloned() {
                // Push in reverse so smaller targets are explored first.
                for &(target, m) in targets.iter().rev() {
                    let dest = if *state.get(&target).unwrap_or(&State::New) == State::Active {
                        // Back edge: redirect to a fresh version (a DAG sink).
                        let v = versions.entry(target).or_insert(1);
                        *v += 1;
                        universe.versioned_node(target, *v)
                    } else {
                        target
                    };
                    let edge: EdgeId = universe.edge(node, dest);
                    builder.add_combining(edge, m, |a, b| a + b);
                    if dest == target {
                        stack.push((target, false));
                    }
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::QueryShape;

    fn names(u: &Universe, r: &GraphRecord) -> Vec<(String, String)> {
        r.edges()
            .iter()
            .map(|&(e, _)| {
                let (s, t) = u.endpoints(e);
                (u.node_name(s).to_owned(), u.node_name(t).to_owned())
            })
            .collect()
    }

    #[test]
    fn paper_walk_example() {
        // §6.2: A, B, C, A, D, E → (A,B),(B,C),(C,A~2),(A~2,D),(D,E).
        let mut u = Universe::new();
        let walk: Vec<NodeId> = ["A", "B", "C", "A", "D", "E"]
            .iter()
            .map(|n| u.node(n))
            .collect();
        let r = flatten_walk(&mut u, &walk, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut got = names(&u, &r);
        got.sort();
        let mut expect = vec![
            ("A".into(), "B".into()),
            ("B".into(), "C".into()),
            ("C".into(), "A~2".into()),
            ("A~2".into(), "D".into()),
            ("D".into(), "E".into()),
        ];
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn walk_result_is_acyclic_and_preserves_measure_sum() {
        let mut u = Universe::new();
        let walk: Vec<NodeId> = ["A", "B", "A", "B", "A"]
            .iter()
            .map(|n| u.node(n))
            .collect();
        let steps = [1.0, 2.0, 3.0, 4.0];
        let r = flatten_walk(&mut u, &walk, &steps);
        let edge_ids: Vec<EdgeId> = r.edges().iter().map(|&(e, _)| e).collect();
        assert!(QueryShape::from_edges(&edge_ids, &u).is_dag());
        let total: f64 = r.edges().iter().map(|&(_, m)| m).sum();
        assert_eq!(total, steps.iter().sum::<f64>());
    }

    #[test]
    fn repeated_edge_in_walk_accumulates() {
        let mut u = Universe::new();
        // A→B and later A~2→B~2 are distinct edges; but a direct repetition
        // of the same versioned transition merges measures.
        let a = u.node("A");
        let b = u.node("B");
        let r = flatten_walk(&mut u, &[a, b], &[2.5]);
        assert_eq!(r.edge_count(), 1);
        assert_eq!(r.measure(u.find_edge(a, b).unwrap()), Some(2.5));
    }

    #[test]
    fn dag_flattening_redirects_back_edges() {
        let mut u = Universe::new();
        let a = u.node("A");
        let d = u.node("D");
        // Cycle A→D→A plus exit D→E (paper's damaged-shipment example).
        let e = u.node("E");
        let r = flatten_to_dag(&mut u, &[(a, d, 1.0), (d, a, 2.0), (d, e, 3.0)]);
        let edge_ids: Vec<EdgeId> = r.edges().iter().map(|&(ed, _)| ed).collect();
        assert!(QueryShape::from_edges(&edge_ids, &u).is_dag());
        let got = names(&u, &r);
        assert!(got.contains(&("A".into(), "D".into())));
        assert!(got.contains(&("D".into(), "A~2".into())));
        assert!(got.contains(&("D".into(), "E".into())));
        let total: f64 = r.edges().iter().map(|&(_, m)| m).sum();
        assert_eq!(total, 6.0);
    }

    #[test]
    fn dag_flattening_keeps_acyclic_graphs_unchanged() {
        let mut u = Universe::new();
        let a = u.node("A");
        let b = u.node("B");
        let c = u.node("C");
        let input = [(a, b, 1.0), (a, c, 2.0), (b, c, 3.0)];
        let r = flatten_to_dag(&mut u, &input);
        assert_eq!(r.edge_count(), 3);
        assert_eq!(u.node_count(), 3, "no versions should be created");
    }

    #[test]
    fn dag_flattening_handles_sourceless_cycle() {
        let mut u = Universe::new();
        let a = u.node("A");
        let b = u.node("B");
        let r = flatten_to_dag(&mut u, &[(a, b, 1.0), (b, a, 1.0)]);
        let edge_ids: Vec<EdgeId> = r.edges().iter().map(|&(e, _)| e).collect();
        assert!(QueryShape::from_edges(&edge_ids, &u).is_dag());
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn empty_walk_is_empty_record() {
        let mut u = Universe::new();
        let r = flatten_walk(&mut u, &[], &[]);
        assert_eq!(r.edge_count(), 0);
    }
}
