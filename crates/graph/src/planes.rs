//! Multiple measures per structural element (§3.1).
//!
//! The paper assumes one measure per node/edge "for ease of presentation,
//! however our techniques are applicable when multiple measures are
//! recorded". The flat model generalizes exactly as the master relation
//! suggests: one measure column *per (element, measure) pair*. This module
//! provides the id arithmetic: a [`MeasurePlanes`] maps a logical edge and a
//! measure plane (e.g. `time`, `cost`) onto a distinct column id, so the
//! unchanged storage and view machinery serves every plane.
//!
//! Plane 0 occupies the base ids `0..stride`, plane `p` the block
//! `p·stride..(p+1)·stride`. Structural queries can use any plane's block —
//! a record carries all planes for each of its edges, so the presence
//! bitmaps of corresponding columns are identical.

use crate::ids::EdgeId;
use crate::record::{GraphRecord, RecordBuilder};

/// Column-id arithmetic for multi-measure storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasurePlanes {
    names: Vec<String>,
    stride: u32,
}

impl MeasurePlanes {
    /// Defines `names.len()` measure planes over a universe of at most
    /// `stride` logical edges (pure id arithmetic — see
    /// [`MeasurePlanes::build`] for the variant that also interns the plane
    /// columns).
    ///
    /// # Panics
    ///
    /// Panics when no plane is named or `stride` is zero.
    pub fn new(stride: u32, names: &[&str]) -> MeasurePlanes {
        assert!(!names.is_empty(), "at least one measure plane");
        assert!(stride > 0, "stride must be positive");
        MeasurePlanes {
            names: names.iter().map(|s| (*s).to_owned()).collect(),
            stride,
        }
    }

    /// Builds the planes over a universe whose logical edges are fully
    /// interned, *mirroring the topology*: plane `p`'s column for edge
    /// `(s, t)` is the edge `(s⊕p, t⊕p)` between per-plane copies of the
    /// nodes. Mirroring keeps every plane's query graphs path/DAG-shaped,
    /// so path aggregation works per plane.
    ///
    /// Call after all logical edges exist and before loading records; the
    /// universe then has exactly `names.len() × stride` edges with plane
    /// `p`'s block at ids `p·stride..(p+1)·stride`.
    pub fn build(universe: &mut crate::ids::Universe, names: &[&str]) -> MeasurePlanes {
        assert!(!names.is_empty(), "at least one measure plane");
        let stride = u32::try_from(universe.edge_count()).expect("edge count fits u32");
        assert!(stride > 0, "intern the logical edges first");
        let pairs: Vec<(String, String)> = universe
            .edges()
            .map(|(_, s, t)| {
                (
                    universe.node_name(s).to_owned(),
                    universe.node_name(t).to_owned(),
                )
            })
            .collect();
        for (plane, name) in names.iter().enumerate().skip(1) {
            for (i, (s, t)) in pairs.iter().enumerate() {
                let e = universe.edge_by_names(&format!("{s}⊕{name}"), &format!("{t}⊕{name}"));
                debug_assert_eq!(
                    e.0 as usize,
                    plane * stride as usize + i,
                    "plane columns must be contiguous"
                );
            }
        }
        MeasurePlanes::new(stride, names)
    }

    /// Number of planes.
    pub fn plane_count(&self) -> usize {
        self.names.len()
    }

    /// Width of one plane's column block.
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Total column count the master relation must be declared with.
    pub fn total_columns(&self) -> usize {
        self.names.len() * self.stride as usize
    }

    /// Plane index by name.
    pub fn plane(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The column id of `edge`'s measure in plane `plane`.
    ///
    /// # Panics
    ///
    /// Panics when the edge or plane is out of range.
    pub fn column(&self, edge: EdgeId, plane: usize) -> EdgeId {
        assert!(
            edge.0 < self.stride,
            "edge {edge:?} beyond stride {}",
            self.stride
        );
        assert!(plane < self.names.len(), "plane {plane} out of range");
        EdgeId(u32::try_from(plane).expect("plane fits u32") * self.stride + edge.0)
    }

    /// Inverse of [`MeasurePlanes::column`].
    pub fn logical(&self, column: EdgeId) -> (EdgeId, usize) {
        (
            EdgeId(column.0 % self.stride),
            (column.0 / self.stride) as usize,
        )
    }

    /// Maps a single-plane query onto plane `plane`'s column block.
    pub fn map_query(
        &self,
        query: &crate::query::GraphQuery,
        plane: usize,
    ) -> crate::query::GraphQuery {
        crate::query::GraphQuery::from_edges(
            query
                .edges()
                .iter()
                .map(|&e| self.column(e, plane))
                .collect(),
        )
    }

    /// Builds a flat record from per-edge measure tuples: `measures[i]` is
    /// the value of plane `i` on that edge.
    ///
    /// # Panics
    ///
    /// Panics when a tuple's length differs from the plane count.
    pub fn record(&self, edges: &[(EdgeId, Vec<f64>)]) -> GraphRecord {
        let mut b = RecordBuilder::with_capacity(edges.len() * self.names.len());
        for (e, measures) in edges {
            assert_eq!(
                measures.len(),
                self.names.len(),
                "one measure per plane per edge"
            );
            for (plane, &m) in measures.iter().enumerate() {
                b.add(self.column(*e, plane), m);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::GraphQuery;

    #[test]
    fn column_arithmetic_round_trips() {
        let planes = MeasurePlanes::new(1000, &["time", "cost"]);
        assert_eq!(planes.plane_count(), 2);
        assert_eq!(planes.total_columns(), 2000);
        let c = planes.column(EdgeId(7), 1);
        assert_eq!(c, EdgeId(1007));
        assert_eq!(planes.logical(c), (EdgeId(7), 1));
        assert_eq!(planes.plane("cost"), Some(1));
        assert_eq!(planes.plane("delay"), None);
    }

    #[test]
    fn record_expands_tuples() {
        let planes = MeasurePlanes::new(10, &["time", "cost"]);
        let r = planes.record(&[(EdgeId(0), vec![1.0, 100.0]), (EdgeId(3), vec![2.0, 250.0])]);
        assert_eq!(r.edge_count(), 4);
        assert_eq!(r.measure(EdgeId(0)), Some(1.0));
        assert_eq!(r.measure(EdgeId(10)), Some(100.0));
        assert_eq!(r.measure(EdgeId(3)), Some(2.0));
        assert_eq!(r.measure(EdgeId(13)), Some(250.0));
    }

    #[test]
    fn query_mapping_moves_blocks() {
        let planes = MeasurePlanes::new(100, &["time", "cost", "co2"]);
        let q = GraphQuery::from_edges(vec![EdgeId(1), EdgeId(5)]);
        let cost = planes.map_query(&q, 1);
        assert_eq!(cost.edges(), &[EdgeId(101), EdgeId(105)]);
        let co2 = planes.map_query(&q, 2);
        assert_eq!(co2.edges(), &[EdgeId(201), EdgeId(205)]);
    }

    #[test]
    #[should_panic(expected = "beyond stride")]
    fn rejects_out_of_range_edges() {
        MeasurePlanes::new(10, &["m"]).column(EdgeId(10), 0);
    }

    #[test]
    #[should_panic(expected = "one measure per plane")]
    fn rejects_ragged_tuples() {
        MeasurePlanes::new(10, &["a", "b"]).record(&[(EdgeId(0), vec![1.0])]);
    }
}
