//! The path algebra of §3.3.
//!
//! A path is a node sequence with an *openness* marker on each end: a closed
//! end (`[A`) includes node `A`'s own measure in the path, an open end (`(A`)
//! excludes it — the path describes movement *through* `A` without its
//! internal processing cost. The path-join operator `⋈` concatenates two
//! paths sharing an endpoint when exactly one of them is open there, so the
//! shared node's measure is counted exactly once.

use crate::ids::{EdgeId, NodeId, Universe};
use crate::GraphError;

/// Whether a path end includes the end node's own measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// `[A…` — the end node's measure belongs to the path.
    Closed,
    /// `(A…` — the end node's measure is excluded.
    Open,
}

/// Why two paths refused to join. See [`Path::join`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathJoinError {
    /// `end(p1) != start(p2)`.
    EndpointsDiffer,
    /// Both paths are closed at the shared node: its measure would be
    /// counted twice (the paper's `[A,D,E] ⋈ [E,G,I]` example).
    BothClosed,
    /// Both paths are open at the shared node: the node would become an
    /// internal element with no measure, which a path cannot express.
    BothOpen,
}

impl std::fmt::Display for PathJoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathJoinError::EndpointsDiffer => write!(f, "paths do not share an endpoint"),
            PathJoinError::BothClosed => {
                write!(
                    f,
                    "both paths closed at the shared node (measure counted twice)"
                )
            }
            PathJoinError::BothOpen => {
                write!(
                    f,
                    "both paths open at the shared node (internal node unmeasured)"
                )
            }
        }
    }
}

impl std::error::Error for PathJoinError {}

/// A path: a sequence of adjacent nodes with per-end openness.
///
/// Single-node paths (`[A,A]`, both ends closed) denote the node itself,
/// possibly standing for hidden aggregated structure (§3.3).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    start: Endpoint,
    end: Endpoint,
}

impl Path {
    /// Builds a path with explicit endpoint openness.
    pub fn new(nodes: Vec<NodeId>, start: Endpoint, end: Endpoint) -> Result<Path, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::EmptyPath);
        }
        Ok(Path { nodes, start, end })
    }

    /// `[a, …, z]` — both ends closed.
    pub fn closed(nodes: Vec<NodeId>) -> Result<Path, GraphError> {
        Path::new(nodes, Endpoint::Closed, Endpoint::Closed)
    }

    /// `(a, …, z)` — both ends open.
    pub fn open(nodes: Vec<NodeId>) -> Result<Path, GraphError> {
        Path::new(nodes, Endpoint::Open, Endpoint::Open)
    }

    /// The single-node path `[x, x]` denoting node `x` itself.
    pub fn node(x: NodeId) -> Path {
        Path {
            nodes: vec![x],
            start: Endpoint::Closed,
            end: Endpoint::Closed,
        }
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// First node.
    pub fn first(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn last(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Openness of the start.
    pub fn start_end(&self) -> Endpoint {
        self.start
    }

    /// Openness of the end.
    pub fn end_end(&self) -> Endpoint {
        self.end
    }

    /// Number of edges (zero for a single-node path).
    pub fn edge_len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The path-join `self ⋈ other` (§3.3).
    ///
    /// Defined when `last(self) == first(other)` and exactly one side is open
    /// at the shared node; the result inherits `self`'s start and `other`'s
    /// end.
    pub fn join(&self, other: &Path) -> Result<Path, PathJoinError> {
        if self.last() != other.first() {
            return Err(PathJoinError::EndpointsDiffer);
        }
        match (self.end, other.start) {
            (Endpoint::Closed, Endpoint::Closed) => Err(PathJoinError::BothClosed),
            (Endpoint::Open, Endpoint::Open) => Err(PathJoinError::BothOpen),
            _ => {
                let mut nodes = self.nodes.clone();
                nodes.extend_from_slice(&other.nodes[1..]);
                Ok(Path {
                    nodes,
                    start: self.start,
                    end: other.end,
                })
            }
        }
    }

    /// The structural elements of the path: consecutive edges, plus the
    /// self-edges of every node whose measure belongs to the path (internal
    /// nodes always; endpoints when closed). Self-edges are only emitted when
    /// the universe has interned them — absent self-edges mean "this node
    /// records no measure", the normal case for edge-measured datasets.
    ///
    /// Fails with [`GraphError::UnknownEdge`] when a consecutive edge was
    /// never interned: such a path cannot match any record.
    pub fn elements(&self, universe: &Universe) -> Result<Vec<EdgeId>, GraphError> {
        let mut out = Vec::with_capacity(self.nodes.len() * 2 - 1);
        for w in self.nodes.windows(2) {
            match universe.find_edge(w[0], w[1]) {
                Some(e) => out.push(e),
                None => {
                    return Err(GraphError::UnknownEdge {
                        source: universe.node_name(w[0]).to_owned(),
                        target: universe.node_name(w[1]).to_owned(),
                    })
                }
            }
        }
        for (i, &n) in self.nodes.iter().enumerate() {
            let measured = if i == 0 {
                self.start == Endpoint::Closed
            } else if i == self.nodes.len() - 1 {
                self.end == Endpoint::Closed
            } else {
                true
            };
            if measured {
                if let Some(se) = universe.find_edge(n, n) {
                    out.push(se);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// True when `self`'s node sequence occurs contiguously inside `other`'s.
    ///
    /// This is the containment relation behind maximal paths and the
    /// aggregate-view monotonicity property; endpoint openness is ignored
    /// because candidate views are stored for closed paths.
    pub fn is_subpath_of(&self, other: &Path) -> bool {
        if self.nodes.len() > other.nodes.len() {
            return false;
        }
        other
            .nodes
            .windows(self.nodes.len())
            .any(|w| w == self.nodes.as_slice())
    }

    /// Renders the path with the paper's bracket notation, e.g. `[A,D,E)`.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> PathDisplay<'a> {
        PathDisplay {
            path: self,
            universe,
        }
    }
}

/// Bracket-notation renderer returned by [`Path::display`].
pub struct PathDisplay<'a> {
    path: &'a Path,
    universe: &'a Universe,
}

impl std::fmt::Display for PathDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p, u) = (self.path, self.universe);
        write!(
            f,
            "{}",
            if p.start == Endpoint::Closed {
                '['
            } else {
                '('
            }
        )?;
        for (i, &n) in p.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", u.node_name(n))?;
        }
        write!(f, "{}", if p.end == Endpoint::Closed { ']' } else { ')' })
    }
}

/// A composite path `[A,B]*`: a set of alternative paths (§3.3).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompositePath {
    paths: Vec<Path>,
}

impl CompositePath {
    /// Wraps a set of paths.
    pub fn new(paths: Vec<Path>) -> Self {
        CompositePath { paths }
    }

    /// The alternatives.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// True when no alternative exists.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Path-join applied to composite paths: all pairwise joins that are
    /// defined (§3.3). Pairs that do not share an endpoint are skipped;
    /// pairs that share one but clash on openness are skipped too, matching
    /// the paper's definition ("by considering path-joins between all pairs
    /// of paths in them").
    pub fn join(&self, other: &CompositePath) -> CompositePath {
        let mut out = Vec::new();
        for a in &self.paths {
            for b in &other.paths {
                if let Ok(p) = a.join(b) {
                    out.push(p);
                }
            }
        }
        out.dedup();
        CompositePath { paths: out }
    }
}

impl From<Path> for CompositePath {
    fn from(p: Path) -> Self {
        CompositePath { paths: vec![p] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(u: &mut Universe, names: &[&str]) -> Vec<NodeId> {
        names.iter().map(|n| u.node(n)).collect()
    }

    #[test]
    fn join_requires_exactly_one_open_side() {
        let mut u = Universe::new();
        let abf = Path::new(
            ids(&mut u, &["A", "B", "F"]),
            Endpoint::Closed,
            Endpoint::Open,
        )
        .unwrap();
        let fjk = Path::new(
            ids(&mut u, &["F", "J", "K"]),
            Endpoint::Closed,
            Endpoint::Closed,
        )
        .unwrap();
        // Paper example: [A,B,F) ⋈ [F,J,K…
        let joined = abf.join(&fjk).unwrap();
        assert_eq!(
            joined.nodes(),
            ids(&mut u, &["A", "B", "F", "J", "K"]).as_slice()
        );
        assert_eq!(joined.start_end(), Endpoint::Closed);
        assert_eq!(joined.end_end(), Endpoint::Closed);
    }

    #[test]
    fn join_rejects_double_closed_and_double_open() {
        let mut u = Universe::new();
        let ade = Path::closed(ids(&mut u, &["A", "D", "E"])).unwrap();
        let egi = Path::closed(ids(&mut u, &["E", "G", "I"])).unwrap();
        assert_eq!(ade.join(&egi), Err(PathJoinError::BothClosed));
        let open1 = Path::open(ids(&mut u, &["A", "E"])).unwrap();
        let open2 = Path::open(ids(&mut u, &["E", "G"])).unwrap();
        assert_eq!(open1.join(&open2), Err(PathJoinError::BothOpen));
        let disjoint = Path::closed(ids(&mut u, &["X", "Y"])).unwrap();
        assert_eq!(ade.join(&disjoint), Err(PathJoinError::EndpointsDiffer));
    }

    #[test]
    fn elements_exclude_open_endpoint_node_measures() {
        let mut u = Universe::new();
        let d = u.node("D");
        let e = u.node("E");
        let g = u.node("G");
        let de = u.edge(d, e);
        let eg = u.edge(e, g);
        let dd = u.node_edge(d);
        let ee = u.node_edge(e);
        let gg = u.node_edge(g);
        // (D,E,G): open both ends — only E's node measure plus the two edges.
        let p = Path::open(vec![d, e, g]).unwrap();
        let mut els = p.elements(&u).unwrap();
        els.sort_unstable();
        let mut expect = vec![de, eg, ee];
        expect.sort_unstable();
        assert_eq!(els, expect);
        // [D,E,G]: closed — all three node measures included.
        let p = Path::closed(vec![d, e, g]).unwrap();
        let els = p.elements(&u).unwrap();
        for want in [de, eg, dd, ee, gg] {
            assert!(els.contains(&want));
        }
    }

    #[test]
    fn elements_fail_on_unknown_edge() {
        let mut u = Universe::new();
        let a = u.node("A");
        let b = u.node("B");
        let p = Path::closed(vec![a, b]).unwrap();
        assert!(matches!(
            p.elements(&u),
            Err(GraphError::UnknownEdge { .. })
        ));
    }

    #[test]
    fn node_path_is_self_edge_only() {
        let mut u = Universe::new();
        let a = u.node("A");
        let aa = u.node_edge(a);
        let p = Path::node(a);
        assert_eq!(p.elements(&u).unwrap(), vec![aa]);
        assert_eq!(p.edge_len(), 0);
    }

    #[test]
    fn subpath_is_contiguous() {
        let mut u = Universe::new();
        let ns = ids(&mut u, &["A", "B", "C", "D"]);
        let full = Path::closed(ns.clone()).unwrap();
        let bc = Path::closed(ns[1..3].to_vec()).unwrap();
        let ad = Path::closed(vec![ns[0], ns[3]]).unwrap();
        assert!(bc.is_subpath_of(&full));
        assert!(!ad.is_subpath_of(&full)); // A,D not adjacent in full
        assert!(full.is_subpath_of(&full));
        assert!(!full.is_subpath_of(&bc));
    }

    #[test]
    fn composite_join_keeps_only_valid_pairs() {
        let mut u = Universe::new();
        let a = ids(&mut u, &["A", "B", "F", "J", "C", "H"]);
        let (na, nb, nf, nj, nc, nh) = (a[0], a[1], a[2], a[3], a[4], a[5]);
        let left = CompositePath::new(vec![
            Path::new(vec![na, nb, nf], Endpoint::Closed, Endpoint::Open).unwrap(),
            Path::new(vec![nc, nh], Endpoint::Closed, Endpoint::Open).unwrap(),
        ]);
        let right = CompositePath::new(vec![Path::closed(vec![nf, nj]).unwrap()]);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.paths()[0].nodes(), &[na, nb, nf, nj]);
    }

    #[test]
    fn display_uses_bracket_notation() {
        let mut u = Universe::new();
        let p = Path::new(
            ids(&mut u, &["D", "E", "G"]),
            Endpoint::Closed,
            Endpoint::Open,
        )
        .unwrap();
        assert_eq!(p.display(&u).to_string(), "[D,E,G)");
    }
}
