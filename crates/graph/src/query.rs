//! Graph queries and their logical combinations (§3.2, §3.4).

use crate::agg::AggFn;
use crate::ids::{EdgeId, Universe};
use crate::path::Path;
use crate::topo::QueryShape;
use crate::GraphError;

/// A graph query `Gq`: a set of named structural elements. A record `Gr`
/// answers `Gq` iff `Gq ⊆ Gr` — plain containment over the shared universe,
/// never isomorphism (§3.2).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphQuery {
    /// Sorted, deduplicated edge ids.
    edges: Vec<EdgeId>,
}

impl GraphQuery {
    /// Builds a query from an edge set (sorted and deduplicated here).
    pub fn from_edges(mut edges: Vec<EdgeId>) -> GraphQuery {
        edges.sort_unstable();
        edges.dedup();
        GraphQuery { edges }
    }

    /// Builds the query matching all records containing `path` (query `Q1`
    /// of the paper's motivation section is exactly this form).
    pub fn from_path(path: &Path, universe: &Universe) -> Result<GraphQuery, GraphError> {
        Ok(GraphQuery::from_edges(path.elements(universe)?))
    }

    /// Builds a query from node-name pairs, interning as needed.
    pub fn from_edge_names(universe: &mut Universe, pairs: &[(&str, &str)]) -> GraphQuery {
        GraphQuery::from_edges(
            pairs
                .iter()
                .map(|(s, t)| universe.edge_by_names(s, t))
                .collect(),
        )
    }

    /// The edge set, sorted ascending.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of structural elements.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the empty query (matches every record).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True when `edge` is part of the query.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// True when every edge of `self` is in `other` (`self ⊆ other`).
    pub fn is_subquery_of(&self, other: &GraphQuery) -> bool {
        if self.edges.len() > other.edges.len() {
            return false;
        }
        let mut j = 0;
        for &e in &self.edges {
            while j < other.edges.len() && other.edges[j] < e {
                j += 1;
            }
            if j == other.edges.len() || other.edges[j] != e {
                return false;
            }
        }
        true
    }

    /// The common subgraph `self ∩ other` — the building block of candidate
    /// graph views (§5.2).
    pub fn intersect(&self, other: &GraphQuery) -> GraphQuery {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.edges[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        GraphQuery { edges: out }
    }

    /// The union `self ∪ other` (used to build `G_All` in §5.4).
    pub fn union(&self, other: &GraphQuery) -> GraphQuery {
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        GraphQuery::from_edges(edges)
    }

    /// The digraph structure of the query.
    pub fn shape(&self, universe: &Universe) -> QueryShape {
        QueryShape::from_edges(&self.edges, universe)
    }

    /// The maximal paths `[Src(Gq), Ter(Gq)]*` of the query.
    pub fn maximal_paths(&self, universe: &Universe) -> Result<Vec<Path>, GraphError> {
        self.shape(universe).maximal_paths()
    }
}

/// Logical combinations of graph queries (§3.2):
/// `[Gq1 AND Gq2] = [Gq1] ∩ [Gq2]`, `[Gq1 OR Gq2] = [Gq1] ∪ [Gq2]`,
/// `[Gq1 AND NOT Gq2] = [Gq1] − [Gq2]`.
///
/// The engine evaluates these directly as bitmap algebra.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryExpr {
    /// A plain graph query.
    Atom(GraphQuery),
    /// Records matching both operands.
    And(Box<QueryExpr>, Box<QueryExpr>),
    /// Records matching either operand.
    Or(Box<QueryExpr>, Box<QueryExpr>),
    /// Records matching the first but not the second operand.
    AndNot(Box<QueryExpr>, Box<QueryExpr>),
}

impl QueryExpr {
    /// Convenience constructor: `a AND b`.
    pub fn and(a: QueryExpr, b: QueryExpr) -> QueryExpr {
        QueryExpr::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a OR b`.
    pub fn or(a: QueryExpr, b: QueryExpr) -> QueryExpr {
        QueryExpr::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a AND NOT b`.
    pub fn and_not(a: QueryExpr, b: QueryExpr) -> QueryExpr {
        QueryExpr::AndNot(Box::new(a), Box::new(b))
    }

    /// All atomic graph queries referenced by the expression.
    pub fn atoms(&self) -> Vec<&GraphQuery> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a GraphQuery>) {
        match self {
            QueryExpr::Atom(q) => out.push(q),
            QueryExpr::And(a, b) | QueryExpr::Or(a, b) | QueryExpr::AndNot(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }
}

impl From<GraphQuery> for QueryExpr {
    fn from(q: GraphQuery) -> Self {
        QueryExpr::Atom(q)
    }
}

/// A path-aggregation query `F_Gq` (§3.4): retrieve the records matching
/// `Gq`, then apply `func` along every maximal source→terminal path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathAggQuery {
    /// The structural condition.
    pub query: GraphQuery,
    /// The aggregate applied along each maximal path.
    pub func: AggFn,
}

impl PathAggQuery {
    /// Builds `func` over the maximal paths of `query`.
    pub fn new(query: GraphQuery, func: AggFn) -> PathAggQuery {
        PathAggQuery { query, func }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn q(ids: &[u32]) -> GraphQuery {
        GraphQuery::from_edges(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn from_edges_sorts_and_dedups() {
        let query = q(&[5, 1, 5, 3]);
        assert_eq!(query.edges(), &[EdgeId(1), EdgeId(3), EdgeId(5)]);
        assert_eq!(query.len(), 3);
    }

    #[test]
    fn subquery_and_intersection() {
        let a = q(&[1, 2, 3, 4]);
        let b = q(&[2, 4, 6]);
        assert!(!b.is_subquery_of(&a));
        assert!(q(&[2, 4]).is_subquery_of(&a));
        assert_eq!(a.intersect(&b), q(&[2, 4]));
        assert_eq!(a.union(&b), q(&[1, 2, 3, 4, 6]));
        assert!(q(&[]).is_subquery_of(&a));
    }

    #[test]
    fn from_path_collects_elements() {
        let mut u = Universe::new();
        let ad = u.edge_by_names("A", "D");
        let de = u.edge_by_names("D", "E");
        let a = u.find_node("A").unwrap();
        let d = u.find_node("D").unwrap();
        let e = u.find_node("E").unwrap();
        let p = Path::closed(vec![a, d, e]).unwrap();
        let query = GraphQuery::from_path(&p, &u).unwrap();
        assert_eq!(query.edges(), &[ad, de]);
    }

    #[test]
    fn expr_atoms_are_collected_in_order() {
        let e = QueryExpr::and_not(
            QueryExpr::or(q(&[1]).into(), q(&[2]).into()),
            q(&[3]).into(),
        );
        let atoms = e.atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0], &q(&[1]));
        assert_eq!(atoms[2], &q(&[3]));
    }

    #[test]
    fn maximal_paths_via_query() {
        let mut u = Universe::new();
        let query = GraphQuery::from_edge_names(&mut u, &[("A", "B"), ("B", "C")]);
        let paths = query.maximal_paths(&u).unwrap();
        assert_eq!(paths.len(), 1);
        let expect: Vec<NodeId> = ["A", "B", "C"]
            .iter()
            .map(|n| u.find_node(n).unwrap())
            .collect();
        assert_eq!(paths[0].nodes(), expect.as_slice());
    }
}
