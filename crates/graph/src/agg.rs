//! Aggregate functions over path measures (§3.4, §5.1.2).
//!
//! Path-aggregation queries apply a user-chosen function along each maximal
//! path of the query graph. For *algebraic* functions (AVG) the paper stores
//! the constituent distributive sub-aggregates instead of the final value so
//! that materialized aggregate views compose into larger aggregates; the
//! [`AggState`] carries all four sub-aggregates (count, sum, min, max) and is
//! therefore reusable for every supported function.

/// The aggregate function of a path-aggregation query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Total of the measures along the path.
    Sum,
    /// Smallest measure along the path.
    Min,
    /// Largest measure along the path (the paper's Q3 "longest delay").
    Max,
    /// Number of measured elements along the path.
    Count,
    /// Algebraic mean, decomposed into sum and count.
    Avg,
}

impl AggFn {
    /// Short SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Sum => "SUM",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Count => "COUNT",
            AggFn::Avg => "AVG",
        }
    }
}

impl std::fmt::Display for AggFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Distributive sub-aggregate state.
///
/// Merging two states equals aggregating the concatenation of their inputs,
/// which is what lets a materialized aggregate view substitute for the raw
/// measures of its path inside a longer path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggState {
    /// Number of absorbed measures.
    pub count: u64,
    /// Sum of absorbed measures.
    pub sum: f64,
    /// Minimum absorbed measure (`+∞` for the empty state).
    pub min: f64,
    /// Maximum absorbed measure (`-∞` for the empty state).
    pub max: f64,
}

impl Default for AggState {
    fn default() -> Self {
        AggState::empty()
    }
}

impl AggState {
    /// The identity element.
    pub fn empty() -> AggState {
        AggState {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A state holding a single measure.
    pub fn of(m: f64) -> AggState {
        AggState {
            count: 1,
            sum: m,
            min: m,
            max: m,
        }
    }

    /// Absorbs one measure.
    pub fn push(&mut self, m: f64) {
        self.count += 1;
        self.sum += m;
        self.min = self.min.min(m);
        self.max = self.max.max(m);
    }

    /// Merges another state (associative, commutative, `empty` is identity).
    pub fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Folds an iterator of measures into a state.
    pub fn from_measures<I: IntoIterator<Item = f64>>(measures: I) -> AggState {
        let mut s = AggState::empty();
        for m in measures {
            s.push(m);
        }
        s
    }

    /// Final value under `func`; `None` for the empty state (SQL semantics:
    /// aggregates over nothing are NULL, except COUNT which is zero).
    pub fn finalize(&self, func: AggFn) -> Option<f64> {
        if self.count == 0 {
            return (func == AggFn::Count).then_some(0.0);
        }
        Some(match func {
            AggFn::Sum => self.sum,
            AggFn::Min => self.min,
            AggFn::Max => self.max,
            AggFn::Count => self.count as f64,
            AggFn::Avg => self.sum / self.count as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_values_finalize_to_themselves() {
        let s = AggState::of(4.5);
        for f in [AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Avg] {
            assert_eq!(s.finalize(f), Some(4.5));
        }
        assert_eq!(s.finalize(AggFn::Count), Some(1.0));
    }

    #[test]
    fn empty_state_is_null_except_count() {
        let s = AggState::empty();
        assert_eq!(s.finalize(AggFn::Sum), None);
        assert_eq!(s.finalize(AggFn::Avg), None);
        assert_eq!(s.finalize(AggFn::Count), Some(0.0));
    }

    #[test]
    fn merge_equals_bulk_aggregation() {
        let xs = [3.0, -1.0, 7.5, 2.0];
        let mut left = AggState::from_measures(xs[..2].iter().copied());
        let right = AggState::from_measures(xs[2..].iter().copied());
        left.merge(&right);
        let all = AggState::from_measures(xs.iter().copied());
        assert_eq!(left, all);
        assert_eq!(all.finalize(AggFn::Sum), Some(11.5));
        assert_eq!(all.finalize(AggFn::Min), Some(-1.0));
        assert_eq!(all.finalize(AggFn::Max), Some(7.5));
        assert_eq!(all.finalize(AggFn::Avg), Some(11.5 / 4.0));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = AggState::of(2.0);
        s.merge(&AggState::empty());
        assert_eq!(s, AggState::of(2.0));
    }

    #[test]
    fn names_render() {
        assert_eq!(AggFn::Sum.to_string(), "SUM");
        assert_eq!(AggFn::Avg.name(), "AVG");
    }
}
