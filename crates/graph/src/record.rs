//! Graph records: the data items of the collection.

use crate::ids::EdgeId;

/// One graph record: a small directed graph whose structural elements (edges
/// and node self-edges) carry measures.
///
/// Stored as an edge-id-sorted `(edge, measure)` list — the flat form the
/// column store ingests directly. Group metadata links multiple records that
/// form one logical unit (sub-orders, multigraph legs; §3.1).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphRecord {
    edges: Vec<(EdgeId, f64)>,
    group: Option<u64>,
}

impl GraphRecord {
    /// The edges with their measures, sorted by edge id.
    pub fn edges(&self) -> &[(EdgeId, f64)] {
        &self.edges
    }

    /// Number of structural elements in the record.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The measure recorded on `edge`, if the record contains it.
    pub fn measure(&self, edge: EdgeId) -> Option<f64> {
        self.edges
            .binary_search_by_key(&edge, |&(e, _)| e)
            .ok()
            .map(|i| self.edges[i].1)
    }

    /// True when the record contains `edge`.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search_by_key(&edge, |&(e, _)| e).is_ok()
    }

    /// True when the record contains every edge in the (sorted or unsorted)
    /// slice — the record-level subgraph test a graph query performs.
    pub fn contains_all(&self, edges: &[EdgeId]) -> bool {
        edges.iter().all(|&e| self.contains(e))
    }

    /// Logical-unit id linking related records, if any (§3.1 metadata).
    pub fn group(&self) -> Option<u64> {
        self.group
    }
}

/// Builds a [`GraphRecord`] from unordered `(edge, measure)` insertions.
#[derive(Default)]
pub struct RecordBuilder {
    edges: Vec<(EdgeId, f64)>,
    group: Option<u64>,
}

impl RecordBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that pre-allocates room for `n` edges.
    pub fn with_capacity(n: usize) -> Self {
        RecordBuilder {
            edges: Vec::with_capacity(n),
            group: None,
        }
    }

    /// Records measure `m` on `edge`. Inserting the same edge twice keeps
    /// the *last* value; walks that traverse an edge repeatedly should be
    /// flattened first (see [`crate::flatten`]) or combined with
    /// [`RecordBuilder::add_combining`].
    pub fn add(&mut self, edge: EdgeId, m: f64) -> &mut Self {
        self.edges.push((edge, m));
        self
    }

    /// Records measure `m` on `edge`, combining with any existing value via
    /// `combine` (e.g. `f64::add` to accumulate repeated traversals).
    pub fn add_combining(
        &mut self,
        edge: EdgeId,
        m: f64,
        combine: fn(f64, f64) -> f64,
    ) -> &mut Self {
        if let Some(pos) = self.edges.iter().position(|&(e, _)| e == edge) {
            self.edges[pos].1 = combine(self.edges[pos].1, m);
        } else {
            self.edges.push((edge, m));
        }
        self
    }

    /// Tags the record with a logical-unit group id.
    pub fn group(&mut self, id: u64) -> &mut Self {
        self.group = Some(id);
        self
    }

    /// Finishes the record, sorting and deduplicating (last write wins).
    pub fn build(self) -> GraphRecord {
        let mut edges = self.edges;
        // Stable sort + keep the last occurrence of each edge id.
        edges.sort_by_key(|&(e, _)| e);
        let mut out: Vec<(EdgeId, f64)> = Vec::with_capacity(edges.len());
        for (e, m) in edges {
            match out.last_mut() {
                Some(last) if last.0 == e => last.1 = m,
                _ => out.push((e, m)),
            }
        }
        GraphRecord {
            edges: out,
            group: self.group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn build_sorts_and_dedups_last_wins() {
        let mut b = RecordBuilder::new();
        b.add(e(5), 1.0).add(e(1), 2.0).add(e(5), 3.0);
        let r = b.build();
        assert_eq!(r.edges(), &[(e(1), 2.0), (e(5), 3.0)]);
        assert_eq!(r.measure(e(5)), Some(3.0));
        assert_eq!(r.measure(e(2)), None);
    }

    #[test]
    fn add_combining_accumulates() {
        let mut b = RecordBuilder::new();
        b.add_combining(e(7), 1.5, |a, b| a + b);
        b.add_combining(e(7), 2.5, |a, b| a + b);
        let r = b.build();
        assert_eq!(r.measure(e(7)), Some(4.0));
    }

    #[test]
    fn contains_all_is_subgraph_test() {
        let mut b = RecordBuilder::new();
        for i in [2u32, 4, 6, 8] {
            b.add(e(i), f64::from(i));
        }
        let r = b.build();
        assert!(r.contains_all(&[e(2), e(8)]));
        assert!(!r.contains_all(&[e(2), e(3)]));
        assert!(r.contains_all(&[]));
    }

    #[test]
    fn group_metadata_round_trips() {
        let mut b = RecordBuilder::new();
        b.add(e(0), 1.0).group(42);
        assert_eq!(b.build().group(), Some(42));
        let mut b2 = RecordBuilder::new();
        b2.add(e(0), 1.0);
        assert_eq!(b2.build().group(), None);
    }
}
