//! Engine-independent query result shapes.
//!
//! Every storage engine in the workspace (the column store and the three
//! baseline systems) answers the same logical queries; sharing the result
//! types lets the cross-engine tests assert bit-identical answers.

use crate::ids::EdgeId;
use crate::RecordId;

/// Result of a graph query: the matching records and, per record, the
/// measures of the query's edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Matching record ids, ascending.
    pub records: Vec<RecordId>,
    /// Query edge ids, ascending — the column order of `measures`.
    pub edges: Vec<EdgeId>,
    /// Record-major measure matrix: `measures[i * edges.len() + j]` is the
    /// measure of `edges[j]` in `records[i]`.
    pub measures: Vec<f64>,
}

impl QueryResult {
    /// Number of matching records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record matched.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The measure row of the `i`-th matching record.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.edges.len();
        &self.measures[i * w..(i + 1) * w]
    }

    /// Total measure values materialized.
    pub fn value_count(&self) -> usize {
        self.measures.len()
    }
}

/// Tolerance-aware scalar comparison: true when both are NaN, or when they
/// differ by at most `tol` absolutely or relative to the larger magnitude.
/// Aggregates computed in different summation orders (columnar scan vs row
/// joins) can differ by rounding, so exact `==` is too strict for them.
pub fn floats_close(a: f64, b: f64, tol: f64) -> bool {
    if a == b || (a.is_nan() && b.is_nan()) {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

impl QueryResult {
    /// Compares against `other` with exact structure (records, edges) and
    /// `tol`-relative measures; returns a description of the first
    /// discrepancy, or `None` when equivalent.
    pub fn diff(&self, other: &QueryResult, tol: f64) -> Option<String> {
        if self.records != other.records {
            return Some(format!(
                "record sets differ: {} vs {} records (first mismatch at {:?})",
                self.records.len(),
                other.records.len(),
                first_mismatch(&self.records, &other.records),
            ));
        }
        if self.edges != other.edges {
            return Some(format!(
                "edge lists differ: {:?} vs {:?}",
                self.edges, other.edges
            ));
        }
        if self.measures.len() != other.measures.len() {
            return Some(format!(
                "measure counts differ: {} vs {}",
                self.measures.len(),
                other.measures.len()
            ));
        }
        for (i, (a, b)) in self.measures.iter().zip(&other.measures).enumerate() {
            if !floats_close(*a, *b, tol) {
                let w = self.edges.len().max(1);
                return Some(format!(
                    "measure [record {} edge {:?}]: {a} vs {b}",
                    self.records[i / w],
                    self.edges[i % w],
                ));
            }
        }
        None
    }

    /// True when [`QueryResult::diff`] finds no discrepancy.
    pub fn approx_eq(&self, other: &QueryResult, tol: f64) -> bool {
        self.diff(other, tol).is_none()
    }
}

/// Index of the first position where the id sequences disagree.
fn first_mismatch(a: &[RecordId], b: &[RecordId]) -> Option<usize> {
    (0..a.len().max(b.len())).find(|&i| a.get(i) != b.get(i))
}

/// Result of a path-aggregation query: per matching record, the aggregate of
/// each maximal source→terminal path of the query graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathAggResult {
    /// Matching record ids, ascending.
    pub records: Vec<RecordId>,
    /// Number of maximal paths in the query — the row width.
    pub path_count: usize,
    /// Record-major aggregates: `values[i * path_count + p]` is the
    /// aggregate along maximal path `p` for `records[i]`.
    pub values: Vec<f64>,
}

impl PathAggResult {
    /// Number of matching records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record matched.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The aggregate row of the `i`-th matching record.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.path_count..(i + 1) * self.path_count]
    }

    /// Compares against `other` with exact structure and `tol`-relative
    /// aggregate values; returns the first discrepancy, or `None`.
    pub fn diff(&self, other: &PathAggResult, tol: f64) -> Option<String> {
        if self.records != other.records {
            return Some(format!(
                "record sets differ: {} vs {} records (first mismatch at {:?})",
                self.records.len(),
                other.records.len(),
                first_mismatch(&self.records, &other.records),
            ));
        }
        if self.path_count != other.path_count {
            return Some(format!(
                "path counts differ: {} vs {}",
                self.path_count, other.path_count
            ));
        }
        if self.values.len() != other.values.len() {
            return Some(format!(
                "value counts differ: {} vs {}",
                self.values.len(),
                other.values.len()
            ));
        }
        for (i, (a, b)) in self.values.iter().zip(&other.values).enumerate() {
            if !floats_close(*a, *b, tol) {
                let w = self.path_count.max(1);
                return Some(format!(
                    "aggregate [record {} path {}]: {a} vs {b}",
                    self.records[i / w],
                    i % w,
                ));
            }
        }
        None
    }

    /// True when [`PathAggResult::diff`] finds no discrepancy.
    pub fn approx_eq(&self, other: &PathAggResult, tol: f64) -> bool {
        self.diff(other, tol).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_access() {
        let r = QueryResult {
            records: vec![3, 9],
            edges: vec![EdgeId(0), EdgeId(4)],
            measures: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[1.0, 2.0]);
        assert_eq!(r.row(1), &[3.0, 4.0]);
        assert_eq!(r.value_count(), 4);
    }

    #[test]
    fn approx_eq_tolerates_rounding_but_not_structure() {
        let a = QueryResult {
            records: vec![3, 9],
            edges: vec![EdgeId(0), EdgeId(4)],
            measures: vec![1.0, 2.0, 3.0, 1e12],
        };
        let mut b = a.clone();
        b.measures[3] = 1e12 * (1.0 + 1e-12); // rounding-level drift
        assert!(a.approx_eq(&b, 1e-9));
        b.measures[3] = 1e12 * 1.01;
        let d = a.diff(&b, 1e-9).unwrap();
        assert!(d.contains("record 9"), "{d}");
        b = a.clone();
        b.records[1] = 10;
        assert!(a.diff(&b, 1e-9).unwrap().contains("record sets differ"));
    }

    #[test]
    fn nan_equals_nan_under_tolerance() {
        let mk = |v: f64| PathAggResult {
            records: vec![1],
            path_count: 1,
            values: vec![v],
        };
        assert!(mk(f64::NAN).approx_eq(&mk(f64::NAN), 1e-9));
        assert!(!mk(f64::NAN).approx_eq(&mk(0.0), 1e-9));
        assert!(floats_close(5.0, 5.0 + 1e-12, 1e-9));
        assert!(!floats_close(5.0, 5.1, 1e-9));
    }

    #[test]
    fn agg_row_access() {
        let r = PathAggResult {
            records: vec![1],
            path_count: 3,
            values: vec![5.0, 6.0, 7.0],
        };
        assert_eq!(r.row(0), &[5.0, 6.0, 7.0]);
        assert!(!r.is_empty());
    }
}
