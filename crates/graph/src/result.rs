//! Engine-independent query result shapes.
//!
//! Every storage engine in the workspace (the column store and the three
//! baseline systems) answers the same logical queries; sharing the result
//! types lets the cross-engine tests assert bit-identical answers.

use crate::ids::EdgeId;
use crate::RecordId;

/// Result of a graph query: the matching records and, per record, the
/// measures of the query's edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Matching record ids, ascending.
    pub records: Vec<RecordId>,
    /// Query edge ids, ascending — the column order of `measures`.
    pub edges: Vec<EdgeId>,
    /// Record-major measure matrix: `measures[i * edges.len() + j]` is the
    /// measure of `edges[j]` in `records[i]`.
    pub measures: Vec<f64>,
}

impl QueryResult {
    /// Number of matching records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record matched.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The measure row of the `i`-th matching record.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.edges.len();
        &self.measures[i * w..(i + 1) * w]
    }

    /// Total measure values materialized.
    pub fn value_count(&self) -> usize {
        self.measures.len()
    }
}

/// Result of a path-aggregation query: per matching record, the aggregate of
/// each maximal source→terminal path of the query graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathAggResult {
    /// Matching record ids, ascending.
    pub records: Vec<RecordId>,
    /// Number of maximal paths in the query — the row width.
    pub path_count: usize,
    /// Record-major aggregates: `values[i * path_count + p]` is the
    /// aggregate along maximal path `p` for `records[i]`.
    pub values: Vec<f64>,
}

impl PathAggResult {
    /// Number of matching records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record matched.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The aggregate row of the `i`-th matching record.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.path_count..(i + 1) * self.path_count]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_access() {
        let r = QueryResult {
            records: vec![3, 9],
            edges: vec![EdgeId(0), EdgeId(4)],
            measures: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[1.0, 2.0]);
        assert_eq!(r.row(1), &[3.0, 4.0]);
        assert_eq!(r.value_count(), 4);
    }

    #[test]
    fn agg_row_access() {
        let r = PathAggResult {
            records: vec![1],
            path_count: 3,
            values: vec![5.0, 6.0, 7.0],
        };
        assert_eq!(r.row(0), &[5.0, 6.0, 7.0]);
        assert!(!r.is_empty());
    }
}
