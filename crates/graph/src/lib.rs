#![warn(missing_docs)]

//! Graph data model for graphbi.
//!
//! The EDBT'14 framework treats both data and queries as graphs over a shared
//! *universe* of named entities: nodes are business entities (hub locations,
//! workflow states, …), and an edge between two named nodes is itself a named
//! entity with a stable [`EdgeId`]. A **graph record** is a small directed
//! graph whose nodes/edges carry measures; a **graph query** is a directed
//! graph over the same universe that matches every record containing all of
//! its structural elements (no isomorphism — identifiers are global).
//!
//! This crate provides:
//!
//! * [`Universe`] — the shared naming scheme: interning of node names and of
//!   `(source, target)` pairs to dense [`EdgeId`]s (§3.1). A node `X` is
//!   represented as the self-edge `[X,X]`, exactly as §4.1 prescribes, so the
//!   storage layer sees a single kind of structural element.
//! * [`GraphRecord`] — one data record: a sorted edge→measure list.
//! * [`GraphQuery`] / [`QueryExpr`] — structural queries and their logical
//!   combinations (AND / OR / AND NOT, §3.2).
//! * [`Path`], [`CompositePath`] — the path algebra of §3.3: open/closed
//!   endpoints, the path-join operator, composite paths, maximal paths.
//! * [`flatten`] — cycle removal by node versioning (§6.2) so that path
//!   aggregation over walks behaves like the paper's SCM examples.
//! * [`AggFn`] / [`AggState`] — SUM/COUNT/MIN/MAX/AVG with distributive
//!   sub-aggregates, the basis for aggregate graph views (§5.1.2).

pub mod agg;
pub mod flatten;
mod ids;
mod path;
pub mod planes;
mod query;
mod record;
mod result;
mod topo;
mod universe_io;
pub mod zoom;

pub use agg::{AggFn, AggState};
pub use ids::{EdgeId, NodeId, Universe};
pub use path::{CompositePath, Endpoint, Path, PathJoinError};
pub use planes::MeasurePlanes;
pub use query::{GraphQuery, PathAggQuery, QueryExpr};
pub use record::{GraphRecord, RecordBuilder};
pub use result::{floats_close, PathAggResult, QueryResult};
pub use topo::QueryShape;
pub use universe_io::UniverseIoError;
pub use zoom::{zoom_out, Region};

/// Identifier of a graph record. Convention shared with the bitmap crate.
pub type RecordId = u32;

/// Errors surfaced by the graph model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A path/query referenced an edge absent from the universe.
    UnknownEdge {
        /// Source node name.
        source: String,
        /// Target node name.
        target: String,
    },
    /// A node name was not present in the universe.
    UnknownNode(String),
    /// Path aggregation requires an acyclic query graph.
    CyclicQuery,
    /// A path had fewer than one node.
    EmptyPath,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownEdge { source, target } => {
                write!(f, "edge ({source}, {target}) is not in the universe")
            }
            GraphError::UnknownNode(n) => write!(f, "node {n} is not in the universe"),
            GraphError::CyclicQuery => {
                write!(f, "path aggregation requires an acyclic query graph")
            }
            GraphError::EmptyPath => write!(f, "a path must contain at least one node"),
        }
    }
}

impl std::error::Error for GraphError {}
