//! The universe: the shared naming scheme of nodes and edges.
//!
//! §3.1: "we only assume that the nodes are labeled using a universally
//! adopted schema so as to be able to run queries on them afterwards by
//! referring to common identifiers". The [`Universe`] interns node names and
//! `(source, target)` pairs into dense ids; those edge ids are exactly the
//! column indices of the master relation in the column store.

use std::collections::HashMap;

/// Dense identifier of a named node in the universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Dense identifier of a named edge (ordered node pair) in the universe.
///
/// Edge ids index measure and bitmap columns in the master relation, so they
/// are handed out contiguously from zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Column index this edge occupies in the master relation.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The universally adopted naming scheme shared by records and queries.
///
/// Nodes are interned by name; edges by `(source, target)` pair. A node with
/// its own measure is modeled as the self-edge `(X, X)` (§4.1), so callers
/// that need "the node column of X" use [`Universe::node_edge`].
#[derive(Clone, Default)]
pub struct Universe {
    node_names: Vec<String>,
    node_by_name: HashMap<String, NodeId>,
    edge_pairs: Vec<(NodeId, NodeId)>,
    edge_by_pair: HashMap<(NodeId, NodeId), EdgeId>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or looks up) a node by name.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_by_name.get(name) {
            return id;
        }
        let id = NodeId(u32::try_from(self.node_names.len()).expect("node count fits u32"));
        self.node_names.push(name.to_owned());
        self.node_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a node without interning.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_by_name.get(name).copied()
    }

    /// Name of `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` was not produced by this universe.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0 as usize]
    }

    /// Interns (or looks up) the directed edge `source → target`.
    pub fn edge(&mut self, source: NodeId, target: NodeId) -> EdgeId {
        if let Some(&id) = self.edge_by_pair.get(&(source, target)) {
            return id;
        }
        let id = EdgeId(u32::try_from(self.edge_pairs.len()).expect("edge count fits u32"));
        self.edge_pairs.push((source, target));
        self.edge_by_pair.insert((source, target), id);
        id
    }

    /// Interns the edge named by node names, interning the nodes too.
    pub fn edge_by_names(&mut self, source: &str, target: &str) -> EdgeId {
        let s = self.node(source);
        let t = self.node(target);
        self.edge(s, t)
    }

    /// The self-edge `(node, node)` carrying the node's own measure (§4.1).
    pub fn node_edge(&mut self, node: NodeId) -> EdgeId {
        self.edge(node, node)
    }

    /// Looks up an edge without interning.
    pub fn find_edge(&self, source: NodeId, target: NodeId) -> Option<EdgeId> {
        self.edge_by_pair.get(&(source, target)).copied()
    }

    /// Endpoints of `edge`.
    ///
    /// # Panics
    ///
    /// Panics when `edge` was not produced by this universe.
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        self.edge_pairs[edge.0 as usize]
    }

    /// True when `edge` is a node self-edge.
    pub fn is_node_edge(&self, edge: EdgeId) -> bool {
        let (s, t) = self.endpoints(edge);
        s == t
    }

    /// Number of distinct nodes interned so far.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of distinct edges interned so far — the width of the master
    /// relation's measure (and bitmap) column block.
    pub fn edge_count(&self) -> usize {
        self.edge_pairs.len()
    }

    /// Iterates all edge ids with their endpoints.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edge_pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, t))| (EdgeId(i as u32), s, t))
    }

    /// Human-readable `source→target` label of an edge, for diagnostics.
    pub fn edge_label(&self, edge: EdgeId) -> String {
        let (s, t) = self.endpoints(edge);
        if s == t {
            format!("[{}]", self.node_name(s))
        } else {
            format!("({},{})", self.node_name(s), self.node_name(t))
        }
    }

    /// The edges internal to a node group — both endpoints inside `nodes`.
    ///
    /// This is the §5.1.1 "region" helper: the subgraph of region 2 in the
    /// paper's Figure 1 is indexed by one graph view whose edge set is
    /// exactly `edges_within(region2_nodes)`.
    pub fn edges_within(&self, nodes: &[NodeId]) -> Vec<EdgeId> {
        let set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        self.edges()
            .filter(|(_, s, t)| set.contains(s) && set.contains(t))
            .map(|(e, _, _)| e)
            .collect()
    }

    /// Interns a *versioned copy* of `node`, used by DAG flattening (§6.2):
    /// the second visit of `A` becomes `A~2`, the third `A~3`, and so on.
    pub fn versioned_node(&mut self, node: NodeId, version: u32) -> NodeId {
        debug_assert!(version >= 2, "version 1 is the node itself");
        let name = format!("{}~{version}", self.node_name(node));
        self.node(&name)
    }
}

impl std::fmt::Debug for Universe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Universe")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut u = Universe::new();
        let a = u.node("A");
        assert_eq!(u.node("A"), a);
        assert_eq!(u.find_node("A"), Some(a));
        assert_eq!(u.find_node("B"), None);
        let e = u.edge_by_names("A", "B");
        assert_eq!(u.edge_by_names("A", "B"), e);
        assert_eq!(u.node_count(), 2);
        assert_eq!(u.edge_count(), 1);
    }

    #[test]
    fn directed_edges_are_distinct() {
        let mut u = Universe::new();
        let ab = u.edge_by_names("A", "B");
        let ba = u.edge_by_names("B", "A");
        assert_ne!(ab, ba);
        let (s, t) = u.endpoints(ab);
        assert_eq!(u.node_name(s), "A");
        assert_eq!(u.node_name(t), "B");
    }

    #[test]
    fn node_edges_are_self_loops() {
        let mut u = Universe::new();
        let a = u.node("A");
        let e = u.node_edge(a);
        assert!(u.is_node_edge(e));
        assert_eq!(u.edge_label(e), "[A]");
        let ab = u.edge_by_names("A", "B");
        assert!(!u.is_node_edge(ab));
    }

    #[test]
    fn edge_ids_are_dense_column_indexes() {
        let mut u = Universe::new();
        for i in 0..10 {
            let e = u.edge_by_names(&format!("N{i}"), &format!("N{}", i + 1));
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn edges_within_selects_internal_edges_only() {
        let mut u = Universe::new();
        let d = u.node("D");
        let e = u.node("E");
        let g = u.node("G");
        let a = u.node("A");
        let de = u.edge(d, e);
        let eg = u.edge(e, g);
        let ad = u.edge(a, d); // crosses the region boundary
        let dd = u.node_edge(d); // self-edge counts as internal
        let mut got = u.edges_within(&[d, e, g]);
        got.sort_unstable();
        let mut expect = vec![de, eg, dd];
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(!got.contains(&ad));
        assert!(u.edges_within(&[]).is_empty());
    }

    #[test]
    fn versioned_nodes_get_fresh_ids() {
        let mut u = Universe::new();
        let a = u.node("A");
        let a2 = u.versioned_node(a, 2);
        let a3 = u.versioned_node(a, 3);
        assert_ne!(a, a2);
        assert_ne!(a2, a3);
        assert_eq!(u.node_name(a2), "A~2");
        assert_eq!(u.versioned_node(a, 2), a2);
    }
}
