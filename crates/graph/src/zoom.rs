//! Zooming out of node groups (§2, §3.1).
//!
//! The paper's Q3 treats "all hubs within region 2" as a single aggregate
//! node, citing the zoom-in/zoom-out operators of its reference \[9\]. This
//! module implements zoom-out over a record: a node group (region) is
//! coalesced into one aggregate node; the region's internal measures fold
//! into the aggregate node's self-edge, and boundary edges are redirected to
//! the aggregate node (merging parallel ones).
//!
//! The redirected edges are interned in the shared universe, so zoomed
//! records (or precomputed region statistics, stored as views over the
//! region node) stay queryable with the ordinary machinery.

use std::collections::HashMap;

use crate::agg::{AggFn, AggState};
use crate::ids::{EdgeId, NodeId, Universe};
use crate::record::{GraphRecord, RecordBuilder};

/// A named region: a node group treated as one aggregate node when zoomed
/// out.
#[derive(Clone, Debug)]
pub struct Region {
    /// The aggregate node standing for the group.
    pub node: NodeId,
    members: Vec<NodeId>,
}

impl Region {
    /// Defines a region: interns `name` as the aggregate node.
    ///
    /// # Panics
    ///
    /// Panics when `members` is empty.
    pub fn define(universe: &mut Universe, name: &str, members: &[NodeId]) -> Region {
        assert!(!members.is_empty(), "a region needs at least one member");
        let node = universe.node(name);
        let mut members = members.to_vec();
        members.sort_unstable();
        members.dedup();
        Region { node, members }
    }

    /// True when `n` belongs to the region.
    pub fn contains(&self, n: NodeId) -> bool {
        self.members.binary_search(&n).is_ok()
    }

    /// The member nodes.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }
}

/// Zooms a record out of `region`: internal edges (both endpoints inside)
/// fold into the region node's self-edge under `fold`; boundary edges are
/// redirected to the region node, parallel redirections merging under
/// `fold` as well. Edges not touching the region pass through unchanged.
///
/// With `AggFn::Sum` this matches the paper's examples: "the overall
/// delivery time and cost [of the hidden part] are pre-computed and stored
/// … in the form of an aggregate node".
pub fn zoom_out(
    universe: &mut Universe,
    record: &GraphRecord,
    region: &Region,
    fold: AggFn,
) -> GraphRecord {
    // Accumulate per target edge so algebraic folds (AVG) stay exact.
    let mut acc: HashMap<EdgeId, AggState> = HashMap::new();
    let mut order: Vec<EdgeId> = Vec::new();
    for &(e, m) in record.edges() {
        let (s, t) = universe.endpoints(e);
        let s2 = if region.contains(s) { region.node } else { s };
        let t2 = if region.contains(t) { region.node } else { t };
        let mapped = if (s2, t2) == (s, t) {
            e
        } else {
            universe.edge(s2, t2)
        };
        acc.entry(mapped)
            .or_insert_with(|| {
                order.push(mapped);
                AggState::empty()
            })
            .push(m);
    }
    let mut b = RecordBuilder::with_capacity(order.len());
    for e in order {
        let value = acc[&e]
            .finalize(fold)
            .expect("at least one measure folded per mapped edge");
        b.add(e, value);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's region 2: hubs D, E, F, G with A feeding in and I out.
    fn setup() -> (Universe, GraphRecord, Region) {
        let mut u = Universe::new();
        let a = u.node("A");
        let d = u.node("D");
        let e = u.node("E");
        let g = u.node("G");
        let i = u.node("I");
        let mut b = RecordBuilder::new();
        b.add(u.edge(a, d), 2.0) // boundary in
            .add(u.edge(d, e), 1.5) // internal
            .add(u.edge(e, g), 2.5) // internal
            .add(u.edge(g, i), 1.0); // boundary out
        let record = b.build();
        let region = Region::define(&mut u, "Region2", &[d, e, g]);
        (u, record, region)
    }

    #[test]
    fn internal_edges_fold_into_region_self_edge() {
        let (mut u, record, region) = setup();
        let zoomed = zoom_out(&mut u, &record, &region, AggFn::Sum);
        let self_edge = u.find_edge(region.node, region.node).unwrap();
        assert_eq!(zoomed.measure(self_edge), Some(4.0)); // 1.5 + 2.5
                                                          // Boundary edges redirected.
        let a = u.find_node("A").unwrap();
        let i = u.find_node("I").unwrap();
        let a_in = u.find_edge(a, region.node).unwrap();
        let out_i = u.find_edge(region.node, i).unwrap();
        assert_eq!(zoomed.measure(a_in), Some(2.0));
        assert_eq!(zoomed.measure(out_i), Some(1.0));
        assert_eq!(zoomed.edge_count(), 3);
    }

    #[test]
    fn measure_totals_are_preserved_under_sum() {
        let (mut u, record, region) = setup();
        let zoomed = zoom_out(&mut u, &record, &region, AggFn::Sum);
        let before: f64 = record.edges().iter().map(|&(_, m)| m).sum();
        let after: f64 = zoomed.edges().iter().map(|&(_, m)| m).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn parallel_boundary_edges_merge() {
        let mut u = Universe::new();
        let a = u.node("A");
        let d = u.node("D");
        let e = u.node("E");
        let mut b = RecordBuilder::new();
        b.add(u.edge(a, d), 1.0).add(u.edge(a, e), 3.0);
        let record = b.build();
        let region = Region::define(&mut u, "R", &[d, e]);
        let zoomed = zoom_out(&mut u, &record, &region, AggFn::Max);
        let edge = u.find_edge(a, region.node).unwrap();
        assert_eq!(zoomed.measure(edge), Some(3.0));
        assert_eq!(zoomed.edge_count(), 1);
    }

    #[test]
    fn untouched_edges_pass_through() {
        let mut u = Universe::new();
        let x = u.node("X");
        let y = u.node("Y");
        let d = u.node("D");
        let xy = u.edge(x, y);
        let mut b = RecordBuilder::new();
        b.add(xy, 9.0);
        let record = b.build();
        let region = Region::define(&mut u, "R", &[d]);
        let zoomed = zoom_out(&mut u, &record, &region, AggFn::Sum);
        assert_eq!(zoomed, record);
    }

    #[test]
    fn avg_fold_is_exact() {
        let mut u = Universe::new();
        let d = u.node("D");
        let e = u.node("E");
        let g = u.node("G");
        let mut b = RecordBuilder::new();
        b.add(u.edge(d, e), 2.0).add(u.edge(e, g), 4.0);
        let record = b.build();
        let region = Region::define(&mut u, "R", &[d, e, g]);
        let zoomed = zoom_out(&mut u, &record, &region, AggFn::Avg);
        let self_edge = u.find_edge(region.node, region.node).unwrap();
        assert_eq!(zoomed.measure(self_edge), Some(3.0));
    }

    #[test]
    fn region_membership() {
        let mut u = Universe::new();
        let d = u.node("D");
        let e = u.node("E");
        let x = u.node("X");
        let region = Region::define(&mut u, "R", &[e, d, d]);
        assert!(region.contains(d));
        assert!(region.contains(e));
        assert!(!region.contains(x));
        assert_eq!(region.members().len(), 2);
    }
}
