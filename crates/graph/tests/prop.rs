//! Property tests over the graph model: flattening, zooming and the path
//! algebra must preserve their invariants on arbitrary inputs.

use graphbi_graph::{flatten, zoom, AggFn, EdgeId, NodeId, Path, QueryShape, Universe};
use proptest::prelude::*;

fn walk_strategy() -> impl Strategy<Value = (Vec<u8>, Vec<f64>)> {
    prop::collection::vec(0u8..10, 1..30)
        .prop_flat_map(|nodes| {
            let n = nodes.len();
            (
                Just(nodes),
                prop::collection::vec(0.1f64..50.0, n.saturating_sub(1)..n.max(2) - 1 + 1),
            )
        })
        .prop_map(|(nodes, mut steps)| {
            steps.truncate(nodes.len() - 1);
            (nodes, steps)
        })
}

fn node_ids(u: &mut Universe, raw: &[u8]) -> Vec<NodeId> {
    raw.iter().map(|i| u.node(&format!("n{i}"))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flatten_walk_preserves_sum_and_acyclicity((raw, steps) in walk_strategy()) {
        prop_assume!(steps.len() + 1 == raw.len());
        let mut u = Universe::new();
        let walk = node_ids(&mut u, &raw);
        let record = flatten::flatten_walk(&mut u, &walk, &steps);
        // Measure conservation.
        let total: f64 = record.edges().iter().map(|&(_, m)| m).sum();
        let expect: f64 = steps.iter().sum();
        prop_assert!((total - expect).abs() < 1e-9);
        // Acyclicity.
        let edges: Vec<EdgeId> = record.edges().iter().map(|&(e, _)| e).collect();
        prop_assert!(QueryShape::from_edges(&edges, &u).is_dag());
        // Never more structural elements than steps.
        prop_assert!(record.edge_count() <= steps.len());
    }

    #[test]
    fn flatten_to_dag_preserves_sum(
        pairs in prop::collection::vec((0u8..8, 0u8..8, 0.1f64..10.0), 1..20),
    ) {
        let mut u = Universe::new();
        let edges: Vec<(NodeId, NodeId, f64)> = pairs
            .iter()
            .filter(|(s, t, _)| s != t)
            .map(|&(s, t, m)| {
                (u.node(&format!("n{s}")), u.node(&format!("n{t}")), m)
            })
            .collect();
        prop_assume!(!edges.is_empty());
        let record = flatten::flatten_to_dag(&mut u, &edges);
        let expect: f64 = edges.iter().map(|&(_, _, m)| m).sum();
        let total: f64 = record.edges().iter().map(|&(_, m)| m).sum();
        prop_assert!((total - expect).abs() < 1e-9);
        let ids: Vec<EdgeId> = record.edges().iter().map(|&(e, _)| e).collect();
        prop_assert!(QueryShape::from_edges(&ids, &u).is_dag());
    }

    #[test]
    fn zoom_out_conserves_sums_and_hides_members(
        pairs in prop::collection::vec((0u8..8, 0u8..8, 0.1f64..10.0), 1..20),
        members in prop::collection::btree_set(0u8..8, 1..4),
    ) {
        let mut u = Universe::new();
        let mut b = graphbi_graph::RecordBuilder::new();
        for &(s, t, m) in &pairs {
            let se = u.node(&format!("n{s}"));
            let te = u.node(&format!("n{t}"));
            b.add_combining(u.edge(se, te), m, |a, c| a + c);
        }
        let record = b.build();
        let member_ids: Vec<NodeId> =
            members.iter().map(|i| u.node(&format!("n{i}"))).collect();
        let region = zoom::Region::define(&mut u, "R", &member_ids);
        let zoomed = zoom::zoom_out(&mut u, &record, &region, AggFn::Sum);
        // Measure conservation under SUM.
        let before: f64 = record.edges().iter().map(|&(_, m)| m).sum();
        let after: f64 = zoomed.edges().iter().map(|&(_, m)| m).sum();
        prop_assert!((before - after).abs() < 1e-9);
        // No member node survives as an endpoint.
        for &(e, _) in zoomed.edges() {
            let (s, t) = u.endpoints(e);
            prop_assert!(!region.contains(s), "member endpoint {s:?}");
            prop_assert!(!region.contains(t), "member endpoint {t:?}");
        }
        // Zooming again with the same region is a no-op.
        let twice = zoom::zoom_out(&mut u, &zoomed, &region, AggFn::Sum);
        prop_assert_eq!(&twice, &zoomed);
    }

    #[test]
    fn maximal_paths_cover_every_query_edge(
        pairs in prop::collection::btree_set((0u8..7, 0u8..7), 1..12),
    ) {
        let mut u = Universe::new();
        // Force acyclicity by orienting edges small→large.
        let edges: Vec<EdgeId> = pairs
            .iter()
            .filter(|(s, t)| s < t)
            .map(|&(s, t)| u.edge_by_names(&format!("n{s}"), &format!("n{t}")))
            .collect();
        prop_assume!(!edges.is_empty());
        let shape = QueryShape::from_edges(&edges, &u);
        prop_assert!(shape.is_dag());
        let paths = shape.maximal_paths().unwrap();
        // Every edge appears on at least one maximal path.
        let mut covered = std::collections::BTreeSet::new();
        for p in &paths {
            for w in p.nodes().windows(2) {
                covered.insert(u.find_edge(w[0], w[1]).unwrap());
            }
        }
        for &e in &edges {
            prop_assert!(covered.contains(&e), "edge {e:?} uncovered");
        }
        // No maximal path is a subpath of another.
        for a in &paths {
            for b in &paths {
                if a != b {
                    prop_assert!(!a.is_subpath_of(b), "{a:?} ⊂ {b:?}");
                }
            }
        }
    }

    #[test]
    fn path_display_parses_back(
        names in prop::collection::vec("[a-z][a-z0-9]{0,4}", 1..6),
        closed_start in any::<bool>(),
        closed_end in any::<bool>(),
    ) {
        use graphbi_graph::Endpoint;
        let mut u = Universe::new();
        let mut seen = std::collections::BTreeSet::new();
        let nodes: Vec<NodeId> = names
            .iter()
            .filter(|n| seen.insert((*n).clone()))
            .map(|n| u.node(n))
            .collect();
        prop_assume!(!nodes.is_empty());
        let p = Path::new(
            nodes.clone(),
            if closed_start { Endpoint::Closed } else { Endpoint::Open },
            if closed_end { Endpoint::Closed } else { Endpoint::Open },
        )
        .unwrap();
        let text = p.display(&u).to_string();
        // The bracket notation is self-describing: endpoints and node names
        // reconstruct exactly.
        let inner = &text[1..text.len() - 1];
        let parsed: Vec<&str> = inner.split(',').collect();
        prop_assert_eq!(parsed.len(), nodes.len());
        for (name, &id) in parsed.iter().zip(&nodes) {
            prop_assert_eq!(u.find_node(name), Some(id));
        }
        prop_assert_eq!(text.starts_with('['), closed_start);
        prop_assert_eq!(text.ends_with(']'), closed_end);
    }
}
