//! §3.3's worked composite-path expression over Figure 1:
//! `[Src(Gq), Src(R2)) ⋈ [Src(R2), Ter(R2)] ⋈ (Ter(R2), Ter(Gq)]`
//! selects exactly the paths that traverse region 2, excluding `[C,H,K]`.

use graphbi_graph::{CompositePath, Endpoint, NodeId, Path, QueryShape, Universe};

/// Figure 1's routes: A→D→E→G→I, A→B→F→J→K, C→H→K; region 2 = {D,E,F,G,B}.
fn figure1(u: &mut Universe) -> Vec<graphbi_graph::EdgeId> {
    [
        ("A", "D"),
        ("D", "E"),
        ("E", "G"),
        ("G", "I"),
        ("A", "B"),
        ("B", "F"),
        ("F", "J"),
        ("J", "K"),
        ("C", "H"),
        ("H", "K"),
    ]
    .iter()
    .map(|(s, t)| u.edge_by_names(s, t))
    .collect()
}

fn nodes(u: &Universe, names: &[&str]) -> Vec<NodeId> {
    names.iter().map(|n| u.find_node(n).unwrap()).collect()
}

#[test]
fn composite_expression_selects_region_traversals() {
    let mut u = Universe::new();
    let edges = figure1(&mut u);
    let shape = QueryShape::from_edges(&edges, &u);

    // Region 2 of the figure: hubs between production lines and customers.
    let region = nodes(&u, &["D", "E", "G", "B", "F"]);
    let sources = shape.sources(); // {A, C}
    let terminals = shape.terminals(); // {I, K}

    // Src(R2)/Ter(R2) relative to the region subgraph: entry hubs receive
    // from outside, exit hubs send outside.
    let entry = nodes(&u, &["D", "B"]);
    let exit = nodes(&u, &["G", "F"]);

    // [Src(Gq), Src(R2)): all paths from sources into region entries, open
    // at the region end so the join composes.
    let into: Vec<Path> = shape
        .paths_between(&sources, &entry)
        .into_iter()
        .map(|p| Path::new(p.nodes().to_vec(), Endpoint::Closed, Endpoint::Open).unwrap())
        // Keep only direct entries (no hop through the region itself).
        .filter(|p| {
            p.nodes()[..p.nodes().len() - 1]
                .iter()
                .all(|n| !region.contains(n))
        })
        .collect();
    let through: Vec<Path> = shape
        .paths_between(&entry, &exit)
        .into_iter()
        .map(|p| Path::new(p.nodes().to_vec(), Endpoint::Closed, Endpoint::Closed).unwrap())
        .filter(|p| p.nodes().iter().all(|n| region.contains(n)))
        .collect();
    let out_of: Vec<Path> = shape
        .paths_between(&exit, &terminals)
        .into_iter()
        .map(|p| Path::new(p.nodes().to_vec(), Endpoint::Open, Endpoint::Closed).unwrap())
        .filter(|p| p.nodes()[1..].iter().all(|n| !region.contains(n)))
        .collect();

    let composed = CompositePath::new(into)
        .join(&CompositePath::new(through))
        .join(&CompositePath::new(out_of));

    let mut rendered: Vec<String> = composed
        .paths()
        .iter()
        .map(|p| p.display(&u).to_string())
        .collect();
    rendered.sort();
    // Exactly the two region-2 corridors; [C,H,K] is excluded because it
    // "does not contain any location in R2" (§3.3).
    assert_eq!(rendered, vec!["[A,B,F,J,K]", "[A,D,E,G,I]"]);
}
