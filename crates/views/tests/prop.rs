//! Property tests of the view framework's invariants (§5).

use graphbi_graph::{EdgeId, GraphQuery};
use graphbi_views::{
    cover_path, generate_candidates, generate_candidates_min_sup, rewrite_query, select_views,
    PathSegment, Rewrite,
};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = Vec<GraphQuery>> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..20, 1..8)
            .prop_map(|s| GraphQuery::from_edges(s.into_iter().map(EdgeId).collect())),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn candidates_include_queries_and_pairwise_intersections(qs in workload()) {
        let cands = generate_candidates(&qs);
        let sets: Vec<&[EdgeId]> = cands.iter().map(|c| c.edges.as_slice()).collect();
        for q in &qs {
            if q.len() >= 2 {
                prop_assert!(sets.contains(&q.edges()), "query {:?} missing", q);
            }
        }
        for a in &qs {
            for b in &qs {
                let common = a.intersect(b);
                if common.len() >= 2 && common.len() < a.len().max(b.len()) {
                    prop_assert!(
                        sets.contains(&common.edges()),
                        "intersection {:?} missing",
                        common
                    );
                }
            }
        }
        // Candidate usability lists are exact.
        for c in &cands {
            for (qi, q) in qs.iter().enumerate() {
                let usable = GraphQuery::from_edges(c.edges.clone()).is_subquery_of(q);
                prop_assert_eq!(c.queries.contains(&(qi as u32)), usable);
            }
        }
    }

    #[test]
    fn no_candidate_is_superseded(qs in workload()) {
        // §5.2's monotonicity: no candidate may have a strict superset
        // candidate usable for exactly the same queries.
        let cands = generate_candidates(&qs);
        for a in &cands {
            for b in &cands {
                if a.edges.len() < b.edges.len()
                    && a.queries == b.queries
                    && a.edges.iter().all(|e| b.edges.contains(e))
                {
                    prop_assert!(false, "{:?} superseded by {:?}", a.edges, b.edges);
                }
            }
        }
    }

    #[test]
    fn min_sup_candidates_shrink_monotonically(qs in workload()) {
        let mut last = usize::MAX;
        for ms in 1..=4usize {
            let n = generate_candidates_min_sup(&qs, ms).len();
            prop_assert!(n <= last);
            last = n;
        }
    }

    #[test]
    fn selection_respects_budget_and_is_useful(qs in workload(), budget in 0usize..8) {
        let cands = generate_candidates(&qs);
        let chosen = select_views(&qs, &cands, budget);
        prop_assert!(chosen.len() <= budget);
        // No duplicates.
        let mut c = chosen.clone();
        c.sort_unstable();
        c.dedup();
        prop_assert_eq!(c.len(), chosen.len());
        // Every chosen view serves at least one query.
        for &i in &chosen {
            prop_assert!(!cands[i].queries.is_empty());
        }
    }

    #[test]
    fn rewrite_is_exact_and_no_worse(qs in workload(), budget in 0usize..8) {
        let cands = generate_candidates(&qs);
        let chosen = select_views(&qs, &cands, budget);
        let views: Vec<Vec<EdgeId>> = chosen.iter().map(|&i| cands[i].edges.clone()).collect();
        for q in &qs {
            let r = rewrite_query(q, &views);
            // Soundness: every used view is a subgraph of the query.
            let mut covered: std::collections::BTreeSet<EdgeId> =
                r.residual_edges.iter().copied().collect();
            for &vi in &r.views {
                for &e in &views[vi] {
                    prop_assert!(q.contains(e), "view leaks edge {e:?}");
                    covered.insert(e);
                }
            }
            // Completeness: views ∪ residual = query edges.
            let expect: std::collections::BTreeSet<EdgeId> = q.edges().iter().copied().collect();
            prop_assert_eq!(covered, expect);
            // Cost: never worse than the oblivious plan.
            prop_assert!(r.bitmap_cost() <= Rewrite::oblivious(q).bitmap_cost());
        }
    }

    #[test]
    fn greedy_is_near_optimal_on_small_instances(qs in workload(), budget in 1usize..4) {
        // Exhaustively find the best candidate subset of size ≤ budget and
        // compare workload bitmap cost; §5.3 promises an H(n) factor, and on
        // these tiny instances the greedy should be within 2× of optimal.
        let cands = generate_candidates(&qs);
        prop_assume!(cands.len() <= 12);
        let cost_of = |chosen: &[usize]| -> usize {
            let views: Vec<Vec<EdgeId>> = chosen.iter().map(|&i| cands[i].edges.clone()).collect();
            qs.iter().map(|q| rewrite_query(q, &views).bitmap_cost()).sum()
        };
        // Optimal by brute force over subsets of size ≤ budget.
        let mut best = cost_of(&[]);
        let n = cands.len();
        for mask in 0u32..(1 << n) {
            if (mask.count_ones() as usize) > budget {
                continue;
            }
            let subset: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            best = best.min(cost_of(&subset));
        }
        let greedy = select_views(&qs, &cands, budget);
        let greedy_cost = cost_of(&greedy);
        prop_assert!(
            greedy_cost <= best * 2,
            "greedy {greedy_cost} vs optimal {best}"
        );
    }

    #[test]
    fn cover_path_partitions_exactly(
        path in prop::collection::vec(0u32..30, 1..12),
        views in prop::collection::vec(prop::collection::vec(0u32..30, 2..5), 0..6),
    ) {
        let path: Vec<EdgeId> = path.into_iter().map(EdgeId).collect();
        let views: Vec<Vec<EdgeId>> = views
            .into_iter()
            .map(|v| v.into_iter().map(EdgeId).collect())
            .collect();
        let cover = cover_path(&path, &views);
        // Segments reproduce the path exactly, in order.
        let mut rebuilt: Vec<EdgeId> = Vec::new();
        for seg in &cover.segments {
            match *seg {
                PathSegment::View { view, len } => {
                    prop_assert_eq!(views[view].len(), len);
                    rebuilt.extend(&views[view]);
                }
                PathSegment::Edge(e) => rebuilt.push(e),
            }
        }
        prop_assert_eq!(rebuilt, path);
    }
}
