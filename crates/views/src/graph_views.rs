//! Graph-view candidate generation and greedy selection (§5.2).

use std::collections::BTreeSet;

use graphbi_graph::{EdgeId, GraphQuery};
use graphbi_mining::closure::closed_itemsets;

/// A candidate graph view: an edge set plus the workload queries it can
/// serve (those it is a subgraph of).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateGraphView {
    /// Sorted edge ids of the view subgraph.
    pub edges: Vec<EdgeId>,
    /// Indices into the workload of the queries containing this view.
    pub queries: Vec<u32>,
}

impl CandidateGraphView {
    /// Bitmap fetches saved when one query uses this view instead of its
    /// edges: `|B| − 1` (§5.1.1).
    pub fn saving_per_query(&self) -> usize {
        self.edges.len().saturating_sub(1)
    }
}

/// Generates the candidate set `C_v` for a workload: the intersection
/// closure of the query graphs (§5.2).
///
/// The result contains every query graph, every pairwise intersection, and
/// recursively the intersections of those — with all superseded views
/// already filtered out, because the closure family is exactly what the
/// monotonicity property leaves standing. Single-edge sets are excluded:
/// their bitmaps are base columns already.
pub fn generate_candidates(queries: &[GraphQuery]) -> Vec<CandidateGraphView> {
    generate_candidates_min_sup(queries, 1)
}

/// Candidate generation with the a-priori style support threshold (§5.2's
/// workaround for heavily-overlapping workloads): only edge sets contained
/// in at least `min_sup` queries become candidates. `min_sup = 1` gives the
/// full closure.
pub fn generate_candidates_min_sup(
    queries: &[GraphQuery],
    min_sup: usize,
) -> Vec<CandidateGraphView> {
    let transactions: Vec<Vec<EdgeId>> = queries.iter().map(|q| q.edges().to_vec()).collect();
    closed_itemsets(&transactions, min_sup)
        .into_iter()
        .filter(|m| m.edges.len() >= 2)
        .map(|m| CandidateGraphView {
            edges: m.edges,
            queries: m.tids,
        })
        .collect()
}

/// Greedy extended set cover (§5.2): picks at most `budget` views from
/// `candidates` so that the workload's query edges are covered with as few
/// bitmap fetches as possible.
///
/// Each query is a universe; a set (candidate view, or implicitly any single
/// edge) covers a universe's elements only when it is a *subset* of that
/// universe. Each greedy step takes the set covering the most uncovered
/// elements across all universes; selection stops after `budget` views, or
/// as soon as a single edge would be the best pick (at that point views
/// cannot beat the base bitmaps anymore).
///
/// Returns indices into `candidates`, in selection order.
pub fn select_views(
    queries: &[GraphQuery],
    candidates: &[CandidateGraphView],
    budget: usize,
) -> Vec<usize> {
    // Uncovered edge sets per universe.
    let mut uncovered: Vec<BTreeSet<EdgeId>> = queries
        .iter()
        .map(|q| q.edges().iter().copied().collect())
        .collect();
    let mut chosen: Vec<usize> = Vec::new();
    let mut available: Vec<bool> = vec![true; candidates.len()];

    while chosen.len() < budget {
        // Best candidate view by total uncovered coverage.
        let mut best: Option<(usize, usize)> = None; // (benefit, index)
        for (i, c) in candidates.iter().enumerate() {
            if !available[i] {
                continue;
            }
            let benefit: usize = c
                .queries
                .iter()
                .map(|&q| {
                    c.edges
                        .iter()
                        .filter(|e| uncovered[q as usize].contains(e))
                        .count()
                })
                .sum();
            if benefit == 0 {
                continue;
            }
            let better = match best {
                None => true,
                // Tie-break on fewer edges (cheaper view), then lower index,
                // for determinism.
                Some((bb, bi)) => {
                    benefit > bb || (benefit == bb && candidates[bi].edges.len() > c.edges.len())
                }
            };
            if better {
                best = Some((benefit, i));
            }
        }
        let Some((benefit, idx)) = best else { break };

        // Best single edge: covers one uncovered slot per universe holding
        // it. If that beats every view, the greedy would pick a base bitmap
        // — the signal to stop materializing (§5.2).
        let best_edge_benefit = best_single_edge_benefit(&uncovered);
        if best_edge_benefit > benefit {
            break;
        }

        chosen.push(idx);
        available[idx] = false;
        for &q in &candidates[idx].queries {
            for e in &candidates[idx].edges {
                uncovered[q as usize].remove(e);
            }
        }
    }
    chosen
}

fn best_single_edge_benefit(uncovered: &[BTreeSet<EdgeId>]) -> usize {
    let mut counts: std::collections::HashMap<EdgeId, usize> = std::collections::HashMap::new();
    for u in uncovered {
        for &e in u {
            *counts.entry(e).or_default() += 1;
        }
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u32]) -> GraphQuery {
        GraphQuery::from_edges(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    fn edges(c: &CandidateGraphView) -> Vec<u32> {
        c.edges.iter().map(|e| e.0).collect()
    }

    #[test]
    fn candidates_contain_every_query_and_intersections() {
        // §5.2's construction: each query, plus pairwise intersections.
        let queries = vec![q(&[1, 2, 3, 4]), q(&[3, 4, 5, 6]), q(&[1, 2, 7])];
        let cands = generate_candidates(&queries);
        let sets: Vec<Vec<u32>> = cands.iter().map(edges).collect();
        assert!(sets.contains(&vec![1, 2, 3, 4]));
        assert!(sets.contains(&vec![3, 4, 5, 6]));
        assert!(sets.contains(&vec![1, 2, 7]));
        assert!(sets.contains(&vec![3, 4])); // q0 ∩ q1
        assert!(sets.contains(&vec![1, 2])); // q0 ∩ q2
                                             // q1 ∩ q2 = ∅ — not a candidate; no single edges either.
        assert!(sets.iter().all(|s| s.len() >= 2));
    }

    #[test]
    fn subset_query_is_still_a_candidate() {
        // §5.2's first observation: Gqi ⊂ Gqj does NOT supersede Gqi.
        let queries = vec![q(&[1, 2]), q(&[1, 2, 3, 4])];
        let cands = generate_candidates(&queries);
        let sets: Vec<Vec<u32>> = cands.iter().map(edges).collect();
        assert!(sets.contains(&vec![1, 2]));
        assert!(sets.contains(&vec![1, 2, 3, 4]));
        // The small view serves both queries.
        let small = cands.iter().find(|c| edges(c) == vec![1, 2]).unwrap();
        assert_eq!(small.queries, vec![0, 1]);
    }

    #[test]
    fn min_sup_shrinks_candidates_monotonically() {
        let queries = vec![
            q(&[1, 2, 3]),
            q(&[2, 3, 4]),
            q(&[1, 2, 3]),
            q(&[2, 3, 5]),
            q(&[6, 7]),
        ];
        let mut last = usize::MAX;
        for ms in 1..=4 {
            let n = generate_candidates_min_sup(&queries, ms).len();
            assert!(n <= last, "minSup={ms}: {n} > {last}");
            last = n;
        }
        // {2,3} has support 4, so it survives min_sup=4.
        let at4 = generate_candidates_min_sup(&queries, 4);
        assert_eq!(at4.len(), 1);
        assert_eq!(edges(&at4[0]), vec![2, 3]);
    }

    #[test]
    fn single_query_selects_the_whole_query() {
        // §5.2: for one query the optimal single view is the query itself.
        let queries = vec![q(&[1, 2, 3, 4, 5])];
        let cands = generate_candidates(&queries);
        let sel = select_views(&queries, &cands, 1);
        assert_eq!(sel.len(), 1);
        assert_eq!(edges(&cands[sel[0]]), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn shared_subgraph_wins_over_single_query_view() {
        // Three queries sharing {1,2,3}; the shared view covers 9 slots,
        // each whole-query view only 5.
        let queries = vec![
            q(&[1, 2, 3, 4, 5]),
            q(&[1, 2, 3, 6, 7]),
            q(&[1, 2, 3, 8, 9]),
        ];
        let cands = generate_candidates(&queries);
        let sel = select_views(&queries, &cands, 1);
        assert_eq!(edges(&cands[sel[0]]), vec![1, 2, 3]);
    }

    #[test]
    fn budget_caps_selection() {
        let queries = vec![q(&[1, 2]), q(&[3, 4]), q(&[5, 6])];
        let cands = generate_candidates(&queries);
        assert_eq!(select_views(&queries, &cands, 2).len(), 2);
        assert_eq!(select_views(&queries, &cands, 10).len(), 3);
        assert!(select_views(&queries, &cands, 0).is_empty());
    }

    #[test]
    fn selection_stops_when_single_edges_win() {
        // One shared pair and many distinct single edges spread over many
        // queries: once {1,2} is taken, every remaining candidate covers at
        // most its own query while edge 9 is uncovered in four universes.
        let queries = vec![
            q(&[1, 2, 9]),
            q(&[9, 30, 31]),
            q(&[9, 40, 41]),
            q(&[9, 50, 51]),
            q(&[1, 2, 9, 60]),
        ];
        let cands = generate_candidates(&queries);
        let sel = select_views(&queries, &cands, 10);
        // {1,2,9} or {9,..} pairs exist; the point is termination, not the
        // exact set: selection must stop before exhausting the budget.
        assert!(sel.len() < 10);
        for w in &sel {
            assert!(cands[*w].edges.len() >= 2);
        }
    }

    #[test]
    fn empty_workload_yields_nothing() {
        assert!(generate_candidates(&[]).is_empty());
        assert!(select_views(&[], &[], 5).is_empty());
    }
}
