#![warn(missing_docs)]

//! Materialized graph views (§5): the paper's primary contribution.
//!
//! Two view species, each with a candidate generator, a greedy selector and
//! a query-time rewriter:
//!
//! * **Graph views** ([`graph_views`], [`rewrite`]) — a graph view is the
//!   precomputed conjunction of the bitmaps of an edge set; using it in a
//!   query replaces `|B|` bitmap fetches with one. Candidates are the closed
//!   family of the query workload (every query, every intersection of
//!   queries, recursively — the fixpoint the supersede/monotonicity property
//!   of §5.2 leaves standing), selection is a greedy *extended set cover*
//!   over multiple universes under a budget of `k` views, and the same
//!   greedy (single universe) rewrites an incoming query over whatever views
//!   exist.
//! * **Aggregate graph views** ([`agg_views`]) — a measure column holding a
//!   path's pre-aggregated value plus the path's bitmap. Candidates are the
//!   paths between *interesting nodes* of the workload's union graph
//!   (§5.4), the benefit model is proportional to path length, and the
//!   rewriter tiles each maximal query path with non-overlapping view
//!   segments so distributive sub-aggregates compose exactly.
//!
//! This crate is pure algorithm — it plans which views to build and how to
//! use them; materializing the actual bitmap/measure columns is the storage
//! engine's job (`graphbi` core crate).

pub mod agg_views;
pub mod graph_views;
pub mod rewrite;

pub use agg_views::{
    agg_candidates, agg_candidates_min_sup, cover_path, interesting_nodes, select_agg_views,
    AggViewCandidate, PathCover, PathSegment,
};
pub use graph_views::{
    generate_candidates, generate_candidates_min_sup, select_views, CandidateGraphView,
};
pub use rewrite::{rewrite_query, rewrite_query_ranked, Rewrite};
