//! Aggregate graph views (§5.1.2, §5.4).
//!
//! An aggregate graph view materializes, for a path `p`, a measure column
//! `m_p` holding `F` of the measures along `p` (per record containing `p`)
//! and the path's bitmap `b_p`. It replaces `len(p)` measure fetches with
//! one, so — unlike plain graph views — longer is strictly better: the
//! monotonicity property of §5.4.
//!
//! Candidate views are the paths of length ≥ 2 between *interesting nodes*
//! of `G_All`, the union graph of the workload's maximal paths. Selection is
//! the same greedy set cover, with benefit proportional to the covered path
//! length; query time tiles each maximal path with non-overlapping view
//! segments whose distributive sub-aggregates compose exactly.

use std::collections::{BTreeMap, BTreeSet};

use graphbi_graph::{EdgeId, GraphError, GraphQuery, NodeId, Path, Universe};

/// A candidate aggregate graph view: one concrete path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggViewCandidate {
    /// Node sequence of the path.
    pub nodes: Vec<NodeId>,
    /// The path's consecutive edges, in path order (`len = nodes.len()−1`).
    pub edges: Vec<EdgeId>,
}

impl AggViewCandidate {
    fn from_nodes(nodes: Vec<NodeId>, universe: &Universe) -> Option<AggViewCandidate> {
        let edges: Option<Vec<EdgeId>> = nodes
            .windows(2)
            .map(|w| universe.find_edge(w[0], w[1]))
            .collect();
        Some(AggViewCandidate {
            edges: edges?,
            nodes,
        })
    }
}

/// The interesting nodes of a set of maximal paths (§5.4): path origins and
/// endpoints, plus branch points — nodes where two or more distinct
/// traversed edges start, or two or more end.
pub fn interesting_nodes(paths: &[Path]) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let mut out_edges: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    let mut in_edges: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for p in paths {
        let nodes = p.nodes();
        if let (Some(&first), Some(&last)) = (nodes.first(), nodes.last()) {
            out.insert(first);
            out.insert(last);
        }
        for w in nodes.windows(2) {
            out_edges.entry(w[0]).or_default().insert(w[1]);
            in_edges.entry(w[1]).or_default().insert(w[0]);
        }
    }
    for (n, targets) in &out_edges {
        if targets.len() >= 2 {
            out.insert(*n);
        }
    }
    for (n, sources) in &in_edges {
        if sources.len() >= 2 {
            out.insert(*n);
        }
    }
    out
}

/// Generates the candidate aggregate views `C_p` for a workload of
/// path-aggregation queries (§5.4): all simple paths of length ≥ 2 between
/// interesting nodes in `G_All`, capped at the longest maximal path of the
/// workload (longer candidates can never be a subpath of any query path).
///
/// Fails when a query graph is cyclic ([`GraphError::CyclicQuery`]).
pub fn agg_candidates(
    queries: &[GraphQuery],
    universe: &Universe,
) -> Result<Vec<AggViewCandidate>, GraphError> {
    agg_candidates_min_sup(queries, universe, 1)
}

/// Candidate generation with a support threshold, as swept in Figure 9: a
/// candidate is kept only when it occurs as a subpath of the maximal paths
/// of at least `min_sup` distinct workload queries.
pub fn agg_candidates_min_sup(
    queries: &[GraphQuery],
    universe: &Universe,
    min_sup: usize,
) -> Result<Vec<AggViewCandidate>, GraphError> {
    let per_query_paths: Vec<Vec<Path>> = queries
        .iter()
        .map(|q| q.maximal_paths(universe))
        .collect::<Result<_, _>>()?;
    let all_paths: Vec<Path> = per_query_paths.iter().flatten().cloned().collect();
    let interesting = interesting_nodes(&all_paths);
    let max_len = all_paths.iter().map(Path::edge_len).max().unwrap_or(0);

    // G_All adjacency: edges traversed by any maximal path.
    let mut succ: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for p in &all_paths {
        for w in p.nodes().windows(2) {
            succ.entry(w[0]).or_default().insert(w[1]);
        }
    }

    // Enumerate simple paths between interesting nodes, DFS, length ≥ 2.
    let mut found: BTreeSet<Vec<NodeId>> = BTreeSet::new();
    for &start in &interesting {
        let mut stack = vec![start];
        let mut on_path: BTreeSet<NodeId> = [start].into();
        dfs(
            &mut stack,
            &mut on_path,
            &succ,
            &interesting,
            max_len,
            &mut found,
        );
    }

    let candidates: Vec<AggViewCandidate> = found
        .into_iter()
        .filter_map(|nodes| AggViewCandidate::from_nodes(nodes, universe))
        .filter(|c| {
            if min_sup <= 1 {
                return true;
            }
            per_query_paths
                .iter()
                .filter(|paths| {
                    paths.iter().any(|p| {
                        occurrences(&c.edges, &path_edges(p, universe))
                            .next()
                            .is_some()
                    })
                })
                .count()
                >= min_sup
        })
        .collect();
    Ok(candidates)
}

fn dfs(
    stack: &mut Vec<NodeId>,
    on_path: &mut BTreeSet<NodeId>,
    succ: &BTreeMap<NodeId, BTreeSet<NodeId>>,
    interesting: &BTreeSet<NodeId>,
    max_len: usize,
    found: &mut BTreeSet<Vec<NodeId>>,
) {
    // `max_len` is in edges; a path of k edges has k+1 nodes.
    if stack.len() > max_len + 1 {
        return;
    }
    let last = *stack.last().expect("stack non-empty");
    if stack.len() >= 3 && interesting.contains(&last) {
        found.insert(stack.clone());
        // Keep extending: longer paths through interesting nodes are also
        // candidates ([A,C,E,F,G] in the paper's example passes through E).
    }
    let Some(nexts) = succ.get(&last) else { return };
    for &n in nexts {
        if on_path.contains(&n) {
            continue;
        }
        stack.push(n);
        on_path.insert(n);
        dfs(stack, on_path, succ, interesting, max_len, found);
        on_path.remove(&n);
        stack.pop();
    }
}

/// Ordered consecutive edges of a maximal path (all present in the universe
/// by construction).
fn path_edges(p: &Path, universe: &Universe) -> Vec<EdgeId> {
    p.nodes()
        .windows(2)
        .map(|w| {
            universe
                .find_edge(w[0], w[1])
                .expect("maximal path edges exist")
        })
        .collect()
}

/// Start offsets where `needle` occurs as a contiguous subsequence.
fn occurrences<'a>(
    needle: &'a [EdgeId],
    haystack: &'a [EdgeId],
) -> impl Iterator<Item = usize> + 'a {
    let n = needle.len();
    (0..haystack.len().saturating_sub(n.saturating_sub(1)))
        .filter(move |&i| n > 0 && haystack[i..i + n] == *needle)
}

/// Greedy selection of at most `budget` aggregate views (§5.4).
///
/// Universes are the edge slots of every maximal path of every query; a
/// candidate covers the slots of each of its occurrences. Benefit is the
/// number of newly covered slots — a monotone proxy for the measure columns
/// the view replaces, which is all the paper's cost model requires.
/// Selection stops when the best candidate covers fewer than two uncovered
/// slots (such a view cannot beat the base measure columns).
///
/// Returns indices into `candidates`, in selection order.
pub fn select_agg_views(
    queries: &[GraphQuery],
    universe: &Universe,
    candidates: &[AggViewCandidate],
    budget: usize,
) -> Result<Vec<usize>, GraphError> {
    // Flatten workload into maximal-path edge sequences.
    let mut paths: Vec<Vec<EdgeId>> = Vec::new();
    for q in queries {
        for p in q.maximal_paths(universe)? {
            paths.push(path_edges(&p, universe));
        }
    }
    let mut covered: Vec<Vec<bool>> = paths.iter().map(|p| vec![false; p.len()]).collect();
    let mut chosen = Vec::new();
    let mut available = vec![true; candidates.len()];

    while chosen.len() < budget {
        let mut best: Option<(usize, usize)> = None;
        for (ci, c) in candidates.iter().enumerate() {
            if !available[ci] {
                continue;
            }
            let mut benefit = 0usize;
            for (pi, p) in paths.iter().enumerate() {
                for start in occurrences(&c.edges, p) {
                    benefit += covered[pi][start..start + c.edges.len()]
                        .iter()
                        .filter(|&&b| !b)
                        .count();
                }
            }
            let better = match best {
                None => benefit >= 2,
                Some((bb, bi)) => {
                    benefit > bb || (benefit == bb && candidates[bi].edges.len() < c.edges.len())
                }
            };
            if better && benefit >= 2 {
                best = Some((benefit, ci));
            }
        }
        let Some((_, ci)) = best else { break };
        chosen.push(ci);
        available[ci] = false;
        for (pi, p) in paths.iter().enumerate() {
            for start in occurrences(&candidates[ci].edges, p) {
                for b in &mut covered[pi][start..start + candidates[ci].edges.len()] {
                    *b = true;
                }
            }
        }
    }
    Ok(chosen)
}

/// One piece of a tiled maximal path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathSegment {
    /// Use materialized view `view` (index into the view list), spanning
    /// `len` consecutive edges of the path.
    View {
        /// Index into the materialized-view list passed to [`cover_path`].
        view: usize,
        /// Number of consecutive path edges the view spans.
        len: usize,
    },
    /// Fetch this edge's own measure column.
    Edge(EdgeId),
}

/// A tiling of one maximal path into non-overlapping segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathCover {
    /// Segments in path order; their lengths sum to the path's edge count.
    pub segments: Vec<PathSegment>,
}

impl PathCover {
    /// Measure columns fetched under this tiling (one per segment).
    pub fn column_cost(&self) -> usize {
        self.segments.len()
    }

    /// Number of edges covered by views rather than base columns.
    pub fn edges_via_views(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                PathSegment::View { len, .. } => *len,
                PathSegment::Edge(_) => 0,
            })
            .sum()
    }
}

/// Tiles `path_edges` left-to-right with the longest matching view at each
/// position (views are ordered edge sequences).
///
/// Because segments never overlap, each measure contributes exactly once and
/// distributive sub-aggregates of the segments merge into the path's
/// aggregate.
pub fn cover_path(path_edges: &[EdgeId], views: &[Vec<EdgeId>]) -> PathCover {
    let mut segments = Vec::new();
    let mut i = 0;
    while i < path_edges.len() {
        let mut best: Option<(usize, usize)> = None; // (len, view idx)
        for (vi, v) in views.iter().enumerate() {
            let n = v.len();
            if n >= 2
                && i + n <= path_edges.len()
                && path_edges[i..i + n] == v[..]
                && best.is_none_or(|(bl, _)| n > bl)
            {
                best = Some((n, vi));
            }
        }
        match best {
            Some((len, view)) => {
                segments.push(PathSegment::View { view, len });
                i += len;
            }
            None => {
                segments.push(PathSegment::Edge(path_edges[i]));
                i += 1;
            }
        }
    }
    PathCover { segments }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 graphs as *queries* (§5.4's worked example):
    /// record 1: A→C→E, A→B; record 2: A→C→E→F→G, A→D→E (diamond);
    /// record 3: A→D→E→F→G.
    fn figure2(u: &mut Universe) -> Vec<GraphQuery> {
        let q1 = GraphQuery::from_edge_names(u, &[("A", "C"), ("C", "E"), ("A", "B")]);
        let q2 = GraphQuery::from_edge_names(
            u,
            &[
                ("A", "C"),
                ("C", "E"),
                ("A", "D"),
                ("D", "E"),
                ("E", "F"),
                ("F", "G"),
            ],
        );
        let q3 = GraphQuery::from_edge_names(u, &[("A", "D"), ("D", "E"), ("E", "F"), ("F", "G")]);
        vec![q1, q2, q3]
    }

    fn render(c: &AggViewCandidate, u: &Universe) -> String {
        c.nodes
            .iter()
            .map(|&n| u.node_name(n).to_owned())
            .collect::<Vec<_>>()
            .join(",")
    }

    #[test]
    fn paper_example_interesting_nodes_and_candidates() {
        let mut u = Universe::new();
        let queries = figure2(&mut u);
        let paths: Vec<Path> = queries
            .iter()
            .flat_map(|q| q.maximal_paths(&u).unwrap())
            .collect();
        let interesting = interesting_nodes(&paths);
        let mut names: Vec<&str> = interesting.iter().map(|&n| u.node_name(n)).collect();
        names.sort();
        // §5.4: "the interesting nodes are A, B, E and G".
        assert_eq!(names, vec!["A", "B", "E", "G"]);

        let cands = agg_candidates(&queries, &u).unwrap();
        let mut rendered: Vec<String> = cands.iter().map(|c| render(c, &u)).collect();
        rendered.sort();
        // §5.4: "the candidate paths are [A,C,E], [A,D,E], [A,C,E,F,G],
        // [A,D,E,F,G] and [E,F,G] resulting in 5 candidate aggregate views".
        assert_eq!(
            rendered,
            vec!["A,C,E", "A,C,E,F,G", "A,D,E", "A,D,E,F,G", "E,F,G"]
        );
    }

    #[test]
    fn selection_respects_budget_and_prefers_shared_paths() {
        let mut u = Universe::new();
        let queries = figure2(&mut u);
        let cands = agg_candidates(&queries, &u).unwrap();
        let sel = select_agg_views(&queries, &u, &cands, 2).unwrap();
        assert!(sel.len() <= 2);
        assert!(!sel.is_empty());
        // The first pick must be one of the two 4-edge full paths (benefit 4
        // beats the shared [E,F,G]'s 2+2=4? [E,F,G] covers 2 slots in two
        // paths = 4, full paths cover 4 in one — tie broken toward longer).
        let first = &cands[sel[0]];
        assert!(first.edges.len() >= 2);
    }

    #[test]
    fn min_sup_filters_rarely_shared_candidates() {
        let mut u = Universe::new();
        let queries = figure2(&mut u);
        let all = agg_candidates_min_sup(&queries, &u, 1).unwrap();
        let shared = agg_candidates_min_sup(&queries, &u, 2).unwrap();
        assert!(shared.len() < all.len());
        // [E,F,G] is a subpath of maximal paths in queries 2 and 3.
        assert!(shared.iter().any(|c| render(c, &u) == "E,F,G"));
        // [A,C,E,F,G] exists only in query 2.
        assert!(!shared.iter().any(|c| render(c, &u) == "A,C,E,F,G"));
    }

    #[test]
    fn cover_path_tiles_longest_first() {
        let e: Vec<EdgeId> = (0..6).map(EdgeId).collect();
        let path = e.clone();
        let views = vec![vec![e[0], e[1]], vec![e[0], e[1], e[2]], vec![e[4], e[5]]];
        let cover = cover_path(&path, &views);
        assert_eq!(
            cover.segments,
            vec![
                PathSegment::View { view: 1, len: 3 },
                PathSegment::Edge(e[3]),
                PathSegment::View { view: 2, len: 2 },
            ]
        );
        assert_eq!(cover.column_cost(), 3);
        assert_eq!(cover.edges_via_views(), 5);
    }

    #[test]
    fn cover_path_without_views_is_all_edges() {
        let e: Vec<EdgeId> = (0..3).map(EdgeId).collect();
        let cover = cover_path(&e, &[]);
        assert_eq!(cover.column_cost(), 3);
        assert_eq!(cover.edges_via_views(), 0);
    }

    #[test]
    fn cover_segments_partition_the_path() {
        let e: Vec<EdgeId> = (0..8).map(EdgeId).collect();
        let views = vec![vec![e[1], e[2], e[3]], vec![e[3], e[4]], vec![e[6], e[7]]];
        let cover = cover_path(&e, &views);
        let total: usize = cover
            .segments
            .iter()
            .map(|s| match s {
                PathSegment::View { len, .. } => *len,
                PathSegment::Edge(_) => 1,
            })
            .sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn cyclic_query_surfaces_error() {
        let mut u = Universe::new();
        let q = GraphQuery::from_edge_names(&mut u, &[("A", "B"), ("B", "A")]);
        assert!(matches!(
            agg_candidates(&[q], &u),
            Err(GraphError::CyclicQuery)
        ));
    }
}
