//! Query-time rewriting over materialized graph views (§5.3).

use std::collections::BTreeSet;

use graphbi_graph::{EdgeId, GraphQuery};

/// An evaluation plan for a graph query: which view bitmaps and which base
/// edge bitmaps to AND together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rewrite {
    /// Indices (into the materialized view list) of the views to use.
    pub views: Vec<usize>,
    /// Base edge bitmaps still needed after the views.
    pub residual_edges: Vec<EdgeId>,
}

impl Rewrite {
    /// Plan that ignores views entirely (the oblivious baseline).
    pub fn oblivious(query: &GraphQuery) -> Rewrite {
        Rewrite {
            views: Vec::new(),
            residual_edges: query.edges().to_vec(),
        }
    }

    /// Number of bitmap columns this plan fetches — the paper's cost model.
    pub fn bitmap_cost(&self) -> usize {
        self.views.len() + self.residual_edges.len()
    }
}

/// Greedy single-universe set cover (§5.3): covers the query's edges using
/// the materialized views (only those that are subgraphs of the query) and
/// base edge bitmaps.
///
/// Each step picks the view covering the most uncovered edges; when no view
/// covers at least two uncovered edges, the remaining edges are fetched from
/// their own bitmap columns (a view covering one edge ties a base bitmap and
/// buys nothing). The greedy is the classical `H(n)`-approximation. Ties in
/// coverage go to the view with the fewer edges.
pub fn rewrite_query(query: &GraphQuery, views: &[Vec<EdgeId>]) -> Rewrite {
    greedy_cover(query, views, |vi, bi| views[vi].len() < views[bi].len())
}

/// [`rewrite_query`] with a selectivity hint: coverage ties are broken toward
/// the view whose bitmap the `hint` ranks smallest, so among equally-covering
/// plans the engine ANDs the most selective view first and the accumulator
/// (and therefore every later residual intersection) stays minimal.
///
/// `hint(view_index)` must be cheap and side-effect free — planners pass
/// cardinality counts (memory stores) or encoded byte lengths (disk stores),
/// neither of which performs a counted fetch. The hint only reorders
/// cost-equal choices; the set of fetched columns — the paper's cost model —
/// is untouched, so every `bitmap_cost` invariant of [`rewrite_query`] holds
/// here too.
pub fn rewrite_query_ranked(
    query: &GraphQuery,
    views: &[Vec<EdgeId>],
    hint: impl Fn(usize) -> u64,
) -> Rewrite {
    greedy_cover(query, views, |vi, bi| hint(vi) < hint(bi))
}

/// Shared greedy core: `prefer(candidate, incumbent)` breaks coverage ties.
fn greedy_cover(
    query: &GraphQuery,
    views: &[Vec<EdgeId>],
    prefer: impl Fn(usize, usize) -> bool,
) -> Rewrite {
    let mut uncovered: BTreeSet<EdgeId> = query.edges().iter().copied().collect();
    // Views usable for this query: subgraphs of it.
    let usable: Vec<usize> = views
        .iter()
        .enumerate()
        .filter(|(_, v)| is_subset(v, query.edges()))
        .map(|(i, _)| i)
        .collect();

    let mut picked = Vec::new();
    let mut ties = 0u64;
    loop {
        let mut best: Option<(usize, usize)> = None; // (coverage, view idx)
        for &vi in &usable {
            if picked.contains(&vi) {
                continue;
            }
            let cov = views[vi].iter().filter(|e| uncovered.contains(e)).count();
            if cov >= 2 {
                let better = match best {
                    None => true,
                    Some((bc, bi)) => {
                        if cov == bc {
                            ties += 1;
                        }
                        cov > bc || (cov == bc && prefer(vi, bi))
                    }
                };
                if better {
                    best = Some((cov, vi));
                }
            }
        }
        let Some((_, vi)) = best else { break };
        picked.push(vi);
        for e in &views[vi] {
            uncovered.remove(e);
        }
    }
    graphbi_obs::event(
        "rewrite.cover",
        &[
            ("candidates", usable.len() as u64),
            ("views", picked.len() as u64),
            ("residual_edges", uncovered.len() as u64),
            ("ties", ties),
        ],
    );
    Rewrite {
        views: picked,
        residual_edges: uncovered.into_iter().collect(),
    }
}

fn is_subset(needle: &[EdgeId], haystack: &[EdgeId]) -> bool {
    let mut j = 0;
    for &x in needle {
        while j < haystack.len() && haystack[j] < x {
            j += 1;
        }
        if j == haystack.len() || haystack[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u32]) -> GraphQuery {
        GraphQuery::from_edges(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    fn v(ids: &[u32]) -> Vec<EdgeId> {
        ids.iter().map(|&i| EdgeId(i)).collect()
    }

    #[test]
    fn exact_view_covers_whole_query() {
        let query = q(&[1, 2, 3]);
        let views = vec![v(&[1, 2, 3])];
        let r = rewrite_query(&query, &views);
        assert_eq!(r.views, vec![0]);
        assert!(r.residual_edges.is_empty());
        assert_eq!(r.bitmap_cost(), 1);
        assert_eq!(Rewrite::oblivious(&query).bitmap_cost(), 3);
    }

    #[test]
    fn partial_views_plus_residual_edges() {
        let query = q(&[1, 2, 3, 4, 5]);
        let views = vec![v(&[1, 2]), v(&[4, 5])];
        let r = rewrite_query(&query, &views);
        assert_eq!(r.views.len(), 2);
        assert_eq!(r.residual_edges, v(&[3]));
        assert_eq!(r.bitmap_cost(), 3);
    }

    #[test]
    fn superset_views_are_unusable() {
        // A view strictly larger than the query would over-filter.
        let query = q(&[1, 2]);
        let views = vec![v(&[1, 2, 3])];
        let r = rewrite_query(&query, &views);
        assert!(r.views.is_empty());
        assert_eq!(r.residual_edges, v(&[1, 2]));
    }

    #[test]
    fn greedy_prefers_larger_coverage() {
        let query = q(&[1, 2, 3, 4]);
        let views = vec![v(&[1, 2]), v(&[1, 2, 3, 4])];
        let r = rewrite_query(&query, &views);
        assert_eq!(r.views, vec![1]);
        assert_eq!(r.bitmap_cost(), 1);
    }

    #[test]
    fn overlapping_views_do_not_double_cover() {
        let query = q(&[1, 2, 3]);
        let views = vec![v(&[1, 2]), v(&[2, 3])];
        let r = rewrite_query(&query, &views);
        // First pick covers 2; second view then covers only 1 uncovered edge
        // and is skipped — the residual edge bitmap is just as cheap.
        assert_eq!(r.views.len(), 1);
        assert_eq!(r.residual_edges.len(), 1);
        assert_eq!(r.bitmap_cost(), 2);
    }

    #[test]
    fn no_views_falls_back_to_oblivious() {
        let query = q(&[7, 8, 9]);
        let r = rewrite_query(&query, &[]);
        assert_eq!(r, Rewrite::oblivious(&query));
    }

    #[test]
    fn ranked_rewrite_breaks_coverage_ties_by_hint() {
        let query = q(&[1, 2, 3]);
        // Both views cover the same two edges; only the hint separates them.
        let views = vec![v(&[1, 2]), v(&[1, 2])];
        let small_second = rewrite_query_ranked(&query, &views, |vi| [10, 3][vi]);
        assert_eq!(small_second.views, vec![1]);
        let small_first = rewrite_query_ranked(&query, &views, |vi| [3, 10][vi]);
        assert_eq!(small_first.views, vec![0]);
        // Coverage still dominates the hint: a bigger cover wins even when
        // its bitmap is larger.
        let views = vec![v(&[1, 2]), v(&[1, 2, 3])];
        let r = rewrite_query_ranked(&query, &views, |vi| [1, 1_000_000][vi]);
        assert_eq!(r.views, vec![1]);
        // And the fetched-column cost matches the unranked plan.
        assert_eq!(r.bitmap_cost(), rewrite_query(&query, &views).bitmap_cost());
    }

    #[test]
    fn cost_never_exceeds_oblivious() {
        let query = q(&[1, 2, 3, 4, 5, 6, 7]);
        let views = vec![v(&[1, 2]), v(&[2, 3, 4]), v(&[5, 6, 7]), v(&[1, 9])];
        let r = rewrite_query(&query, &views);
        assert!(r.bitmap_cost() <= Rewrite::oblivious(&query).bitmap_cost());
    }
}
