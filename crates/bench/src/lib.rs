//! Benchmark harness shared by the per-figure binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§7), printing the same rows/series the paper reports
//! and appending CSV to `results/`. Absolute numbers differ from the paper
//! (different hardware, scaled datasets — see DESIGN.md §3); the *shape* of
//! each series is what the reproduction checks.
//!
//! Dataset sizes are scaled-down defaults chosen to complete on a laptop;
//! set `GRAPHBI_SCALE` (a float multiplier, default 1.0) to grow or shrink
//! every dataset proportionally.

pub mod figs;

use std::fmt::Write as _;
use std::time::Instant;

use graphbi::{GraphStore, IoStats};
use graphbi_baselines::Engine;
use graphbi_graph::GraphQuery;
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

/// Scale multiplier from `GRAPHBI_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("GRAPHBI_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// `n` records scaled by [`scale`], minimum 100.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(100)
}

/// Milliseconds elapsed running `f`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs a query workload against the column store, returning total
/// wall-clock milliseconds, accumulated model cost and total result rows.
pub fn run_column_workload(store: &GraphStore, qs: &[GraphQuery]) -> (f64, IoStats, u64) {
    let mut total = IoStats::new();
    let mut rows = 0u64;
    let (_, ms) = time_ms(|| {
        for q in qs {
            let (r, s) = store.evaluate(q);
            total.merge(&s);
            rows += r.len() as u64;
        }
    });
    (ms, total, rows)
}

/// Runs a workload against a baseline engine: (milliseconds, result rows).
pub fn run_engine_workload(engine: &dyn Engine, qs: &[GraphQuery]) -> (f64, u64) {
    let mut rows = 0u64;
    let (_, ms) = time_ms(|| {
        for q in qs {
            rows += engine.evaluate(q).len() as u64;
        }
    });
    (ms, rows)
}

/// The standard NY′ dataset at `n` records (pre-scaling).
pub fn ny(n: usize) -> Dataset {
    Dataset::synthesize(&DatasetSpec::ny(scaled(n)))
}

/// The standard GNU′ dataset at `n` records (pre-scaling).
pub fn gnu(n: usize) -> Dataset {
    Dataset::synthesize(&DatasetSpec::gnu(scaled(n)))
}

/// The paper's default 100-query uniform workload.
pub fn uniform_queries(d: &Dataset, count: usize) -> Vec<GraphQuery> {
    d.queries(&QuerySpec::uniform(count))
}

/// The Figure 8 Zipf workload.
pub fn zipf_queries(d: &Dataset, count: usize) -> Vec<GraphQuery> {
    d.queries(&QuerySpec::zipf(count))
}

/// Traced-vs-untraced wall clock of one workload: what installing a span
/// collector costs. The untraced side still executes every instrumentation
/// site — spans are inert, which is the shipped default.
pub struct TracerOverhead {
    /// Best-of-n milliseconds with no collector installed.
    pub untraced_ms: f64,
    /// Best-of-n milliseconds with a collector receiving every span.
    pub traced_ms: f64,
    /// Spans one traced run records.
    pub spans: u64,
}

impl TracerOverhead {
    /// Slowdown of the traced side in percent (clamped at 0 — timing noise
    /// can make the traced side come out faster).
    pub fn overhead_pct(&self) -> f64 {
        if self.untraced_ms <= 0.0 {
            0.0
        } else {
            ((self.traced_ms - self.untraced_ms) / self.untraced_ms * 100.0).max(0.0)
        }
    }

    /// True when the overhead is inside the 5% budget DESIGN.md §12 sets.
    pub fn within_budget(&self) -> bool {
        self.overhead_pct() < 5.0
    }

    /// The `"tracer"` object the BENCH JSONs embed.
    pub fn json(&self) -> String {
        format!(
            "{{\"untraced_ms\": {:.3}, \"traced_ms\": {:.3}, \"overhead_pct\": {:.2}, \
             \"spans\": {}, \"within_budget\": {}}}",
            self.untraced_ms,
            self.traced_ms,
            self.overhead_pct(),
            self.spans,
            self.within_budget()
        )
    }

    /// One human-readable summary line.
    pub fn report(&self) -> String {
        format!(
            "tracer overhead: untraced {} ms, traced {} ms ({:.2}%, {} span(s), budget <5%: {})",
            fmt(self.untraced_ms),
            fmt(self.traced_ms),
            self.overhead_pct(),
            self.spans,
            self.within_budget()
        )
    }
}

/// Times `workload` best-of-`n` twice — tracer disabled, then enabled with
/// a fresh collector per attempt — and reports the difference.
pub fn measure_tracer_overhead(n: usize, mut workload: impl FnMut()) -> TracerOverhead {
    workload(); // warm caches so the first timed side isn't penalized
    let best = |f: &mut dyn FnMut() -> u64| {
        let mut best_ms = f64::INFINITY;
        let mut spans = 0;
        for _ in 0..n {
            let (s, ms) = time_ms(&mut *f);
            if ms < best_ms {
                best_ms = ms;
                spans = s;
            }
        }
        (best_ms, spans)
    };
    let (untraced_ms, _) = best(&mut || {
        workload();
        0
    });
    let (traced_ms, spans) = best(&mut || {
        let collector = std::sync::Arc::new(graphbi_obs::Collector::new());
        let _tracing = graphbi_obs::install(&collector);
        workload();
        collector.trace().spans.len() as u64
    });
    TracerOverhead {
        untraced_ms,
        traced_ms,
        spans,
    }
}

/// A fixed-width console table, paper style.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Prints to stdout and appends CSV under `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = std::path::Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let mut csv = String::new();
            let _ = writeln!(csv, "{}", self.headers.join(","));
            for r in &self.rows {
                let _ = writeln!(csv, "{}", r.join(","));
            }
            let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
        }
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("bbbb"));
    }

    #[test]
    fn scaled_has_floor() {
        std::env::remove_var("GRAPHBI_SCALE");
        assert_eq!(scaled(50), 100);
        assert_eq!(scaled(2000), 2000);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.6), "1235");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(0.1234), "0.123");
    }
}
