//! Service-layer benchmark. See `graphbi_bench::figs::serve`.
//! Exits nonzero when any served answer differs from the in-process
//! session answer, or when no cross-connection batching happens under
//! contention — CI treats either as a failure.
fn main() {
    if !graphbi_bench::figs::serve::run() {
        eprintln!("serve bench: correctness or batching gate failed");
        std::process::exit(1);
    }
}
