//! Regenerates the paper's fig10. See `graphbi_bench::figs::fig10`.
fn main() {
    graphbi_bench::figs::fig10::run();
}
