//! Sharded/batched execution benchmark. See `graphbi_bench::figs::shard`.
//! Exits nonzero when any batched answer differs from its serial
//! counterpart — CI treats that as a correctness failure.
fn main() {
    if !graphbi_bench::figs::shard::run() {
        eprintln!("shard bench: batched answers differ from serial — failing");
        std::process::exit(1);
    }
}
