//! Regenerates the paper's fig6. See `graphbi_bench::figs::fig6`.
fn main() {
    graphbi_bench::figs::fig6::run();
}
