//! Regenerates the paper's fig7. See `graphbi_bench::figs::fig7`.
fn main() {
    graphbi_bench::figs::fig7::run();
}
