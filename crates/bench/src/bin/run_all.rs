//! Regenerates every table and figure of the paper's evaluation in order,
//! writing CSVs under `results/`.
fn main() {
    use graphbi_bench::figs::*;
    let t0 = std::time::Instant::now();
    table2::run();
    fig3a::run();
    fig3b::run();
    fig3c::run();
    fig4::run();
    fig5::run();
    fig6::run();
    fig7::run();
    fig8::run();
    fig9::run();
    fig10::run();
    fig11::run();
    disk_regime::run();
    ingest::run();
    latency::run();
    println!(
        "\nall experiments done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
