//! Regenerates the disk-regime table. See `graphbi_bench::figs::disk_regime`.
fn main() {
    graphbi_bench::figs::disk_regime::run();
}
