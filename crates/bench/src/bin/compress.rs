//! Compressed-format differential bench. See `graphbi_bench::figs::compress`.
//! Exits nonzero when any compressed-path answer differs from raw, or when
//! format v3 misses its size gates — CI treats both as failures.

fn main() {
    if !graphbi_bench::figs::compress::run() {
        eprintln!("compress bench: answer mismatch or size gate missed — failing");
        std::process::exit(1);
    }
}
