//! Kernel-layer microbenchmarks. See `graphbi_bench::figs::kernels`.
//! Exits nonzero when any kernel-path answer differs from its baseline
//! counterpart — CI treats that as a correctness failure.

/// Count every heap allocation so the bench reports allocations per
/// operation next to wall clock.
#[global_allocator]
static ALLOC: graphbi_bench::figs::kernels::CountingAlloc =
    graphbi_bench::figs::kernels::CountingAlloc;

fn main() {
    if !graphbi_bench::figs::kernels::run() {
        eprintln!("kernels bench: kernel answers differ from baseline — failing");
        std::process::exit(1);
    }
}
