//! Regenerates the paper's fig3b. See `graphbi_bench::figs::fig3b`.
fn main() {
    graphbi_bench::figs::fig3b::run();
}
