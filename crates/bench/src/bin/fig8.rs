//! Regenerates the paper's fig8. See `graphbi_bench::figs::fig8`.
fn main() {
    graphbi_bench::figs::fig8::run();
}
