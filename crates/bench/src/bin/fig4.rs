//! Regenerates the paper's fig4. See `graphbi_bench::figs::fig4`.
fn main() {
    graphbi_bench::figs::fig4::run();
}
