//! Regenerates the paper's table2. See `graphbi_bench::figs::table2`.
fn main() {
    graphbi_bench::figs::table2::run();
}
