//! Regenerates the paper's fig11. See `graphbi_bench::figs::fig11`.
fn main() {
    graphbi_bench::figs::fig11::run();
}
