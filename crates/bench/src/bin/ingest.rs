//! Regenerates the ingest table. See `graphbi_bench::figs::ingest`.
fn main() {
    graphbi_bench::figs::ingest::run();
}
