//! Regenerates the paper's fig5. See `graphbi_bench::figs::fig5`.
fn main() {
    graphbi_bench::figs::fig5::run();
}
