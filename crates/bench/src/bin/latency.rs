//! Regenerates the latency table. See `graphbi_bench::figs::latency`.
fn main() {
    graphbi_bench::figs::latency::run();
}
