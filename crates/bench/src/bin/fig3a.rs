//! Regenerates the paper's fig3a. See `graphbi_bench::figs::fig3a`.
fn main() {
    graphbi_bench::figs::fig3a::run();
}
