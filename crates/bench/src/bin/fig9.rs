//! Regenerates the paper's fig9. See `graphbi_bench::figs::fig9`.
fn main() {
    graphbi_bench::figs::fig9::run();
}
