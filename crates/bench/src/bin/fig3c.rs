//! Regenerates the paper's fig3c. See `graphbi_bench::figs::fig3c`.
fn main() {
    graphbi_bench::figs::fig3c::run();
}
