//! Kernel-layer microbenchmarks (the PR-4 tentpole measurement).
//!
//! Three comparisons, each against the pre-kernel implementation re-created
//! here as an explicit baseline:
//!
//! * **and_many** on sparse / dense / mixed operand sets — the old
//!   clone-accumulator conjunction (clone the smallest operand, then
//!   allocating per-chunk ANDs) vs the in-place kernels behind
//!   [`Bitmap::and_many`];
//! * **fused vs materializing aggregation** — `gather` into a `Vec` then
//!   fold, vs [`SparseColumn::fold_over`] streaming values straight into
//!   the aggregate state;
//! * **ordered vs unordered conjunctions** on a Zipf-cardinality workload —
//!   what the selectivity-ordered planner buys over evaluating operands in
//!   query order.
//!
//! Every kernel-path answer is checked bit-identical against its baseline
//! before any timing is reported; a mismatch fails the run (and the CI job
//! that wraps it). Heap allocations are counted by [`CountingAlloc`], which
//! the `kernels` binary installs as the global allocator. Results land in
//! `BENCH_kernels.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::SparseColumn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{fmt, measure_tracer_overhead, time_ms, Table};

/// Heap allocations observed since process start (see [`CountingAlloc`]).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation, so the
/// bench can report allocations-per-operation next to wall clock. The
/// `kernels` binary installs it with `#[global_allocator]`; when it is not
/// installed (e.g. these functions called from a test), counts read zero
/// and the report says so.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a relaxed atomic increment with no other side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations so far (0 unless [`CountingAlloc`] is the global allocator).
fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Best-of-n wall clock for `f`, keeping the fastest run's output and the
/// allocation count of the *fastest* run.
fn best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (T, f64, u64) {
    let mut best: Option<(T, f64, u64)> = None;
    for _ in 0..n {
        let before = allocations();
        let (out, ms) = time_ms(&mut f);
        let allocs = allocations() - before;
        if best.as_ref().is_none_or(|b| ms < b.1) {
            best = Some((out, ms, allocs));
        }
    }
    best.expect("at least one run")
}

/// The pre-kernel conjunction: clone the smallest operand, then fold the
/// rest (sorted) through the allocating `and` — one fresh bitmap per
/// operand. This is what `Bitmap::and_many` did before the in-place
/// kernels.
fn and_many_cloning(bitmaps: &[&Bitmap]) -> Bitmap {
    let mut v: Vec<&Bitmap> = bitmaps.to_vec();
    v.sort_by_key(|b| b.len());
    let Some(first) = v.first() else {
        return Bitmap::new();
    };
    let mut acc: Bitmap = (*first).clone();
    for b in &v[1..] {
        if acc.is_empty() {
            break;
        }
        acc = acc.and(b);
    }
    acc
}

/// The unordered conjunction: allocating folds in the operands' given
/// order — what a planner that never reorders by selectivity evaluates.
fn and_fold_unordered(bitmaps: &[&Bitmap]) -> Bitmap {
    let Some(first) = bitmaps.first() else {
        return Bitmap::new();
    };
    let mut acc: Bitmap = (*first).clone();
    for b in &bitmaps[1..] {
        acc = acc.and(b);
    }
    acc
}

/// One baseline-vs-kernel measurement.
struct Comparison {
    name: &'static str,
    base_ms: f64,
    kernel_ms: f64,
    base_allocs: u64,
    kernel_allocs: u64,
    identical: bool,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.base_ms / self.kernel_ms.max(1e-9)
    }
}

/// Times `base` vs `kernel` (each best-of-3, `reps` inner repetitions) and
/// verifies their answers agree through `same`.
fn compare<T>(
    name: &'static str,
    reps: usize,
    mut base: impl FnMut() -> T,
    mut kernel: impl FnMut() -> T,
    same: impl Fn(&T, &T) -> bool,
) -> Comparison {
    let run = |f: &mut dyn FnMut() -> T| {
        best_of(3, || {
            let mut last = f();
            for _ in 1..reps {
                last = f();
            }
            last
        })
    };
    let (base_out, base_ms, base_allocs) = run(&mut base);
    let (kernel_out, kernel_ms, kernel_allocs) = run(&mut kernel);
    Comparison {
        name,
        base_ms,
        kernel_ms,
        base_allocs,
        kernel_allocs,
        identical: same(&base_out, &kernel_out),
    }
}

/// Times the same closure under forced-scalar vs forced-SIMD kernel
/// dispatch and verifies the answers agree through `same`. The bench
/// binary is single-threaded, so flipping the process-global kernel
/// override here cannot race other work; it is restored to auto after.
fn compare_simd<T>(
    name: &'static str,
    reps: usize,
    mut f: impl FnMut() -> T,
    same: impl Fn(&T, &T) -> bool,
) -> Comparison {
    use graphbi_bitmap::kernels::{self, KernelPath};
    let mut run = || {
        best_of(3, || {
            let mut last = f();
            for _ in 1..reps {
                last = f();
            }
            last
        })
    };
    kernels::force(Some(KernelPath::Scalar));
    let (base_out, base_ms, base_allocs) = run();
    kernels::force(Some(KernelPath::Simd));
    let (kernel_out, kernel_ms, kernel_allocs) = run();
    kernels::force(None);
    Comparison {
        name,
        base_ms,
        kernel_ms,
        base_allocs,
        kernel_allocs,
        identical: same(&base_out, &kernel_out),
    }
}

/// A sparse operand set: one tiny bitmap and several wide array-container
/// bitmaps — the shape where galloping intersection dominates.
fn sparse_operands() -> Vec<Bitmap> {
    let mut out: Vec<Bitmap> = (0..7u32)
        .map(|i| (i..3_000_000).step_by(17).collect())
        .collect();
    out.push((0..3_000_000u32).step_by(40_009).collect());
    out
}

/// A dense operand set: word-container bitmaps at ~50% density, where
/// batched word ops with incremental cardinality pay off.
fn dense_operands() -> Vec<Bitmap> {
    (0..8u32)
        .map(|i| (i..2_000_000).step_by(2).collect())
        .collect()
}

/// A mixed operand set: runs, words and arrays in one conjunction.
fn mixed_operands() -> Vec<Bitmap> {
    let mut runs = Bitmap::from_range(0..1_500_000);
    runs.optimize();
    vec![
        runs,
        (0..2_000_000u32).step_by(2).collect(),
        (0..2_000_000u32).step_by(13).collect(),
        (0..2_000_000u32).step_by(6_007).collect(),
    ]
}

/// Zipf-cardinality bitmap pool: bitmap `k` holds ~`N / (k+1)` ids, the
/// skew the paper's workloads show across edge popularity.
fn zipf_pool(rng: &mut StdRng) -> Vec<Bitmap> {
    const N: u32 = 1_000_000;
    (0..64usize)
        .map(|k| {
            let step = (k + 1).min(8_192);
            let offset = rng.gen_range(0..64u32);
            (offset..N).step_by(step).collect()
        })
        .collect()
}

/// Runs the benchmark; returns `false` when any kernel-path answer differed
/// from its baseline counterpart.
pub fn run() -> bool {
    let sparse = sparse_operands();
    let dense = dense_operands();
    let mixed = mixed_operands();
    let sparse_refs: Vec<&Bitmap> = sparse.iter().collect();
    let dense_refs: Vec<&Bitmap> = dense.iter().collect();
    let mixed_refs: Vec<&Bitmap> = mixed.iter().collect();

    // Fused-aggregation inputs: a 1M-value measure column and a result set
    // covering half of it.
    let col = {
        let presence: Bitmap = (0..2_000_000u32).step_by(2).collect();
        let values: Vec<f64> = (0..1_000_000).map(|i| (i % 97) as f64).collect();
        SparseColumn::from_parts(presence, values)
    };
    let ids: Bitmap = (0..2_000_000u32).step_by(4).collect();
    let ids_all: Bitmap = (0..2_000_000u32).collect();

    // Zipf conjunction workload: 200 conjunctions of 4 operands each, in
    // deliberately unsorted (often worst-first) order.
    let mut rng = StdRng::seed_from_u64(42);
    let pool = zipf_pool(&mut rng);
    let queries: Vec<Vec<&Bitmap>> = (0..200)
        .map(|_| {
            let mut picks: Vec<&Bitmap> = (0..4)
                .map(|_| &pool[rng.gen_range(0..pool.len())])
                .collect();
            // Worst-first: largest operand leads, the order a naive planner
            // might inherit from query syntax.
            picks.sort_by_key(|b| std::cmp::Reverse(b.len()));
            picks
        })
        .collect();

    // Scalar-vs-SIMD dispatch inputs: a dense word block for the popcount
    // kernel, and a dictionary-heavy column whose v3 frame (FoR-packed
    // presence + packed dictionary indices) exercises the vectorized
    // decode path end to end.
    let words: Vec<u64> = (0..1 << 20)
        .map(|i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let v3_frame = {
        let presence: Bitmap = (0..1_000_000u32).step_by(17).collect();
        let n = presence.len() as usize;
        let values: Vec<f64> = (0..n).map(|i| f64::from((i % 23) as u32) * 1.5).collect();
        SparseColumn::from_parts(presence, values).encode_v3()
    };

    let mut comparisons = vec![
        compare(
            "and_many/sparse",
            5,
            || and_many_cloning(&sparse_refs),
            || Bitmap::and_many(sparse_refs.iter().copied()),
            |a, b| a == b,
        ),
        compare(
            "and_many/dense",
            5,
            || and_many_cloning(&dense_refs),
            || Bitmap::and_many(dense_refs.iter().copied()),
            |a, b| a == b,
        ),
        compare(
            "and_many/mixed",
            5,
            || and_many_cloning(&mixed_refs),
            || Bitmap::and_many(mixed_refs.iter().copied()),
            |a, b| a == b,
        ),
        compare(
            "aggregate/fused",
            5,
            || {
                // Materializing: gather into a Vec, then fold it.
                let vals = col.gather(&ids);
                let mut sum = 0.0f64;
                let mut min = f64::INFINITY;
                for v in vals {
                    sum += v;
                    min = min.min(v);
                }
                (sum, min)
            },
            || {
                let mut sum = 0.0f64;
                let mut min = f64::INFINITY;
                col.fold_over(&ids, |v| {
                    sum += v;
                    min = min.min(v);
                });
                (sum, min)
            },
            // Same fold order on both paths → exact equality, no tolerance.
            |a, b| a == b,
        ),
        compare(
            "conjunction/zipf-ordered",
            1,
            || {
                queries
                    .iter()
                    .map(|q| and_fold_unordered(q))
                    .collect::<Vec<Bitmap>>()
            },
            || {
                queries
                    .iter()
                    .map(|q| Bitmap::and_many(q.iter().copied()))
                    .collect::<Vec<Bitmap>>()
            },
            |a, b| a == b,
        ),
    ];

    // Scalar vs SIMD: the same dispatched operation timed under both
    // forced kernel paths. `base` is forced-scalar, `kernel` forced-SIMD;
    // on hardware without AVX2 both resolve to scalar and the speedup
    // honestly reads ~1.0x.
    let fold_key = |a: &graphbi_bitmap::kernels::FoldAgg| {
        (
            a.count(),
            a.sum().to_bits(),
            a.min().to_bits(),
            a.max().to_bits(),
        )
    };
    comparisons.extend([
        compare_simd(
            "simd/and_many_dense",
            5,
            || Bitmap::and_many(dense_refs.iter().copied()),
            |a, b| a == b,
        ),
        compare_simd(
            "simd/and_many_sparse",
            5,
            || Bitmap::and_many(sparse_refs.iter().copied()),
            |a, b| a == b,
        ),
        compare_simd(
            "simd/and_many_mixed",
            5,
            || Bitmap::and_many(mixed_refs.iter().copied()),
            |a, b| a == b,
        ),
        compare_simd(
            "simd/popcount",
            20,
            || graphbi_bitmap::kernels::popcount(&words),
            |a, b| a == b,
        ),
        compare_simd(
            "simd/fold_aggregate",
            5,
            // Aggregate over a covering result set — the raw fast path
            // that hands the whole value slice to the vector fold.
            || fold_key(&col.fold_aggregate(&ids_all)),
            |a, b| a == b,
        ),
        compare_simd(
            "simd/decode_v3_for",
            5,
            || SparseColumn::decode_v3(&mut v3_frame.clone()).expect("bench frame decodes"),
            |a, b| a == b,
        ),
    ]);

    let mut t = Table::new(
        "Kernel layer: baseline vs in-place/fused/ordered (best of 3)",
        &[
            "bench",
            "base_ms",
            "kernel_ms",
            "speedup",
            "base_allocs",
            "kernel_allocs",
            "identical",
        ],
    );
    for c in &comparisons {
        t.row(vec![
            c.name.into(),
            fmt(c.base_ms),
            fmt(c.kernel_ms),
            format!("{:.2}x", c.speedup()),
            c.base_allocs.to_string(),
            c.kernel_allocs.to_string(),
            c.identical.to_string(),
        ]);
    }
    t.emit("kernels");
    if allocations() == 0 {
        println!("(allocation counts unavailable: CountingAlloc not installed)");
    }

    // Tracer overhead on the Zipf conjunction workload: each conjunction
    // runs inside a span, once with the tracer disabled (the shipped
    // default — spans are inert) and once with a collector installed.
    let overhead = measure_tracer_overhead(5, || {
        for q in &queries {
            let _sp = graphbi_obs::span("bench.conjunction");
            std::hint::black_box(Bitmap::and_many(q.iter().copied()));
        }
    });
    println!("{}", overhead.report());

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernels\",");
    // Bench honesty: record what hardware the numbers were taken on and
    // which dispatch path a plain (unforced) run would take.
    let _ = writeln!(
        json,
        "  \"cpu\": {{\"arch\": \"{}\", \"features\": \"{}\", \"active_path\": \"{}\"}},",
        std::env::consts::ARCH,
        graphbi_bitmap::kernels::cpu_features(),
        graphbi_bitmap::kernels::path_name(),
    );
    let _ = writeln!(json, "  \"alloc_counter\": {},", allocations() > 0);
    let _ = writeln!(json, "  \"tracer\": {},", overhead.json());
    let _ = writeln!(json, "  \"benches\": [");
    for (i, c) in comparisons.iter().enumerate() {
        let comma = if i + 1 < comparisons.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"base_ms\": {:.3}, \"kernel_ms\": {:.3}, \
             \"speedup\": {:.3}, \"base_allocs\": {}, \"kernel_allocs\": {}, \
             \"identical\": {}}}{comma}",
            c.name,
            c.base_ms,
            c.kernel_ms,
            c.speedup(),
            c.base_allocs,
            c.kernel_allocs,
            c.identical,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let out = std::env::var("GRAPHBI_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    std::fs::write(&out, &json).expect("write benchmark point");
    println!("wrote {out}");

    comparisons.iter().all(|c| c.identical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_agree_with_kernels() {
        for ops in [sparse_operands(), dense_operands(), mixed_operands()] {
            let refs: Vec<&Bitmap> = ops.iter().collect();
            let base = and_many_cloning(&refs);
            assert_eq!(base, Bitmap::and_many(refs.iter().copied()));
            assert_eq!(and_fold_unordered(&refs), base);
        }
    }
}
