//! Figure 6: graph-query run time vs view space budget (NY, uniform).
//!
//! Paper: 100 uniform graph queries on the full NY dataset; the x-axis is
//! the number of materialized graph views as a % of the query count, the
//! time splits into the mandatory measure fetch (unaffected by views) and
//! the rest (bitmap work, reduced up to 57%; total reduced up to 32%).

use graphbi::{GraphStore, IoStats, QueryRequest, Session};
use graphbi_graph::{GraphQuery, QueryExpr};

use crate::{fmt, ny, time_ms, uniform_queries, Table};

/// One sweep step: (total_ms, fetch_ms, rest_ms, structural_columns).
///
/// Both phases go through the [`Session`] entry point: the expression
/// form answers the structural phase alone (record-id bitmap, no measure
/// fetch), the graph form answers the full query; the fetch share is the
/// difference. Best of three workload runs, to suppress wall-clock noise
/// at the millisecond scale of the scaled datasets.
pub fn timed_split(store: &GraphStore, qs: &[GraphQuery]) -> (f64, f64, f64, u64) {
    let structural: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::expr(QueryExpr::Atom(q.clone())))
        .collect();
    let full: Vec<QueryRequest> = qs.iter().map(|q| QueryRequest::new(q.clone())).collect();
    let mut best: Option<(f64, f64, f64, u64)> = None;
    for _ in 0..3 {
        let mut stats = IoStats::new();
        let mut structural_ms = 0.0;
        let mut total_ms = 0.0;
        for (sreq, freq) in structural.iter().zip(&full) {
            let (_ids, ms) = time_ms(|| store.execute(sreq).expect("structural phase"));
            structural_ms += ms;
            let (out, ms) = time_ms(|| store.execute(freq).expect("graph query"));
            stats.merge(&out.1);
            total_ms += ms;
        }
        let fetch_ms = (total_ms - structural_ms).max(0.0);
        let run = (
            total_ms,
            fetch_ms,
            structural_ms,
            stats.structural_columns(),
        );
        if best.is_none_or(|b| run.0 < b.0) {
            best = Some(run);
        }
    }
    best.expect("three runs executed")
}

/// Regenerates Figure 6.
pub fn run() {
    let d = ny(50_000);
    let qs = uniform_queries(&d, 100);
    let mut store = GraphStore::load(d.universe, &d.records);
    let base_bytes = store.size_in_bytes();

    let mut t = Table::new(
        "Figure 6: Run Time vs Space Budget (100 uniform graph queries, NY)",
        &[
            "budget_%",
            "views",
            "total_ms",
            "fetch_measures_ms",
            "rest_ms",
            "bitmap_cols",
            "space_overhead_%",
        ],
    );
    for budget_pct in (0..=100).step_by(10) {
        store.clear_views();
        let n = store.advise_views(&qs, budget_pct * qs.len() / 100);
        let (total, fetch, rest, cols) = timed_split(&store, &qs);
        let overhead =
            (store.size_in_bytes() as f64 - base_bytes as f64) / base_bytes as f64 * 100.0;
        t.row(vec![
            format!("{budget_pct}%"),
            n.to_string(),
            fmt(total),
            fmt(fetch),
            fmt(rest),
            cols.to_string(),
            fmt(overhead),
        ]);
    }
    t.emit("fig6");
}
