//! Figure 5: query time vs edge-domain size (vertical partitioning).
//!
//! Paper: 10 M records at 10% density over universes of 1k–100k edge ids;
//! the master relation splits into ≤1000-column sub-relations, so larger
//! domains mean more recid joins and slowly degrading column-store times,
//! while the native graph store degrades linearly with output size. Scaled
//! to 500 records and domains up to 20k (set `GRAPHBI_SCALE` to push
//! further).

use graphbi::GraphStore;
use graphbi_baselines::GraphDb;
use graphbi_workload::queries::QuerySpec;
use graphbi_workload::{Dataset, DatasetSpec};

use crate::{fmt, run_column_workload, run_engine_workload, scaled, Table};

/// Regenerates Figure 5.
pub fn run() {
    let mut t = Table::new(
        "Figure 5: Query Time vs Edge Domain Size (100 queries, ms)",
        &[
            "distinct_edges",
            "partitions",
            "ColumnStore",
            "Neo4jStore",
            "matches",
        ],
    );
    for domain in [1_000usize, 2_000, 5_000, 10_000, 20_000] {
        let density_edges = domain / 10;
        let spec = DatasetSpec {
            n_records: scaled(500),
            edge_domain: domain,
            min_edges: density_edges,
            max_edges: density_edges,
            ..DatasetSpec::ny(scaled(500))
        };
        let d = Dataset::synthesize(&spec);
        // Queries scale with density so output stays proportional.
        let qspec = QuerySpec {
            min_len: 4,
            max_len: 8,
            ..QuerySpec::uniform(100)
        };
        let qs = graphbi_workload::queries::generate(&d.base, &qspec);
        let graph = GraphDb::load(&d.records, &d.universe);
        let store = GraphStore::load(d.universe, &d.records); // width 1000
        let (col_ms, stats, matches) = run_column_workload(&store, &qs);
        let (g_ms, _) = run_engine_workload(&graph, &qs);
        t.row(vec![
            domain.to_string(),
            store.relation().partition_count().to_string(),
            fmt(col_ms),
            fmt(g_ms),
            format!("{matches} (joins {})", stats.join_rows),
        ]);
    }
    t.emit("fig5");
}
