//! Sharded/batched execution benchmark (the PR-2 tentpole measurement).
//!
//! Reruns the Figure 10/11-style workloads — 100 Zipf-skewed graph queries
//! and the same workload as SUM path aggregations — through both execution
//! paths of the [`Session`] API:
//!
//! * **serial**: one `execute` call per request, shards = 1 — the cost of
//!   the pre-Session one-query-at-a-time API;
//! * **batched**: one `evaluate_many` call for the whole workload with the
//!   shard knob set — request deduplication answers each distinct query
//!   once, worker threads spread the distinct set, and (on disk) column
//!   pins share every fetched column across the batch.
//!
//! Every batched answer is checked bit-identical against its serial
//! counterpart before any timing is reported; a mismatch fails the run
//! (and the CI job that wraps it). Results land in `BENCH_shard.json`.

use std::fmt::Write as _;

use graphbi::disk::{save_store, DiskGraphStore};
use graphbi::{AggFn, GraphStore, IoStats, PathAggQuery, QueryRequest, Response, Session};

use crate::{fmt, measure_tracer_overhead, ny, time_ms, zipf_queries, Table};

/// Shard count for the batched side — the acceptance point of the PR.
pub const SHARDS: usize = 8;

/// Best-of-n wall clock for `f`, keeping the fastest run's output.
fn best_of<T>(n: usize, mut f: impl FnMut() -> (T, f64)) -> (T, f64) {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..n {
        let run = f();
        if best.as_ref().is_none_or(|b| run.1 < b.1) {
            best = Some(run);
        }
    }
    best.expect("at least one run")
}

/// One serial-vs-batched comparison on one backend.
struct Comparison {
    label: &'static str,
    serial_ms: f64,
    batched_ms: f64,
    /// Physical column reads (cache misses) during the timed serial run.
    serial_reads: u64,
    /// Physical column reads during the timed batched run.
    batched_reads: u64,
    /// Batched responses identical to serial ones, request for request.
    identical: bool,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.batched_ms.max(1e-9)
    }
}

/// `reset` runs before each timed attempt (cold cache on disk); `misses`
/// reads the backend's cumulative physical-read counter (0 for memory).
fn compare<S: Session>(
    label: &'static str,
    session: &S,
    requests: &[QueryRequest],
    reset: impl Fn(),
    misses: impl Fn() -> u64,
) -> Comparison {
    let serial: Vec<QueryRequest> = requests.iter().map(|r| r.clone().shards(1)).collect();
    let (serial_run, serial_ms) = best_of(3, || {
        reset();
        let before = misses();
        let (answers, ms) = time_ms(|| {
            serial
                .iter()
                .map(|r| session.execute(r).expect("workload is acyclic"))
                .collect::<Vec<(Response, IoStats)>>()
        });
        ((answers, misses() - before), ms)
    });
    let (batched_run, batched_ms) = best_of(3, || {
        reset();
        let before = misses();
        let (answers, ms) = time_ms(|| {
            session
                .evaluate_many(requests)
                .expect("workload is acyclic")
        });
        ((answers, misses() - before), ms)
    });
    let (serial_answers, serial_reads) = serial_run;
    let (batched_answers, batched_reads) = batched_run;
    let identical = serial_answers.len() == batched_answers.len()
        && serial_answers
            .iter()
            .zip(&batched_answers)
            .all(|((a, _), (b, _))| a == b);
    Comparison {
        label,
        serial_ms,
        batched_ms,
        serial_reads,
        batched_reads,
        identical,
    }
}

/// Runs the benchmark; returns `false` when any batched answer differed
/// from its serial counterpart.
pub fn run() -> bool {
    let d = ny(10_000);
    let qs = zipf_queries(&d, 100);
    let graph_reqs: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::new(q.clone()).shards(SHARDS))
        .collect();
    let agg_reqs: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::aggregate(PathAggQuery::new(q.clone(), AggFn::Sum)).shards(SHARDS))
        .collect();

    let store = GraphStore::load(d.universe, &d.records);

    // Disk backend under a deliberately tight cache (1/16 of the database's
    // on-disk footprint — roughly a quarter of the workload's working set):
    // the serial loop re-reads evicted columns, the batch pins each column
    // once for everyone.
    let dir = std::env::temp_dir().join(format!("graphbi-shard-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_store(&store, &dir).expect("save benchmark database");
    let on_disk: u64 = std::fs::read_dir(&dir)
        .expect("read database dir")
        .filter_map(Result::ok)
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    let cache_bytes = ((on_disk / 16) as usize).max(16 << 10);
    let disk = DiskGraphStore::open(&dir, cache_bytes).expect("open disk store");

    let cold = || disk.relation().clear_cache();
    let physical = || disk.relation().cache_stats().1;
    let comparisons = [
        compare("mem/graph", &store, &graph_reqs, || {}, || 0),
        compare("mem/agg", &store, &agg_reqs, || {}, || 0),
        compare("disk/graph", &disk, &graph_reqs, cold, physical),
        compare("disk/agg", &disk, &agg_reqs, cold, physical),
    ];
    let _ = std::fs::remove_dir_all(&dir);

    let mut t = Table::new(
        &format!(
            "Sharded batch execution: 100 Zipf queries, {SHARDS} shards, serial vs evaluate_many"
        ),
        &[
            "workload",
            "serial_ms",
            "batched_ms",
            "speedup",
            "serial_reads",
            "batched_reads",
            "identical",
        ],
    );
    for c in &comparisons {
        t.row(vec![
            c.label.into(),
            fmt(c.serial_ms),
            fmt(c.batched_ms),
            format!("{:.2}x", c.speedup()),
            c.serial_reads.to_string(),
            c.batched_reads.to_string(),
            c.identical.to_string(),
        ]);
    }
    t.emit("shard");

    // Tracer overhead on the Zipf workload: the engine's own span sites
    // (plan / structural / measure / merge / per-shard) run inert by
    // default; enabling a collector must stay inside the 5% budget.
    let overhead = measure_tracer_overhead(5, || {
        store
            .evaluate_many(&graph_reqs)
            .expect("workload is acyclic");
    });
    println!("{}", overhead.report());

    // Phase breakdown of one traced batched run: where the workload's wall
    // clock goes across the query lifecycle.
    let collector = std::sync::Arc::new(graphbi_obs::Collector::new());
    {
        let _tracing = graphbi_obs::install(&collector);
        store
            .evaluate_many(&graph_reqs)
            .expect("workload is acyclic");
    }
    let trace = collector.trace();
    let phases: Vec<String> = graphbi::PHASE_NAMES
        .iter()
        .map(|name| {
            let span = format!("phase.{name}");
            format!(
                "\"{name}\": {{\"wall_ns\": {}, \"spans\": {}}}",
                trace.sum_ns(&span),
                trace.count(&span)
            )
        })
        .collect();

    // Machine-readable point for the benchmark history.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"shard\",");
    let _ = writeln!(json, "  \"tracer\": {},", overhead.json());
    let _ = writeln!(json, "  \"phases\": {{{}}},", phases.join(", "));
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"queries\": {},", qs.len());
    let _ = writeln!(json, "  \"records\": {},", store.record_count());
    let _ = writeln!(json, "  \"disk_cache_bytes\": {cache_bytes},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, c) in comparisons.iter().enumerate() {
        let comma = if i + 1 < comparisons.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"batched_ms\": {:.3}, \
             \"speedup\": {:.3}, \"serial_disk_reads\": {}, \"batched_disk_reads\": {}, \
             \"identical\": {}}}{comma}",
            c.label,
            c.serial_ms,
            c.batched_ms,
            c.speedup(),
            c.serial_reads,
            c.batched_reads,
            c.identical,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let out = std::env::var("GRAPHBI_BENCH_OUT").unwrap_or_else(|_| "BENCH_shard.json".into());
    std::fs::write(&out, &json).expect("write benchmark point");
    println!("wrote {out}");

    comparisons.iter().all(|c| c.identical)
}
