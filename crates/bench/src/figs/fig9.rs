//! Figure 9: number of candidate views vs minimum support.
//!
//! Paper: candidate counts for graph views and aggregate graph views, under
//! uniform and Zipf workloads on NY, drop sharply as `minSup` rises; the
//! candidate computation itself takes under a second (naive enumeration is
//! infeasible).

use graphbi_views::{agg_candidates_min_sup, generate_candidates_min_sup};

use crate::{fmt, ny, time_ms, uniform_queries, zipf_queries, Table};

/// Regenerates Figure 9.
pub fn run() {
    let d = ny(1_000);
    let uni = uniform_queries(&d, 100);
    let zipf = zipf_queries(&d, 100);

    let mut t = Table::new(
        "Figure 9: Number of Candidate Views vs Min-Support (NY, 100 queries)",
        &[
            "min_sup_%",
            "graph_zipf",
            "graph_uniform",
            "agg_zipf",
            "agg_uniform",
            "gen_ms",
        ],
    );
    for pct in [1usize, 2, 5, 10, 20, 30, 40, 50] {
        let min_sup = (pct * uni.len() / 100).max(1);
        let (counts, ms) = time_ms(|| {
            let g_u = generate_candidates_min_sup(&uni, min_sup).len();
            let g_z = generate_candidates_min_sup(&zipf, min_sup).len();
            let a_u = agg_candidates_min_sup(&uni, &d.universe, min_sup)
                .expect("acyclic")
                .len();
            let a_z = agg_candidates_min_sup(&zipf, &d.universe, min_sup)
                .expect("acyclic")
                .len();
            (g_z, g_u, a_z, a_u)
        });
        t.row(vec![
            format!("{pct}%"),
            counts.0.to_string(),
            counts.1.to_string(),
            counts.2.to_string(),
            counts.3.to_string(),
            fmt(ms),
        ]);
    }
    t.emit("fig9");
}
