//! Ingest-throughput experiment (extension; §1/§6.1 claims).
//!
//! The paper's applications "can easily generate millions of graph records
//! on a weekly basis" and the schema "can be expanded on demand". This
//! experiment measures bulk-load and incremental-append throughput, with
//! and without materialized views to maintain, plus the effect of
//! re-optimizing containers after an append burst.

use graphbi::{AggFn, GraphStore};
use graphbi_workload::{Dataset, DatasetSpec};

use crate::{fmt, scaled, time_ms, uniform_queries, Table};

/// Regenerates the ingest table.
pub fn run() {
    let spec = DatasetSpec::ny(scaled(20_000));
    let d = Dataset::synthesize(&spec);
    let qs = uniform_queries(&d, 50);
    let half = d.records.len() / 2;

    let mut t = Table::new(
        "Ingest Throughput (records/s)",
        &["phase", "records", "ms", "records_per_s"],
    );

    // Bulk load half the dataset.
    let universe = d.universe.clone();
    let (mut store, ms) = time_ms(|| GraphStore::load(universe, &d.records[..half]));
    t.row(vec![
        "bulk load".into(),
        half.to_string(),
        fmt(ms),
        fmt(half as f64 / (ms / 1e3)),
    ]);

    // Incremental append, no views.
    let quarter = half / 2;
    let (_, ms) = time_ms(|| {
        for r in &d.records[half..half + quarter] {
            store.append_record(r);
        }
    });
    t.row(vec![
        "append (no views)".into(),
        quarter.to_string(),
        fmt(ms),
        fmt(quarter as f64 / (ms / 1e3)),
    ]);

    // Incremental append with a full view catalog to maintain.
    store.advise_views(&qs, 25);
    store
        .advise_agg_views(&qs, AggFn::Sum, 25)
        .expect("acyclic");
    let nviews = store.graph_views().len() + store.agg_views().len();
    let (_, ms) = time_ms(|| {
        for r in &d.records[half + quarter..] {
            store.append_record(r);
        }
    });
    let n = d.records.len() - half - quarter;
    t.row(vec![
        format!("append ({nviews} views)"),
        n.to_string(),
        fmt(ms),
        fmt(n as f64 / (ms / 1e3)),
    ]);

    // Container re-optimization after the burst.
    let before = store.size_in_bytes();
    let (_, ms) = time_ms(|| store.optimize());
    t.row(vec![
        format!("optimize ({} -> {} bytes)", before, store.size_in_bytes()),
        store.record_count().to_string(),
        fmt(ms),
        "-".into(),
    ]);

    // Sanity: queries still answer over the fully-ingested store.
    let mut matches = 0u64;
    for q in &qs {
        matches += store.evaluate(q).0.len() as u64;
    }
    println!(
        "post-ingest sanity: {matches} matches over {} queries",
        qs.len()
    );
    t.emit("ingest");
}
