//! Figure 7: aggregate-query run time vs view space budget (GNU, uniform).
//!
//! Paper: 100 uniform path-aggregation queries on the GNU dataset; the
//! aggregate views replace whole measure-column groups with one
//! pre-aggregated column, cutting run time by up to 89% at full budget.

use graphbi::{AggFn, GraphStore, IoStats, PathAggQuery, QueryRequest, Session};
use graphbi_graph::{GraphQuery, QueryExpr};

use crate::{fmt, gnu, time_ms, uniform_queries, Table};

/// One sweep step for aggregate queries:
/// (total_ms, measure_phase_ms, rest_ms, measure+view columns).
///
/// Both phases go through the [`Session`] entry point; the expression
/// form isolates the structural share. Best of three workload runs, to
/// suppress wall-clock noise.
pub fn timed_agg_split(store: &GraphStore, qs: &[GraphQuery], func: AggFn) -> (f64, f64, f64, u64) {
    let structural: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::expr(QueryExpr::Atom(q.clone())))
        .collect();
    let aggs: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::aggregate(PathAggQuery::new(q.clone(), func)))
        .collect();
    let mut best: Option<(f64, f64, f64, u64)> = None;
    for _ in 0..3 {
        let mut stats = IoStats::new();
        let mut structural_ms = 0.0;
        let mut total_ms = 0.0;
        for (sreq, areq) in structural.iter().zip(&aggs) {
            // Structural phase alone, for the split.
            let (_ids, ms) = time_ms(|| store.execute(sreq).expect("structural phase"));
            structural_ms += ms;
            let (res, ms) = time_ms(|| store.execute(areq));
            let (_, s) = res.expect("workload queries are acyclic paths");
            stats.merge(&s);
            total_ms += ms;
        }
        let fetch_ms = (total_ms - structural_ms).max(0.0);
        let run = (
            total_ms,
            fetch_ms,
            structural_ms,
            stats.measure_columns + stats.agg_view_columns,
        );
        if best.is_none_or(|b| run.0 < b.0) {
            best = Some(run);
        }
    }
    best.expect("three runs executed")
}

/// Regenerates Figure 7.
pub fn run() {
    let d = gnu(25_000);
    let qs = uniform_queries(&d, 100);
    let mut store = GraphStore::load(d.universe, &d.records);
    let base_bytes = store.size_in_bytes();

    let mut t = Table::new(
        "Figure 7: Run Time vs Space Budget (100 uniform aggregate queries, GNU)",
        &[
            "budget_%",
            "views",
            "total_ms",
            "fetch_measures_ms",
            "rest_ms",
            "measure_cols",
            "space_overhead_%",
        ],
    );
    for budget_pct in (0..=100).step_by(10) {
        store.clear_views();
        let n = store
            .advise_agg_views(&qs, AggFn::Sum, budget_pct * qs.len() / 100)
            .expect("acyclic workload");
        let (total, fetch, rest, cols) = timed_agg_split(&store, &qs, AggFn::Sum);
        let overhead =
            (store.size_in_bytes() as f64 - base_bytes as f64) / base_bytes as f64 * 100.0;
        t.row(vec![
            format!("{budget_pct}%"),
            n.to_string(),
            fmt(total),
            fmt(fetch),
            fmt(rest),
            cols.to_string(),
            fmt(overhead),
        ]);
    }
    t.emit("fig7");
}
