//! Figure 11: gIndex fragments vs aggregate graph views (aggregate
//! queries).
//!
//! Paper: for path-aggregation workloads the gap widens — fragments only
//! accelerate the structural phase, while aggregate views also replace the
//! measure columns with pre-aggregated ones (up to 6× faster than
//! `gIndex_Q`).

use graphbi::{AggFn, GraphStore};
use graphbi_workload::Dataset;

use crate::figs::fig10::mined_fragments;
use crate::figs::fig7::timed_agg_split;
use crate::{fmt, ny, uniform_queries, Table};

/// Regenerates Figure 11.
pub fn run() {
    let d = ny(10_000);
    let d2 = Dataset::synthesize(&graphbi_workload::DatasetSpec::ny(crate::scaled(10_000)));
    let qs = uniform_queries(&d, 100);
    let mut store = GraphStore::load(d2.universe, &d.records);

    let sample_size = (d.records.len() / 20).max(100);
    let frags_q = mined_fragments(&d, &store, &qs, sample_size, 1.0);
    let frags_qd = mined_fragments(&d, &store, &qs, sample_size, 0.2);

    // As in Figure 10, the measure-column counts carry the paper's cost
    // model; fragments cannot reduce them at all (they only filter), which
    // is exactly why aggregate views win by the largest margin here.
    let mut t = Table::new(
        "Figure 11: gIndex Fragments vs Aggregate Views (100 uniform aggregate queries)",
        &[
            "budget_%",
            "gIndex_Q+D_ms",
            "gIndex_Q_ms",
            "Views_ms",
            "gIndex_Q+D_mcols",
            "gIndex_Q_mcols",
            "Views_mcols",
        ],
    );
    for budget_pct in (0..=100).step_by(20) {
        let k = budget_pct * qs.len() / 100;
        let mut times = Vec::new();
        let mut cols = Vec::new();
        for frags in [&frags_qd, &frags_q] {
            store.clear_views();
            for f in frags.iter().take(k) {
                store.materialize_graph_view(f.clone());
            }
            let (total, _, _, c) = timed_agg_split(&store, &qs, AggFn::Sum);
            times.push(total);
            cols.push(c);
        }
        store.clear_views();
        store
            .advise_agg_views(&qs, AggFn::Sum, k)
            .expect("acyclic workload");
        let (views_total, _, _, views_cols) = timed_agg_split(&store, &qs, AggFn::Sum);
        t.row(vec![
            format!("{budget_pct}%"),
            fmt(times[0]),
            fmt(times[1]),
            fmt(views_total),
            cols[0].to_string(),
            cols[1].to_string(),
            views_cols.to_string(),
        ]);
    }
    t.emit("fig11");
}
