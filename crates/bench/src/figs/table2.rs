//! Table 2: dataset statistics.
//!
//! Paper: NY 320M records / 27.3B measures / 241 GB; GNU 100M / 7.5B /
//! 68 GB; 1000 distinct edge ids; 35–100 (NY) and 45–100 (GNU) edges per
//! record. We reproduce the same per-record shape at a scaled record count
//! and report the same statistics, including real on-disk size.

use graphbi::GraphStore;
use graphbi_columnstore::persist;

use crate::{fmt, gnu, ny, Table};

/// Regenerates Table 2.
pub fn run() {
    let mut t = Table::new(
        "Table 2: Description of Datasets",
        &[
            "dataset",
            "records",
            "measures",
            "disk_bytes",
            "distinct_edges",
            "min_edges",
            "max_edges",
            "avg_edges",
        ],
    );
    for (name, d) in [("NY", ny(20_000)), ("GNU", gnu(10_000))] {
        let records = d.records.len();
        let min = d.records.iter().map(|r| r.edge_count()).min().unwrap_or(0);
        let max = d.records.iter().map(|r| r.edge_count()).max().unwrap_or(0);
        let avg = d.avg_edges_per_record();
        let measures = d.total_measures();
        let edges = d.universe.edge_count();
        let store = GraphStore::load(d.universe, &d.records);
        let dir = std::env::temp_dir().join(format!("graphbi-table2-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = persist::save(store.relation(), &dir).unwrap_or(0);
        let _ = std::fs::remove_dir_all(&dir);
        t.row(vec![
            name.into(),
            records.to_string(),
            measures.to_string(),
            disk.to_string(),
            edges.to_string(),
            min.to_string(),
            max.to_string(),
            fmt(avg),
        ]);
    }
    t.emit("table2");
}
