//! Figure 3(b): query execution time vs query-graph size, four systems.
//!
//! Paper: 100 queries of 1–1000 edges over 1 M NY records; the column store
//! gets *faster* with larger queries (fewer matches → fewer measures
//! fetched) while the alternatives degrade. Scaled to 20 k records.

use graphbi::GraphStore;
use graphbi_baselines::{GraphDb, RdfStore, RowStore};
use graphbi_workload::queries::{QueryShapeKind, QuerySpec};
use graphbi_workload::{Dataset, DatasetSpec};

use crate::{fmt, run_column_workload, run_engine_workload, scaled, Table};

/// Regenerates Figure 3(b).
pub fn run() {
    let d = Dataset::synthesize(&DatasetSpec::ny(scaled(20_000)));
    let row = RowStore::load(&d.records);
    let rdf = RdfStore::load(&d.records);
    let graph = GraphDb::load(&d.records, &d.universe);
    let store = GraphStore::load(d.universe, &d.records);

    let mut t = Table::new(
        "Figure 3(b): Query Time vs Query Size (100 queries, ms)",
        &[
            "query_edges",
            "ColumnStore",
            "Neo4jStore",
            "RdfStore",
            "RowStore",
            "matches",
        ],
    );
    for size in [1usize, 10, 100, 1000] {
        let spec = QuerySpec {
            min_len: size,
            max_len: size,
            shape: if size <= 6 {
                QueryShapeKind::SinglePath
            } else {
                QueryShapeKind::MultiPath
            },
            ..QuerySpec::uniform(100)
        };
        let qs = graphbi_workload::queries::generate(&d.base, &spec);
        let (col_ms, _, matches) = run_column_workload(&store, &qs);
        let (g_ms, _) = run_engine_workload(&graph, &qs);
        let (rdf_ms, _) = run_engine_workload(&rdf, &qs);
        let (row_ms, _) = run_engine_workload(&row, &qs);
        t.row(vec![
            size.to_string(),
            fmt(col_ms),
            fmt(g_ms),
            fmt(rdf_ms),
            fmt(row_ms),
            matches.to_string(),
        ]);
    }
    t.emit("fig3b");
}
