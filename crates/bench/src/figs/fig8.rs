//! Figure 8: relative performance of Zipf workloads vs space budget.
//!
//! Paper: skewed (Zipf) query workloads share structure, so the same budget
//! buys bigger gains — up to ~34% for plain graph queries and ~94% for
//! aggregate queries. The y-axis is time relative to the zero-view run.

use graphbi::{AggFn, GraphStore};

use crate::figs::{fig6::timed_split, fig7::timed_agg_split};
use crate::{fmt, gnu, ny, zipf_queries, Table};

/// Regenerates Figure 8.
pub fn run() {
    let ny_d = ny(25_000);
    let gnu_d = gnu(25_000);
    let ny_qs = zipf_queries(&ny_d, 100);
    let gnu_qs = zipf_queries(&gnu_d, 100);
    let mut ny_store = GraphStore::load(ny_d.universe, &ny_d.records);
    let mut gnu_store = GraphStore::load(gnu_d.universe, &gnu_d.records);

    let mut t = Table::new(
        "Figure 8: Relative Time of Zipf Workloads vs Space Budget",
        &["budget_%", "graph_NY", "graph_GNU", "agg_NY", "agg_GNU"],
    );

    // Denominators: the zero-view run, filled by the sweep's 0% step.
    let (mut g_ny0, mut g_gnu0, mut a_ny0, mut a_gnu0) = (1.0, 1.0, 1.0, 1.0);

    for budget_pct in (0..=100).step_by(20) {
        let k = budget_pct * 100 / 100;
        // Graph views only, then measure graph queries.
        ny_store.clear_views();
        ny_store.advise_views(&ny_qs, k);
        gnu_store.clear_views();
        gnu_store.advise_views(&gnu_qs, k);
        let (g_ny, ..) = timed_split(&ny_store, &ny_qs);
        let (g_gnu, ..) = timed_split(&gnu_store, &gnu_qs);

        // Aggregate views only, then measure aggregate queries.
        ny_store.clear_views();
        ny_store.advise_agg_views(&ny_qs, AggFn::Sum, k).unwrap();
        gnu_store.clear_views();
        gnu_store.advise_agg_views(&gnu_qs, AggFn::Sum, k).unwrap();
        let (a_ny, ..) = timed_agg_split(&ny_store, &ny_qs, AggFn::Sum);
        let (a_gnu, ..) = timed_agg_split(&gnu_store, &gnu_qs, AggFn::Sum);

        if budget_pct == 0 {
            (g_ny0, g_gnu0, a_ny0, a_gnu0) = (g_ny, g_gnu, a_ny, a_gnu);
        }
        t.row(vec![
            format!("{budget_pct}%"),
            fmt(g_ny / g_ny0),
            fmt(g_gnu / g_gnu0),
            fmt(a_ny / a_ny0),
            fmt(a_gnu / a_gnu0),
        ]);
    }
    t.emit("fig8");
}
