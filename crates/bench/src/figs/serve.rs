//! Service-layer benchmark (the PR-7 tentpole measurement).
//!
//! Drives the TCP server with 1, 8 and 32 concurrent client connections
//! over the Zipf graph workload, in two server configurations:
//!
//! * **dispatch**: `batch_max = 1` — every admitted request is its own
//!   `evaluate_many` call, the one-request-per-dispatch baseline;
//! * **batched**: `batch_max = 64` — requests arriving concurrently on
//!   *different connections* coalesce into shared batches, so the
//!   engine's duplicate-request elimination and shared planning work
//!   across the network exactly as in-process.
//!
//! Every served response is checked bit-identical (canonical wire text)
//! against the in-process `Session` answer before any timing is
//! reported; a mismatch fails the run and the CI job wrapping it.
//! Per-request latency percentiles land in `BENCH_serve.json`.

use std::fmt::Write as _;
use std::sync::Arc;

use graphbi::{GraphStore, QueryRequest, Session, SharedStore};
use graphbi_serve::{Client, ServeConfig, ServeStore, Server};

use crate::{fmt, ny, zipf_queries, Table};

/// Concurrent connection counts swept by the benchmark.
pub const CLIENTS: [usize; 3] = [1, 8, 32];

/// Requests each client issues per run.
const PER_CLIENT: usize = 60;

/// One (mode × clients) measurement.
struct Run {
    mode: &'static str,
    clients: usize,
    p50_us: f64,
    p99_us: f64,
    /// `evaluate_many` dispatches the batcher issued.
    batches: u64,
    /// Requests those dispatches answered.
    requests: u64,
    identical: bool,
}

impl Run {
    fn mean_batch(&self) -> f64 {
        self.requests as f64 / (self.batches as f64).max(1.0)
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_config(
    store: &SharedStore,
    reqs: &Arc<Vec<QueryRequest>>,
    expected: &Arc<Vec<String>>,
    mode: &'static str,
    clients: usize,
    batch_max: usize,
) -> Run {
    let server = Server::start(
        ServeStore::Shared(store.clone()),
        "127.0.0.1:0",
        ServeConfig {
            batch_max,
            queue_depth: 1024,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    let reg = graphbi_obs::global();
    let batches_before = reg.counter("graphbi_serve_batches_total").get();
    let requests_before = reg.counter("graphbi_serve_batched_requests_total").get();

    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let reqs = Arc::clone(reqs);
            let expected = Arc::clone(expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut lat_us = Vec::with_capacity(PER_CLIENT);
                let mut identical = true;
                for k in 0..PER_CLIENT {
                    let i = (c * 7 + k) % reqs.len();
                    let started = std::time::Instant::now();
                    let resp = client.query(&reqs[i]).expect("query");
                    lat_us.push(started.elapsed().as_secs_f64() * 1e6);
                    identical &= resp.to_text() == expected[i];
                }
                (lat_us, identical)
            })
        })
        .collect();

    let mut lat_us = Vec::with_capacity(clients * PER_CLIENT);
    let mut identical = true;
    for t in threads {
        let (l, ok) = t.join().expect("client thread");
        lat_us.extend(l);
        identical &= ok;
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    Run {
        mode,
        clients,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        batches: reg.counter("graphbi_serve_batches_total").get() - batches_before,
        requests: reg.counter("graphbi_serve_batched_requests_total").get() - requests_before,
        identical,
    }
}

/// Runs the benchmark; returns `false` when any served answer differed
/// from in-process, or when the batched server failed to coalesce
/// cross-connection requests under contention.
pub fn run() -> bool {
    let d = ny(10_000);
    let qs = zipf_queries(&d, 100);
    let store = SharedStore::new(GraphStore::load(d.universe, &d.records));
    let reqs: Arc<Vec<QueryRequest>> =
        Arc::new(qs.iter().map(|q| QueryRequest::new(q.clone())).collect());
    let expected: Arc<Vec<String>> = Arc::new(
        store
            .evaluate_many(&reqs)
            .expect("workload is acyclic")
            .into_iter()
            .map(|(resp, _)| resp.to_text())
            .collect(),
    );

    // Best of three runs per configuration (same convention as fig6),
    // applied symmetrically to both modes: scheduler jitter at the
    // millisecond scale otherwise dominates the tail percentiles.
    let best = |mode, clients, batch_max| {
        let trials: Vec<Run> = (0..3)
            .map(|_| run_config(&store, &reqs, &expected, mode, clients, batch_max))
            .collect();
        // Correctness is judged over every trial, not just the kept one.
        let all_identical = trials.iter().all(|r| r.identical);
        let mut kept = trials
            .into_iter()
            .min_by(|a, b| {
                (a.p99_us + a.p50_us)
                    .partial_cmp(&(b.p99_us + b.p50_us))
                    .expect("finite percentiles")
            })
            .expect("three runs executed");
        kept.identical = all_identical;
        kept
    };
    let mut runs = Vec::new();
    for &clients in &CLIENTS {
        runs.push(best("dispatch", clients, 1));
        runs.push(best("batched", clients, 64));
    }

    let mut t = Table::new(
        "Service layer: per-request latency, dispatch (batch_max=1) vs batched (batch_max=64)",
        &[
            "mode",
            "clients",
            "p50_us",
            "p99_us",
            "dispatches",
            "requests",
            "mean_batch",
            "identical",
        ],
    );
    for r in &runs {
        t.row(vec![
            r.mode.into(),
            r.clients.to_string(),
            fmt(r.p50_us),
            fmt(r.p99_us),
            r.batches.to_string(),
            r.requests.to_string(),
            format!("{:.2}", r.mean_batch()),
            r.identical.to_string(),
        ]);
    }
    t.emit("serve");

    // Machine-readable point for the benchmark history.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"queries\": {},", reqs.len());
    let _ = writeln!(json, "  \"per_client\": {PER_CLIENT},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"clients\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"dispatches\": {}, \"requests\": {}, \"mean_batch\": {:.2}, \
             \"identical\": {}}}{comma}",
            r.mode,
            r.clients,
            r.p50_us,
            r.p99_us,
            r.batches,
            r.requests,
            r.mean_batch(),
            r.identical,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let out = std::env::var("GRAPHBI_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }

    let identical = runs.iter().all(|r| r.identical);
    // Under contention the batched server must actually coalesce: the
    // 32-client batched run needs fewer dispatches than requests.
    let coalesced = runs
        .iter()
        .filter(|r| r.mode == "batched" && r.clients >= 32)
        .all(|r| r.batches < r.requests);
    if !identical {
        eprintln!("serve bench: a served answer differed from in-process");
    }
    if !coalesced {
        eprintln!("serve bench: no cross-connection batching observed at 32 clients");
    }
    identical && coalesced
}
