//! Service-layer benchmark (the PR-7 tentpole measurement).
//!
//! Drives the TCP server with 1, 8 and 32 concurrent client connections
//! over the Zipf graph workload, in two server configurations:
//!
//! * **dispatch**: `batch_max = 1` — every admitted request is its own
//!   `evaluate_many` call, the one-request-per-dispatch baseline;
//! * **batched**: `batch_max = 64` — requests arriving concurrently on
//!   *different connections* coalesce into shared batches, so the
//!   engine's duplicate-request elimination and shared planning work
//!   across the network exactly as in-process.
//!
//! Every served response is checked bit-identical (canonical wire text)
//! against the in-process `Session` answer before any timing is
//! reported; a mismatch fails the run and the CI job wrapping it.
//! Per-request latency percentiles land in `BENCH_serve.json`.

use std::fmt::Write as _;
use std::sync::Arc;

use graphbi::{GraphStore, QueryRequest, Session, SharedStore};
use graphbi_obs::Histogram;
use graphbi_serve::{Client, ServeConfig, ServeStore, Server};

use crate::{fmt, ny, zipf_queries, Table};

/// Concurrent connection counts swept by the benchmark.
pub const CLIENTS: [usize; 3] = [1, 8, 32];

/// Requests each client issues per run.
const PER_CLIENT: usize = 60;

/// One (mode × clients) measurement.
struct Run {
    mode: &'static str,
    clients: usize,
    p50_us: f64,
    p99_us: f64,
    /// `evaluate_many` dispatches the batcher issued.
    batches: u64,
    /// Requests those dispatches answered.
    requests: u64,
    identical: bool,
    /// Wall-clock for the whole run — the recorder-overhead comparison.
    wall_s: f64,
}

impl Run {
    fn mean_batch(&self) -> f64 {
        self.requests as f64 / (self.batches as f64).max(1.0)
    }
}

fn run_config(
    store: &SharedStore,
    reqs: &Arc<Vec<QueryRequest>>,
    expected: &Arc<Vec<String>>,
    mode: &'static str,
    clients: usize,
    cfg: ServeConfig,
) -> Run {
    let server = Server::start(ServeStore::Shared(store.clone()), "127.0.0.1:0", cfg)
        .expect("server starts");
    let addr = server.addr();

    let reg = graphbi_obs::global();
    let batches_before = reg.counter("graphbi_serve_batches_total").get();
    let requests_before = reg.counter("graphbi_serve_batched_requests_total").get();

    // All client threads record into one atomic histogram — the same
    // power-of-two buckets the server's METRICS/TOP report, so figure
    // percentiles and live percentiles share one quantile code path.
    let hist = Arc::new(Histogram::new());
    let started_all = std::time::Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let reqs = Arc::clone(reqs);
            let expected = Arc::clone(expected);
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut identical = true;
                for k in 0..PER_CLIENT {
                    let i = (c * 7 + k) % reqs.len();
                    let started = std::time::Instant::now();
                    let resp = client.query(&reqs[i]).expect("query");
                    hist.record(started.elapsed().as_nanos() as u64);
                    identical &= resp.to_text() == expected[i];
                }
                identical
            })
        })
        .collect();

    let mut identical = true;
    for t in threads {
        identical &= t.join().expect("client thread");
    }
    let wall_s = started_all.elapsed().as_secs_f64();
    let snap = hist.snapshot();

    Run {
        mode,
        clients,
        p50_us: snap.quantile(0.50) as f64 / 1e3,
        p99_us: snap.quantile(0.99) as f64 / 1e3,
        batches: reg.counter("graphbi_serve_batches_total").get() - batches_before,
        requests: reg.counter("graphbi_serve_batched_requests_total").get() - requests_before,
        identical,
        wall_s,
    }
}

/// Runs the benchmark; returns `false` when any served answer differed
/// from in-process, or when the batched server failed to coalesce
/// cross-connection requests under contention.
pub fn run() -> bool {
    let d = ny(10_000);
    let qs = zipf_queries(&d, 100);
    let store = SharedStore::new(GraphStore::load(d.universe, &d.records));
    let reqs: Arc<Vec<QueryRequest>> =
        Arc::new(qs.iter().map(|q| QueryRequest::new(q.clone())).collect());
    let expected: Arc<Vec<String>> = Arc::new(
        store
            .evaluate_many(&reqs)
            .expect("workload is acyclic")
            .into_iter()
            .map(|(resp, _)| resp.to_text())
            .collect(),
    );

    // Best of three runs per configuration (same convention as fig6),
    // applied symmetrically to both modes: scheduler jitter at the
    // millisecond scale otherwise dominates the tail percentiles.
    let best = |mode: &'static str, clients: usize, cfg: &dyn Fn() -> ServeConfig| {
        let trials: Vec<Run> = (0..3)
            .map(|_| run_config(&store, &reqs, &expected, mode, clients, cfg()))
            .collect();
        // Correctness is judged over every trial, not just the kept one.
        let all_identical = trials.iter().all(|r| r.identical);
        let mut kept = trials
            .into_iter()
            .min_by(|a, b| {
                (a.p99_us + a.p50_us)
                    .partial_cmp(&(b.p99_us + b.p50_us))
                    .expect("finite percentiles")
            })
            .expect("three runs executed");
        kept.identical = all_identical;
        kept
    };
    let base = |batch_max: usize| ServeConfig {
        batch_max,
        queue_depth: 1024,
        ..ServeConfig::default()
    };
    let mut runs = Vec::new();
    for &clients in &CLIENTS {
        runs.push(best("dispatch", clients, &|| base(1)));
        runs.push(best("batched", clients, &|| base(64)));
    }

    // Recorder overhead on the unsampled fast path: the same batched
    // 8-client workload with the flight recorder disabled (capacity 0)
    // vs armed with head sampling off — every request pays the full
    // per-request decision cost (rid assignment, sampler, slow check)
    // but none is captured. Head-sampled requests are deliberately NOT
    // in this comparison: they run solo through the profiler, a feature
    // cost, not recorder bookkeeping. Best of three each; answers must
    // stay bit-identical in every trial.
    // Trials interleave off/on so machine drift hits both sides alike;
    // each side keeps its fastest wall-clock.
    let (mut offs, mut ons) = (Vec::new(), Vec::new());
    for _ in 0..3 {
        offs.push(run_config(
            &store,
            &reqs,
            &expected,
            "recorder-off",
            8,
            ServeConfig {
                flight_capacity: 0,
                sample_every: 0,
                ..base(64)
            },
        ));
        ons.push(run_config(
            &store,
            &reqs,
            &expected,
            "recorder-on",
            8,
            ServeConfig {
                sample_every: 0,
                ..base(64)
            },
        ));
    }
    let fastest = |trials: Vec<Run>| {
        let all_identical = trials.iter().all(|r| r.identical);
        let mut kept = trials
            .into_iter()
            .min_by(|a, b| a.wall_s.partial_cmp(&b.wall_s).expect("finite wall"))
            .expect("three runs executed");
        kept.identical = all_identical;
        kept
    };
    let rec_off = fastest(offs);
    let rec_on = fastest(ons);
    let overhead_pct = (rec_on.wall_s - rec_off.wall_s) / rec_off.wall_s.max(1e-9) * 100.0;

    let mut t = Table::new(
        "Service layer: per-request latency, dispatch (batch_max=1) vs batched (batch_max=64)",
        &[
            "mode",
            "clients",
            "p50_us",
            "p99_us",
            "dispatches",
            "requests",
            "mean_batch",
            "identical",
        ],
    );
    for r in runs.iter().chain([&rec_off, &rec_on]) {
        t.row(vec![
            r.mode.into(),
            r.clients.to_string(),
            fmt(r.p50_us),
            fmt(r.p99_us),
            r.batches.to_string(),
            r.requests.to_string(),
            format!("{:.2}", r.mean_batch()),
            r.identical.to_string(),
        ]);
    }
    t.emit("serve");
    println!(
        "recorder overhead (8 clients, batched): off {:.3}s, on {:.3}s, {overhead_pct:+.2}%",
        rec_off.wall_s, rec_on.wall_s
    );

    // Machine-readable point for the benchmark history.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"queries\": {},", reqs.len());
    let _ = writeln!(json, "  \"per_client\": {PER_CLIENT},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"clients\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"dispatches\": {}, \"requests\": {}, \"mean_batch\": {:.2}, \
             \"identical\": {}}}{comma}",
            r.mode,
            r.clients,
            r.p50_us,
            r.p99_us,
            r.batches,
            r.requests,
            r.mean_batch(),
            r.identical,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"recorder\": {{\"clients\": 8, \"off_s\": {:.4}, \"on_s\": {:.4}, \
         \"overhead_pct\": {overhead_pct:.2}, \"sample_every\": 0, \"identical\": {}}}",
        rec_off.wall_s,
        rec_on.wall_s,
        rec_off.identical && rec_on.identical,
    );
    json.push_str("}\n");
    let out = std::env::var("GRAPHBI_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }

    let identical =
        runs.iter().all(|r| r.identical) && rec_off.identical && rec_on.identical;
    // Under contention the batched server must actually coalesce: the
    // 32-client batched run needs fewer dispatches than requests.
    let coalesced = runs
        .iter()
        .filter(|r| r.mode == "batched" && r.clients >= 32)
        .all(|r| r.batches < r.requests);
    if !identical {
        eprintln!("serve bench: a served answer differed from in-process");
    }
    if !coalesced {
        eprintln!("serve bench: no cross-connection batching observed at 32 clients");
    }
    identical && coalesced
}
