//! Figure 10: gIndex discriminative fragments vs graph views (graph
//! queries).
//!
//! Paper: discriminative fragments mined by gSpan/gIndex from a 1% sample
//! (two sampling policies: query-results-only `gIndex_Q`, and an 80/20
//! random/query mix `gIndex_Q+D`) are added as extra bitmap columns and
//! compared against the same number of materialized graph views. Fragments
//! help, but views win — they were selected *for the workload*.

use graphbi::{EdgeId, GraphStore};
use graphbi_graph::GraphQuery;
use graphbi_mining::gindex::{select_fragments, GindexConfig};
use graphbi_mining::gspan::{mine, GspanConfig};
use graphbi_workload::Dataset;

use crate::figs::fig6::timed_split;
use crate::{fmt, ny, time_ms, uniform_queries, Table};

/// Mines discriminative fragments from a sample of the dataset's records.
///
/// `query_fraction` controls the sampling policy: 1.0 = records answering
/// the workload only (`gIndex_Q`), 0.2 = the paper's 80% random / 20%
/// query-answering mix (`gIndex_Q+D`).
pub fn mined_fragments(
    d: &Dataset,
    store: &GraphStore,
    qs: &[GraphQuery],
    sample_size: usize,
    query_fraction: f64,
) -> Vec<Vec<EdgeId>> {
    use graphbi::{QueryRequest, Response, Session};
    let mut sample: Vec<Vec<EdgeId>> = Vec::with_capacity(sample_size);
    let want_query = (sample_size as f64 * query_fraction) as usize;
    // Records answering the queries, round-robin across queries; the
    // expression request form answers with the id bitmap alone.
    let reqs: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::expr(graphbi_graph::QueryExpr::Atom(q.clone())))
        .collect();
    'outer: loop {
        let before = sample.len();
        for req in &reqs {
            if sample.len() >= want_query {
                break 'outer;
            }
            let Ok((Response::Matches(ids), _)) = store.execute(req) else {
                unreachable!("expression requests answer with Matches")
            };
            if let Some(rid) = ids.select((sample.len() % 7) as u64) {
                sample.push(
                    d.records[rid as usize]
                        .edges()
                        .iter()
                        .map(|&(e, _)| e)
                        .collect(),
                );
            }
        }
        if sample.len() == before {
            break; // no more matches to draw
        }
    }
    // Fill the rest with striped random records.
    let stride = (d.records.len() / (sample_size - sample.len()).max(1)).max(1);
    let mut i = 0;
    while sample.len() < sample_size && i < d.records.len() {
        sample.push(d.records[i].edges().iter().map(|&(e, _)| e).collect());
        i += stride;
    }

    let frequent = mine(
        &sample,
        &d.universe,
        &GspanConfig {
            min_support: 3,
            support_ramp: 1,
            max_edges: 6,
            max_patterns: 200_000,
        },
    );
    // gIndex's size-increasing selection order is kept: a budget prefix
    // takes the small discriminative fragments first, exactly as the index
    // is built.
    select_fragments(&frequent, &GindexConfig::default())
        .into_iter()
        .map(|f| f.edges)
        .collect()
}

/// Regenerates Figure 10.
pub fn run() {
    let d = ny(10_000);
    let d2 = Dataset::synthesize(&graphbi_workload::DatasetSpec::ny(crate::scaled(10_000)));
    let qs = uniform_queries(&d, 100);
    let mut store = GraphStore::load(d2.universe, &d.records);

    let sample_size = (d.records.len() / 20).max(100);
    let (frags_q, mine_q_ms) = time_ms(|| mined_fragments(&d, &store, &qs, sample_size, 1.0));
    let (frags_qd, mine_qd_ms) = time_ms(|| mined_fragments(&d, &store, &qs, sample_size, 0.2));
    println!(
        "mined {} gIndex_Q fragments in {:.0} ms, {} gIndex_Q+D in {:.0} ms",
        frags_q.len(),
        mine_q_ms,
        frags_qd.len(),
        mine_qd_ms
    );

    // Wall-clock at this scale is dominated by in-memory plan overheads,
    // not column fetches, so the table also reports the paper's cost-model
    // metric: structural (bitmap) columns fetched by the workload.
    let mut t = Table::new(
        "Figure 10: gIndex Fragments vs Graph Views (100 uniform graph queries)",
        &[
            "budget_%",
            "gIndex_Q+D_ms",
            "gIndex_Q_ms",
            "Views_ms",
            "gIndex_Q+D_cols",
            "gIndex_Q_cols",
            "Views_cols",
        ],
    );
    for budget_pct in (0..=100).step_by(20) {
        let k = budget_pct * qs.len() / 100;
        let mut times = Vec::new();
        let mut cols = Vec::new();
        for frags in [&frags_qd, &frags_q] {
            store.clear_views();
            for f in frags.iter().take(k) {
                store.materialize_graph_view(f.clone());
            }
            let (total, _, _, c) = timed_split(&store, &qs);
            times.push(total);
            cols.push(c);
        }
        store.clear_views();
        store.advise_views(&qs, k);
        let (views_total, _, _, views_cols) = timed_split(&store, &qs);
        t.row(vec![
            format!("{budget_pct}%"),
            fmt(times[0]),
            fmt(times[1]),
            fmt(views_total),
            cols[0].to_string(),
            cols[1].to_string(),
            views_cols.to_string(),
        ]);
    }
    t.emit("fig10");
}
