//! Figure 3(a): query execution time vs dataset size, four systems.
//!
//! Paper: 100 uniform graph queries over 1/5/10 M NY records; the column
//! store scales linearly and is orders of magnitude faster than the row
//! store, with the native graph and RDF stores in between. Scaled here to
//! 1/5/10 k records (×`GRAPHBI_SCALE`).

use graphbi::GraphStore;
use graphbi_baselines::{GraphDb, RdfStore, RowStore};
use graphbi_workload::{Dataset, DatasetSpec};

use crate::{fmt, run_column_workload, run_engine_workload, scaled, uniform_queries, Table};

/// Regenerates Figure 3(a).
pub fn run() {
    let mut t = Table::new(
        "Figure 3(a): Query Time vs Dataset Size (100 uniform queries, ms)",
        &[
            "records",
            "ColumnStore",
            "Neo4jStore",
            "RdfStore",
            "RowStore",
            "matches",
        ],
    );
    for n in [1_000usize, 5_000, 10_000] {
        let d = Dataset::synthesize(&DatasetSpec::ny(scaled(n)));
        let qs = uniform_queries(&d, 100);
        let row = RowStore::load(&d.records);
        let rdf = RdfStore::load(&d.records);
        let graph = GraphDb::load(&d.records, &d.universe);
        let store = GraphStore::load(d.universe, &d.records);
        let (col_ms, _, matches) = run_column_workload(&store, &qs);
        let (g_ms, _) = run_engine_workload(&graph, &qs);
        let (rdf_ms, _) = run_engine_workload(&rdf, &qs);
        let (row_ms, _) = run_engine_workload(&row, &qs);
        t.row(vec![
            scaled(n).to_string(),
            fmt(col_ms),
            fmt(g_ms),
            fmt(rdf_ms),
            fmt(row_ms),
            matches.to_string(),
        ]);
    }
    t.emit("fig3a");
}
