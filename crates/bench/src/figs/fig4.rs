//! Figure 4: disk space vs record density, four systems.
//!
//! Paper: the row store grows linearly with density, the column store stays
//! almost flat (NULLs occupy no space) and the native graph store needs the
//! most space.

use graphbi::GraphStore;
use graphbi_baselines::{Engine, GraphDb, RdfStore, RowStore};
use graphbi_columnstore::persist;

use crate::{figs::fig3c::density_datasets, Table};

/// Regenerates Figure 4.
pub fn run() {
    let mut t = Table::new(
        "Figure 4: Disk Space vs Density (bytes)",
        &[
            "density_%",
            "ColumnStore",
            "Neo4jStore",
            "RdfStore",
            "RowStore",
        ],
    );
    for (density, d) in density_datasets() {
        let row = RowStore::load(&d.records);
        let rdf = RdfStore::load(&d.records);
        let graph = GraphDb::load(&d.records, &d.universe);
        let store = GraphStore::load(d.universe, &d.records);
        let dir = std::env::temp_dir().join(format!("graphbi-fig4-{density}"));
        let _ = std::fs::remove_dir_all(&dir);
        let col_bytes = persist::save(store.relation(), &dir).unwrap_or(0);
        let _ = std::fs::remove_dir_all(&dir);
        t.row(vec![
            format!("{density}%"),
            col_bytes.to_string(),
            graph.size_in_bytes().to_string(),
            rdf.size_in_bytes().to_string(),
            row.size_in_bytes().to_string(),
        ]);
    }
    t.emit("fig4");
}
