//! Per-query latency distribution (extension).
//!
//! The paper reports workload totals; a BI deployment also cares about tail
//! latency. This experiment reports p50/p95/p99/max per query class —
//! graph vs aggregate, oblivious vs view-assisted — on the NY′ dataset.

use graphbi::{AggFn, GraphStore, PathAggQuery, QueryRequest, Session};
use graphbi_graph::GraphQuery;
use graphbi_obs::Histogram;

use crate::{fmt, ny, time_ms, zipf_queries, Table};

/// Summarizes a latency sample through the same power-of-two histogram
/// the server's METRICS/TOP verbs report, so figure and live quantiles
/// are computed by one code path ([`graphbi_obs::HistSnapshot::quantile`]).
/// Max stays exact — it is a single sample, not an estimate.
fn percentiles(xs: Vec<f64>) -> (f64, f64, f64, f64) {
    let h = Histogram::new();
    for &ms in &xs {
        h.record((ms * 1e6) as u64); // ns resolution
    }
    let snap = h.snapshot();
    let max = xs.iter().copied().fold(0.0f64, f64::max);
    // quantile() answers a bucket's upper bound, which can overshoot the
    // true maximum — clamp so the table never shows p99 > max.
    let q = |p: f64| (snap.quantile(p) as f64 / 1e6).min(max);
    (q(0.5), q(0.95), q(0.99), max)
}

/// Per-query wall-clock for a closure, best effort (single run per query —
/// the distribution is the point here).
fn run_each<F: FnMut(&GraphQuery)>(qs: &[GraphQuery], mut f: F) -> Vec<f64> {
    qs.iter()
        .map(|q| {
            let ((), ms) = time_ms(|| f(q));
            ms
        })
        .collect()
}

/// Regenerates the latency table.
pub fn run() {
    let d = ny(25_000);
    let qs = zipf_queries(&d, 200);
    let mut store = GraphStore::load(d.universe, &d.records);

    let mut t = Table::new(
        "Per-Query Latency (ms): p50 / p95 / p99 / max",
        &["class", "p50", "p95", "p99", "max"],
    );
    let row = |t: &mut Table, name: &str, xs: Vec<f64>| {
        let (p50, p95, p99, max) = percentiles(xs);
        t.row(vec![name.into(), fmt(p50), fmt(p95), fmt(p99), fmt(max)]);
    };

    // Oblivious.
    let graph_obl = run_each(&qs, |q| {
        let _ = store.execute(&QueryRequest::new(q.clone()).oblivious());
    });
    row(&mut t, "graph, oblivious", graph_obl);
    let agg_obl = run_each(&qs, |q| {
        store
            .execute(&QueryRequest::aggregate(PathAggQuery::new(q.clone(), AggFn::Sum)).oblivious())
            .expect("acyclic");
    });
    row(&mut t, "aggregate, oblivious", agg_obl);

    // View-assisted.
    store.advise_views(&qs, 50);
    store
        .advise_agg_views(&qs, AggFn::Sum, 50)
        .expect("acyclic");
    let graph_views = run_each(&qs, |q| {
        let _ = store.evaluate(q);
    });
    row(&mut t, "graph, views", graph_views);
    let agg_views = run_each(&qs, |q| {
        let _ = store
            .path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))
            .expect("acyclic");
    });
    row(&mut t, "aggregate, views", agg_views);

    t.emit("latency");
}
