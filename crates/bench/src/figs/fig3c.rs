//! Figure 3(c): query execution time vs record density, four systems.
//!
//! Paper: 1 M NY records with 1000 distinct edge ids; density = fraction of
//! the universe present per record (10/20/50%), queries scaled with density.
//! Density leaves the column store flat and hurts the alternatives. Scaled
//! to 1 k records.

use graphbi::GraphStore;
use graphbi_baselines::{GraphDb, RdfStore, RowStore};
use graphbi_workload::queries::QuerySpec;
use graphbi_workload::{Dataset, DatasetSpec};

use crate::{fmt, run_column_workload, run_engine_workload, scaled, Table};

/// The density sweep shared with Figure 4: 10%, 20%, 50% of a 1000-edge
/// universe, with queries growing proportionally.
pub fn density_datasets() -> Vec<(u32, Dataset)> {
    [10u32, 20, 50]
        .into_iter()
        .map(|density| {
            let edges = 1000 * density as usize / 100;
            let spec = DatasetSpec {
                n_records: scaled(1_000),
                min_edges: edges,
                max_edges: edges,
                ..DatasetSpec::ny(scaled(1_000))
            };
            (density, Dataset::synthesize(&spec))
        })
        .collect()
}

/// Regenerates Figure 3(c).
pub fn run() {
    let mut t = Table::new(
        "Figure 3(c): Query Time vs Density (100 queries, ms)",
        &[
            "density_%",
            "ColumnStore",
            "Neo4jStore",
            "RdfStore",
            "RowStore",
            "matches",
        ],
    );
    for (density, d) in density_datasets() {
        // Query size grows with density, as in the paper.
        let qlen = (density as usize / 2).max(3);
        let qspec = QuerySpec {
            min_len: qlen,
            max_len: qlen,
            ..QuerySpec::uniform(100)
        };
        let qs = graphbi_workload::queries::generate(&d.base, &qspec);
        let row = RowStore::load(&d.records);
        let rdf = RdfStore::load(&d.records);
        let graph = GraphDb::load(&d.records, &d.universe);
        let store = GraphStore::load(d.universe, &d.records);
        let (col_ms, _, matches) = run_column_workload(&store, &qs);
        let (g_ms, _) = run_engine_workload(&graph, &qs);
        let (rdf_ms, _) = run_engine_workload(&rdf, &qs);
        let (row_ms, _) = run_engine_workload(&row, &qs);
        t.row(vec![
            format!("{density}%"),
            fmt(col_ms),
            fmt(g_ms),
            fmt(rdf_ms),
            fmt(row_ms),
            matches.to_string(),
        ]);
    }
    t.emit("fig3c");
}
