//! Disk-regime experiment (beyond the paper's figures, same claim): with
//! the database on disk and a cold column cache, the paper's cost model is
//! literal — a graph view saves its |B|−1 bitmap *reads*, an aggregate view
//! saves measure-column reads. This sweep reruns the Figure 6/7 budget axis
//! on the disk-resident store and reports actual disk reads, bytes and
//! wall-clock.

use graphbi::disk::{save_store, DiskGraphStore};
use graphbi::{AggFn, GraphStore, IoStats, PathAggQuery};

use crate::{fmt, gnu, time_ms, zipf_queries, Table};

/// Regenerates the disk-regime table.
pub fn run() {
    let d = gnu(10_000);
    let qs = zipf_queries(&d, 100);
    let mut store = GraphStore::load(d.universe, &d.records);
    let dir = std::env::temp_dir().join(format!("graphbi-disk-regime-{}", std::process::id()));

    let mut t = Table::new(
        "Disk Regime: 100 Zipf queries off disk, cold cache, vs view budget",
        &[
            "budget_%",
            "graph_ms",
            "graph_reads",
            "graph_MB",
            "agg_ms",
            "agg_reads",
            "agg_MB",
        ],
    );
    for budget_pct in [0usize, 25, 50, 100] {
        let k = budget_pct * qs.len() / 100;
        store.clear_views();
        store.advise_views(&qs, k);
        store.advise_agg_views(&qs, AggFn::Sum, k).expect("acyclic");
        let _ = std::fs::remove_dir_all(&dir);
        save_store(&store, &dir).expect("save");
        let disk = DiskGraphStore::open(&dir, 256 << 20).expect("open");

        // Graph queries, cold cache.
        disk.relation().clear_cache();
        let mut g_stats = IoStats::new();
        let (_, g_ms) = time_ms(|| {
            for q in &qs {
                let (_, s) = disk.evaluate(q).expect("evaluate");
                g_stats.merge(&s);
            }
        });

        // Aggregate queries, cold cache.
        disk.relation().clear_cache();
        let mut a_stats = IoStats::new();
        let (_, a_ms) = time_ms(|| {
            for q in &qs {
                let paq = PathAggQuery::new(q.clone(), AggFn::Sum);
                let (_, s) = disk.path_aggregate(&paq).expect("aggregate");
                a_stats.merge(&s);
            }
        });

        t.row(vec![
            format!("{budget_pct}%"),
            fmt(g_ms),
            g_stats.disk_reads.to_string(),
            fmt(g_stats.disk_bytes as f64 / 1e6),
            fmt(a_ms),
            a_stats.disk_reads.to_string(),
            fmt(a_stats.disk_bytes as f64 / 1e6),
        ]);
    }
    let _ = std::fs::remove_dir_all(&dir);
    t.emit("disk_regime");
}
