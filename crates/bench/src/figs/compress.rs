//! Compressed format v3 vs raw v2: disk footprint and answer differential
//! (the PR-8 tentpole measurement).
//!
//! Two datasets, both NY-shaped, saved twice each — once as format v2 (raw
//! payloads) and once as v3 (codec-compressed payloads):
//!
//! * **ny-zipf-quantized** — measures quantized to a small Zipf-skewed
//!   value domain, the shape real sensor/toll/latency measures take. This
//!   is where dictionary coding earns its keep; the acceptance gate
//!   requires v3 to shrink bytes-on-disk by at least 2× here.
//! * **ny-uniform** — the paper's continuous uniform measures, which no
//!   dictionary can compress. The honest row: v3's win is limited to the
//!   bitmap columns, and the gate only requires it never to *grow*.
//!
//! Every query of a Zipf-selected workload is answered three ways — the
//! in-memory store (raw truth), the v2 disk store, and the v3 disk store —
//! and the answers must be bit-identical (`f64::to_bits`, no tolerance)
//! before any size or timing is reported. A mismatch fails the run and the
//! `compress-smoke` CI job wrapping it. Results land in
//! `BENCH_compress.json`.

use std::fmt::Write as _;
use std::path::Path;

use graphbi::disk::{save_store_with_format, DiskGraphStore};
use graphbi::{GraphStore, IoStats};
use graphbi_columnstore::{os_vfs, FormatVersion};
use graphbi_graph::{GraphQuery, GraphRecord, RecordBuilder};
use graphbi_workload::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{fmt, ny, time_ms, zipf_queries, Table};

/// Column-cache budget for the disk stores: large enough that the timed
/// pass is not eviction-bound, so the cold numbers measure read+decode.
const CACHE_BYTES: usize = 64 << 20;

/// The acceptance gate on the quantized row (see module docs).
const MIN_ZIPF_RATIO: f64 = 2.0;

/// Re-measures every record from a Zipf-skewed quantized domain:
/// `0.5 + 0.5·k` for Zipf-sampled level `k` — about two dozen distinct
/// values, heavily skewed toward the first few. Structure (which edges
/// each record holds) is untouched, so the workload matches identically.
fn quantize_records(records: &[GraphRecord]) -> Vec<GraphRecord> {
    let levels = Zipf::new(24, 1.2);
    let mut rng = StdRng::seed_from_u64(0x51ab);
    records
        .iter()
        .map(|r| {
            let mut b = RecordBuilder::with_capacity(r.edge_count());
            for &(e, _) in r.edges() {
                b.add(e, 0.5 + levels.sample(&mut rng) as f64 * 0.5);
            }
            if let Some(g) = r.group() {
                b.group(g);
            }
            b.build()
        })
        .collect()
}

/// One query's answer reduced to exactly-comparable form: record ids plus
/// every measure's bit pattern.
type Answer = (Vec<u32>, Vec<u64>);

/// Runs the workload against an in-memory store — the raw truth the two
/// disk formats are differenced against.
fn truth(store: &GraphStore, queries: &[GraphQuery]) -> Vec<Answer> {
    queries
        .iter()
        .map(|q| {
            let (r, _) = store.evaluate(q);
            (r.records, r.measures.iter().map(|v| v.to_bits()).collect())
        })
        .collect()
}

/// Cold-opens `dir` and runs the workload once, returning the answers, the
/// wall clock, and the accumulated I/O stats of the pass.
fn cold_pass(dir: &Path, queries: &[GraphQuery]) -> (Vec<Answer>, f64, IoStats) {
    let disk = DiskGraphStore::open(dir, CACHE_BYTES).expect("open saved store");
    let mut stats = IoStats::new();
    let (answers, ms) = time_ms(|| {
        queries
            .iter()
            .map(|q| {
                let (r, s) = disk.evaluate(q).expect("disk evaluation");
                stats.merge(&s);
                (r.records, r.measures.iter().map(|v| v.to_bits()).collect())
            })
            .collect::<Vec<Answer>>()
    });
    (answers, ms, stats)
}

/// One dataset's v2-vs-v3 measurement.
struct Row {
    dataset: &'static str,
    v2_bytes: u64,
    v3_bytes: u64,
    v2_cold_ms: f64,
    v3_cold_ms: f64,
    v2_read_bytes: u64,
    v3_read_bytes: u64,
    identical: bool,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.v2_bytes as f64 / self.v3_bytes.max(1) as f64
    }
}

/// Saves `store` in both formats, answers the workload through raw truth
/// and both disk stores, and reports sizes/timings — with `identical`
/// false unless every answer agreed bit-for-bit.
fn measure(dataset: &'static str, store: &GraphStore, queries: &[GraphQuery]) -> Row {
    let base = std::env::temp_dir().join(format!("graphbi-compress-{dataset}"));
    let dir_v2 = base.join("v2");
    let dir_v3 = base.join("v3");
    let _ = std::fs::remove_dir_all(&base);
    let vfs = os_vfs();
    let v2_bytes =
        save_store_with_format(vfs.as_ref(), store, &dir_v2, &[], &[], FormatVersion::V2)
            .expect("save v2");
    let v3_bytes =
        save_store_with_format(vfs.as_ref(), store, &dir_v3, &[], &[], FormatVersion::V3)
            .expect("save v3");

    let want = truth(store, queries);
    let (v2_answers, v2_cold_ms, v2_stats) = cold_pass(&dir_v2, queries);
    let (v3_answers, v3_cold_ms, v3_stats) = cold_pass(&dir_v3, queries);
    let _ = std::fs::remove_dir_all(&base);

    Row {
        dataset,
        v2_bytes,
        v3_bytes,
        v2_cold_ms,
        v3_cold_ms,
        v2_read_bytes: v2_stats.disk_bytes,
        v3_read_bytes: v3_stats.disk_bytes,
        identical: v2_answers == want && v3_answers == want,
    }
}

/// Runs the benchmark; returns `false` when any compressed-path answer
/// differed from raw, or the quantized dataset missed the 2× size gate.
pub fn run() -> bool {
    let d = ny(4_000);
    let queries = zipf_queries(&d, 80);
    let quantized = quantize_records(&d.records);
    let rows = [
        measure(
            "ny-zipf-quantized",
            &GraphStore::load(d.universe.clone(), &quantized),
            &queries,
        ),
        measure(
            "ny-uniform",
            &GraphStore::load(d.universe.clone(), &d.records),
            &queries,
        ),
    ];

    let mut t = Table::new(
        "Compressed format v3 vs raw v2 (cold cache)",
        &[
            "dataset",
            "v2_bytes",
            "v3_bytes",
            "ratio",
            "v2_cold_ms",
            "v3_cold_ms",
            "v2_read_bytes",
            "v3_read_bytes",
            "identical",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.dataset.into(),
            r.v2_bytes.to_string(),
            r.v3_bytes.to_string(),
            format!("{:.2}x", r.ratio()),
            fmt(r.v2_cold_ms),
            fmt(r.v3_cold_ms),
            r.v2_read_bytes.to_string(),
            r.v3_read_bytes.to_string(),
            r.identical.to_string(),
        ]);
    }
    t.emit("compress");

    let identical = rows.iter().all(|r| r.identical);
    let zipf_ratio_ok = rows[0].ratio() >= MIN_ZIPF_RATIO;
    let never_grows = rows.iter().all(|r| r.v3_bytes <= r.v2_bytes);
    if !identical {
        println!("FAIL: a compressed-path answer differed from raw");
    }
    if !zipf_ratio_ok {
        println!(
            "FAIL: quantized ratio {:.2}x below the {MIN_ZIPF_RATIO}x gate",
            rows[0].ratio()
        );
    }
    if !never_grows {
        println!("FAIL: v3 produced more bytes than v2 on some dataset");
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"compress\",");
    let _ = writeln!(json, "  \"identical\": {identical},");
    let _ = writeln!(json, "  \"zipf_ratio_ok\": {zipf_ratio_ok},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"v2_bytes\": {}, \"v3_bytes\": {}, \
             \"ratio\": {:.3}, \"v2_cold_ms\": {:.3}, \"v3_cold_ms\": {:.3}, \
             \"v2_read_bytes\": {}, \"v3_read_bytes\": {}, \"identical\": {}}}{comma}",
            r.dataset,
            r.v2_bytes,
            r.v3_bytes,
            r.ratio(),
            r.v2_cold_ms,
            r.v3_cold_ms,
            r.v2_read_bytes,
            r.v3_read_bytes,
            r.identical,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let out = std::env::var("GRAPHBI_BENCH_OUT").unwrap_or_else(|_| "BENCH_compress.json".into());
    std::fs::write(&out, &json).expect("write benchmark point");
    println!("wrote {out}");

    identical && zipf_ratio_ok && never_grows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_records_keep_structure_and_shrink_cardinality() {
        let d = ny(100);
        let q = quantize_records(&d.records);
        assert_eq!(q.len(), d.records.len());
        let mut distinct = std::collections::BTreeSet::new();
        for (orig, quant) in d.records.iter().zip(&q) {
            let orig_edges: Vec<_> = orig.edges().iter().map(|&(e, _)| e).collect();
            let quant_edges: Vec<_> = quant.edges().iter().map(|&(e, _)| e).collect();
            assert_eq!(orig_edges, quant_edges, "structure must be untouched");
            for &(_, m) in quant.edges() {
                distinct.insert(m.to_bits());
            }
        }
        assert!(
            distinct.len() <= 24,
            "quantized domain too wide: {}",
            distinct.len()
        );
    }
}
