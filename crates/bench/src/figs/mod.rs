//! One module per table/figure of the paper's evaluation (§7).
//!
//! Each module exposes `run()`, invoked by the same-named binary and by
//! `run_all`. The module docs state the paper's claim being reproduced and
//! the scaled parameters used.

pub mod compress;
pub mod disk_regime;
pub mod fig10;
pub mod fig11;
pub mod fig3a;
pub mod fig3b;
pub mod fig3c;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod ingest;
pub mod kernels;
pub mod latency;
pub mod serve;
pub mod shard;
pub mod table2;
