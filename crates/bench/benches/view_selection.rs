//! View-selection microbenchmarks: candidate generation (closure vs
//! a-priori min-support) and the greedy extended set cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphbi_views::{
    agg_candidates, generate_candidates, generate_candidates_min_sup, rewrite_query,
    select_agg_views, select_views,
};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn workloads() -> (
    Dataset,
    Vec<graphbi_graph::GraphQuery>,
    Vec<graphbi_graph::GraphQuery>,
) {
    let d = Dataset::synthesize(&DatasetSpec::ny(500));
    let uni = d.queries(&QuerySpec::uniform(100));
    let zipf = d.queries(&QuerySpec::zipf(100));
    (d, uni, zipf)
}

fn bench_candidates(c: &mut Criterion) {
    let (_, uni, zipf) = workloads();
    let mut g = c.benchmark_group("candidate_generation");
    g.bench_function("closure_uniform", |b| {
        b.iter(|| generate_candidates(&uni).len())
    });
    g.bench_function("closure_zipf", |b| {
        b.iter(|| generate_candidates(&zipf).len())
    });
    for min_sup in [2usize, 5, 10] {
        g.bench_with_input(
            BenchmarkId::new("min_sup_zipf", min_sup),
            &min_sup,
            |b, &ms| b.iter(|| generate_candidates_min_sup(&zipf, ms).len()),
        );
    }
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let (_, _, zipf) = workloads();
    let cands = generate_candidates(&zipf);
    c.bench_function("greedy_select_budget50", |b| {
        b.iter(|| select_views(&zipf, &cands, 50).len())
    });
}

fn bench_agg_candidates_and_selection(c: &mut Criterion) {
    let (d, _, zipf) = workloads();
    c.bench_function("agg_candidates_zipf", |b| {
        b.iter(|| agg_candidates(&zipf, &d.universe).unwrap().len())
    });
    let cands = agg_candidates(&zipf, &d.universe).unwrap();
    c.bench_function("agg_greedy_select_budget50", |b| {
        b.iter(|| {
            select_agg_views(&zipf, &d.universe, &cands, 50)
                .unwrap()
                .len()
        })
    });
}

fn bench_rewrite(c: &mut Criterion) {
    let (_, _, zipf) = workloads();
    let cands = generate_candidates(&zipf);
    let chosen = select_views(&zipf, &cands, 50);
    let views: Vec<_> = chosen.iter().map(|&i| cands[i].edges.clone()).collect();
    c.bench_function("rewrite_100_queries", |b| {
        b.iter(|| {
            zipf.iter()
                .map(|q| rewrite_query(q, &views).bitmap_cost())
                .sum::<usize>()
        })
    });
}

criterion_group!(
    benches,
    bench_candidates,
    bench_selection,
    bench_agg_candidates_and_selection,
    bench_rewrite
);
criterion_main!(benches);
