//! Ablations of the design choices called out in DESIGN.md §6:
//! storage layout, partition width, and view-selection strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphbi::{GraphStore, IoStats, QueryRequest, Session};
use graphbi_columnstore::{ColumnBuilder, DenseColumn};
use graphbi_views::{generate_candidates, rewrite_query, select_views};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn dataset() -> Dataset {
    Dataset::synthesize(&DatasetSpec::ny(5_000))
}

/// Sparse (bitmap + dense values) vs NULL-padded dense measure columns.
fn bench_column_layout(c: &mut Criterion) {
    const N: u32 = 200_000;
    const STEP: usize = 12; // ~8% density, the NY record shape
    let mut sparse_b = ColumnBuilder::new();
    let mut dense = DenseColumn::new(N as usize);
    for r in (0..N).step_by(STEP) {
        sparse_b.push(r, f64::from(r));
        dense.set(r, f64::from(r));
    }
    let sparse = sparse_b.finish();
    let probes: Vec<u32> = (0..N).step_by(97).collect();

    let mut g = c.benchmark_group("column_layout_point_lookups");
    g.bench_function("sparse", |b| {
        b.iter(|| probes.iter().filter_map(|&r| sparse.get(r)).sum::<f64>())
    });
    g.bench_function("dense", |b| {
        b.iter(|| probes.iter().filter_map(|&r| dense.get(r)).sum::<f64>())
    });
    g.finish();
    // The space story is asserted in unit tests: sparse ≈ density-linear,
    // dense ≈ capacity-linear.
}

/// Vertical partition width: 100 vs 1000 vs 10000 columns per sub-relation.
fn bench_partition_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_width");
    for width in [100usize, 1000, 10_000] {
        let d = dataset();
        let qs = d.queries(&QuerySpec::uniform(20));
        let store = GraphStore::load_with_width(d.universe, &d.records, width);
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                qs.iter()
                    .map(|q| store.evaluate(q).0.value_count())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

/// View strategies: no views, greedy budget, materialize-every-query.
fn bench_view_strategy(c: &mut Criterion) {
    let d = dataset();
    let qs = d.queries(&QuerySpec::zipf(50));
    let mut store = GraphStore::load(d.universe, &d.records);

    let mut g = c.benchmark_group("view_strategy");
    // The structural phase alone, through the session's expression form.
    let structural: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::expr(graphbi_graph::QueryExpr::Atom(q.clone())))
        .collect();
    let run = |store: &GraphStore, reqs: &[QueryRequest]| {
        let mut n = 0u64;
        for r in reqs {
            if let Ok((graphbi::Response::Matches(ids), _)) = store.execute(r) {
                n += ids.len();
            }
        }
        n
    };
    g.bench_function("no_views", |b| {
        b.iter(|| {
            let mut stats = IoStats::new();
            qs.iter()
                .map(|q| {
                    let (_, s) = store
                        .execute(&QueryRequest::new(q.clone()).oblivious())
                        .expect("acyclic");
                    stats.merge(&s);
                    s.bitmap_columns
                })
                .sum::<u64>()
        })
    });
    store.clear_views();
    store.advise_views(&qs, 10);
    g.bench_function("greedy_budget_10", |b| b.iter(|| run(&store, &structural)));
    store.clear_views();
    // Materialize every distinct query (the paper's impractical extreme).
    let mut distinct = qs.clone();
    distinct.sort();
    distinct.dedup();
    for q in &distinct {
        store.materialize_graph_view(q.edges().to_vec());
    }
    g.bench_function("materialize_every_query", |b| {
        b.iter(|| run(&store, &structural))
    });
    g.finish();
}

/// Rewrite planning cost as the view catalog grows.
fn bench_rewrite_scaling(c: &mut Criterion) {
    let d = dataset();
    let qs = d.queries(&QuerySpec::zipf(100));
    let cands = generate_candidates(&qs);
    let mut g = c.benchmark_group("rewrite_vs_catalog_size");
    for budget in [5usize, 25, 100] {
        let chosen = select_views(&qs, &cands, budget);
        let views: Vec<_> = chosen.iter().map(|&i| cands[i].edges.clone()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            b.iter(|| {
                qs.iter()
                    .map(|q| rewrite_query(q, &views).bitmap_cost())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_column_layout,
    bench_partition_width,
    bench_view_strategy,
    bench_rewrite_scaling
);
criterion_main!(benches);
