//! Microbenchmarks of the bitmap substrate, including the
//! compressed-vs-dense ablation called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphbi_bitmap::ewah::EwahBitmap;
use graphbi_bitmap::{dense::DenseBitmap, Bitmap};

const N: u32 = 1_000_000;

fn make(density_pct: u32, offset: u32) -> Bitmap {
    let step = (100 / density_pct).max(1);
    let mut b: Bitmap = (offset..N).step_by(step as usize).collect();
    b.optimize();
    b
}

fn make_dense(density_pct: u32, offset: u32) -> DenseBitmap {
    let step = (100 / density_pct).max(1);
    let mut b = DenseBitmap::new(N);
    for v in (offset..N).step_by(step as usize) {
        b.insert(v);
    }
    b
}

fn bench_and(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_and");
    for density in [1u32, 10, 50] {
        let a = make(density, 0);
        let b = make(density, 1);
        g.bench_with_input(
            BenchmarkId::new("compressed", density),
            &density,
            |bench, _| bench.iter(|| std::hint::black_box(a.and(&b)).len()),
        );
        let da = make_dense(density, 0);
        let db = make_dense(density, 1);
        g.bench_with_input(BenchmarkId::new("dense", density), &density, |bench, _| {
            bench.iter(|| {
                let mut x = da.clone();
                x.and_assign(&db);
                std::hint::black_box(x.len())
            })
        });
        let step = (100 / density).max(1) as usize;
        let ea = EwahBitmap::from_sorted((0..N).step_by(step));
        let eb = EwahBitmap::from_sorted((1..N).step_by(step));
        g.bench_with_input(BenchmarkId::new("ewah", density), &density, |bench, _| {
            bench.iter(|| std::hint::black_box(ea.and(&eb)).len())
        });
    }
    g.finish();
}

/// Space ablation: bytes per format across densities (printed once).
fn bench_space_report(c: &mut Criterion) {
    for density in [1u32, 10, 50] {
        let step = (100 / density).max(1) as usize;
        let compressed = make(density, 0);
        let ewah = EwahBitmap::from_sorted((0..N).step_by(step));
        let dense = make_dense(density, 0);
        println!(
            "space @ {density}%: roaring {} B, ewah {} B, dense {} B",
            compressed.size_in_bytes(),
            ewah.size_in_bytes(),
            dense.size_in_bytes()
        );
    }
    // Keep criterion happy with a trivial measurement.
    c.bench_function("noop_space_report", |b| b.iter(|| 1 + 1));
}

fn bench_and_many(c: &mut Criterion) {
    let bitmaps: Vec<Bitmap> = (0..8u32).map(|i| make(10, i)).collect();
    c.bench_function("bitmap_and_many_8", |bench| {
        bench.iter(|| std::hint::black_box(Bitmap::and_many(bitmaps.iter())).len())
    });
}

fn bench_or(c: &mut Criterion) {
    let a = make(10, 0);
    let b = make(10, 5);
    c.bench_function("bitmap_or", |bench| {
        bench.iter(|| std::hint::black_box(a.or(&b)).len())
    });
}

fn bench_iter_and_rank(c: &mut Criterion) {
    let a = make(10, 0);
    c.bench_function("bitmap_iter_sum", |bench| {
        bench.iter(|| a.iter().map(u64::from).sum::<u64>())
    });
    c.bench_function("bitmap_rank", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for v in (0..N).step_by(997) {
                acc += a.rank(v);
            }
            acc
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let a = make(10, 0);
    c.bench_function("bitmap_encode", |bench| bench.iter(|| a.encode().len()));
    let bytes = a.encode();
    c.bench_function("bitmap_decode", |bench| {
        bench.iter(|| Bitmap::decode(&mut bytes.clone()).unwrap().len())
    });
}

criterion_group!(
    benches,
    bench_and,
    bench_space_report,
    bench_and_many,
    bench_or,
    bench_iter_and_rank,
    bench_codec
);
criterion_main!(benches);
