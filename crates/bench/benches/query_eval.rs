//! Column-store query evaluation microbenchmarks: structural phase, measure
//! fetch and path aggregation, with and without views.

use criterion::{criterion_group, criterion_main, Criterion};
use graphbi::{AggFn, GraphStore, PathAggQuery, Session};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn setup() -> (GraphStore, Vec<graphbi::GraphQuery>) {
    let d = Dataset::synthesize(&DatasetSpec::ny(10_000));
    let qs = d.queries(&QuerySpec::uniform(20));
    (GraphStore::load(d.universe, &d.records), qs)
}

fn bench_structural(c: &mut Criterion) {
    let (store, qs) = setup();
    // The expression request form runs the structural phase alone.
    let reqs: Vec<graphbi::QueryRequest> = qs
        .iter()
        .map(|q| graphbi::QueryRequest::expr(graphbi_graph::QueryExpr::Atom(q.clone())))
        .collect();
    c.bench_function("structural_20_queries", |b| {
        b.iter(|| {
            reqs.iter()
                .map(|r| match store.execute(r) {
                    Ok((graphbi::Response::Matches(ids), _)) => ids.len(),
                    _ => unreachable!("expression requests answer with Matches"),
                })
                .sum::<u64>()
        })
    });
}

fn bench_evaluate(c: &mut Criterion) {
    let (store, qs) = setup();
    c.bench_function("evaluate_20_queries", |b| {
        b.iter(|| {
            qs.iter()
                .map(|q| store.evaluate(q).0.value_count())
                .sum::<usize>()
        })
    });
}

fn bench_evaluate_with_views(c: &mut Criterion) {
    let (mut store, qs) = setup();
    store.advise_views(&qs, qs.len());
    c.bench_function("evaluate_20_queries_with_views", |b| {
        b.iter(|| {
            qs.iter()
                .map(|q| store.evaluate(q).0.value_count())
                .sum::<usize>()
        })
    });
}

fn bench_path_aggregate(c: &mut Criterion) {
    let (mut store, qs) = setup();
    c.bench_function("path_aggregate_20_queries", |b| {
        b.iter(|| {
            qs.iter()
                .map(|q| {
                    store
                        .path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))
                        .unwrap()
                        .0
                        .len()
                })
                .sum::<usize>()
        })
    });
    store.advise_agg_views(&qs, AggFn::Sum, qs.len()).unwrap();
    c.bench_function("path_aggregate_20_queries_with_views", |b| {
        b.iter(|| {
            qs.iter()
                .map(|q| {
                    store
                        .path_aggregate(&PathAggQuery::new(q.clone(), AggFn::Sum))
                        .unwrap()
                        .0
                        .len()
                })
                .sum::<usize>()
        })
    });
}

criterion_group!(
    benches,
    bench_structural,
    bench_evaluate,
    bench_evaluate_with_views,
    bench_path_aggregate
);
criterion_main!(benches);
