//! Baseline-engine microbenchmarks: the join strategies the paper's
//! Figure 3 compares (hash self-joins, adjacency traversal, triple merge
//! joins) against the column store's bitmap conjunction.

use criterion::{criterion_group, criterion_main, Criterion};
use graphbi::GraphStore;
use graphbi_baselines::{Engine, GraphDb, RdfStore, RowStore};
use graphbi_workload::{queries::QuerySpec, Dataset, DatasetSpec};

fn setup() -> (Dataset, Vec<graphbi_graph::GraphQuery>) {
    let d = Dataset::synthesize(&DatasetSpec::ny(2_000));
    let qs = d.queries(&QuerySpec::uniform(20));
    (d, qs)
}

fn bench_engines(c: &mut Criterion) {
    let (d, qs) = setup();
    let row = RowStore::load(&d.records);
    let rdf = RdfStore::load(&d.records);
    let graph = GraphDb::load(&d.records, &d.universe);
    let records = d.records.clone();
    let store = GraphStore::load(d.universe, &d.records);
    drop(records);

    let mut g = c.benchmark_group("engine_20_queries");
    g.bench_function("column_store", |b| {
        b.iter(|| qs.iter().map(|q| store.evaluate(q).0.len()).sum::<usize>())
    });
    g.bench_function("row_store_hash_joins", |b| {
        b.iter(|| qs.iter().map(|q| row.evaluate(q).len()).sum::<usize>())
    });
    g.bench_function("rdf_merge_joins", |b| {
        b.iter(|| qs.iter().map(|q| rdf.evaluate(q).len()).sum::<usize>())
    });
    g.bench_function("graphdb_traversal", |b| {
        b.iter(|| qs.iter().map(|q| graph.evaluate(q).len()).sum::<usize>())
    });
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
