//! Greedy failure minimization.
//!
//! Given a scenario some oracle rejects, reduce it to something a human can
//! read: first delta-debug the record collection (drop chunks, halving the
//! chunk size down to single records), then strip the workload to the
//! items that still reproduce the failure. Every candidate is re-checked
//! through the failing predicate, so the result is guaranteed to still
//! fail. [`shrink`] minimizes against the differential oracle;
//! [`shrink_with`] takes any predicate — the crash-consistency fuzzer
//! plugs its own reopen check in here.

use crate::engines::Fault;
use crate::oracle;
use crate::scenario::Scenario;

/// Outcome of a shrink run.
pub struct Shrunk {
    /// The minimized, still-failing scenario.
    pub scenario: Scenario,
    /// Oracle evaluations spent shrinking.
    pub evaluations: u64,
}

/// Minimizes `scenario`, which must fail under `fault` (panics otherwise —
/// shrinking a passing scenario is a harness bug).
pub fn shrink(scenario: &Scenario, fault: Fault) -> Shrunk {
    shrink_with(scenario, |s| !oracle::check(s, fault).passed())
}

/// Minimizes `scenario` against an arbitrary failing predicate: `fails`
/// must return true on `scenario` itself (panics otherwise) and on every
/// intermediate result. The predicate is the single source of truth — any
/// oracle (differential, crash-consistency, …) drops in.
pub fn shrink_with(scenario: &Scenario, mut fails_pred: impl FnMut(&Scenario) -> bool) -> Shrunk {
    let mut evaluations = 0u64;
    let mut fails = |s: &Scenario| {
        evaluations += 1;
        fails_pred(s)
    };
    assert!(
        fails(scenario),
        "shrink_with() called on a scenario the predicate accepts"
    );

    // Phase 1: delta-debug the record set.
    let mut kept: Vec<usize> = (0..scenario.records.len()).collect();
    let mut chunk = (kept.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < kept.len() && kept.len() > 1 {
            let end = (start + chunk).min(kept.len());
            let candidate: Vec<usize> = kept[..start].iter().chain(&kept[end..]).copied().collect();
            if !candidate.is_empty() && fails(&scenario.with_records(&candidate)) {
                kept = candidate;
                progressed = true;
                // Re-test the same offset: it now holds different records.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    let mut min = scenario.with_records(&kept);

    // Phase 2: strip workload items, one family at a time.
    let queries = minimize_items(&min, &mut fails, WorkloadFamily::Queries);
    let exprs = minimize_items(&min, &mut fails, WorkloadFamily::Exprs);
    let aggs = minimize_items(&min, &mut fails, WorkloadFamily::Aggs);
    let candidate = min.with_workload(
        min.queries
            .iter()
            .enumerate()
            .filter(|(i, _)| queries.contains(i))
            .map(|(_, q)| q.clone())
            .collect(),
        min.exprs
            .iter()
            .enumerate()
            .filter(|(i, _)| exprs.contains(i))
            .map(|(_, e)| e.clone())
            .collect(),
        min.aggs
            .iter()
            .enumerate()
            .filter(|(i, _)| aggs.contains(i))
            .map(|(_, a)| a.clone())
            .collect(),
    );
    if fails(&candidate) {
        min = candidate;
    }

    Shrunk {
        scenario: min,
        evaluations,
    }
}

#[derive(Clone, Copy)]
enum WorkloadFamily {
    Queries,
    Exprs,
    Aggs,
}

/// Greedily removes items of one workload family while the failure
/// persists; returns the indices that must stay.
fn minimize_items(
    scenario: &Scenario,
    fails: &mut impl FnMut(&Scenario) -> bool,
    family: WorkloadFamily,
) -> Vec<usize> {
    let len = match family {
        WorkloadFamily::Queries => scenario.queries.len(),
        WorkloadFamily::Exprs => scenario.exprs.len(),
        WorkloadFamily::Aggs => scenario.aggs.len(),
    };
    let mut kept: Vec<usize> = (0..len).collect();
    let mut i = 0;
    while i < kept.len() {
        let candidate: Vec<usize> = kept
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, &k)| k)
            .collect();
        let restricted = restrict(scenario, &candidate, family);
        if fails(&restricted) {
            kept = candidate;
        } else {
            i += 1;
        }
    }
    kept
}

fn restrict(scenario: &Scenario, keep: &[usize], family: WorkloadFamily) -> Scenario {
    let pick = |len: usize, active: bool| -> Vec<usize> {
        if active {
            keep.to_vec()
        } else {
            (0..len).collect()
        }
    };
    let q_keep = pick(
        scenario.queries.len(),
        matches!(family, WorkloadFamily::Queries),
    );
    let e_keep = pick(
        scenario.exprs.len(),
        matches!(family, WorkloadFamily::Exprs),
    );
    let a_keep = pick(scenario.aggs.len(), matches!(family, WorkloadFamily::Aggs));
    scenario.with_workload(
        q_keep
            .iter()
            .map(|&i| scenario.queries[i].clone())
            .collect(),
        e_keep.iter().map(|&i| scenario.exprs[i].clone()).collect(),
        a_keep.iter().map(|&i| scenario.aggs[i].clone()).collect(),
    )
}
