//! The crash-consistency oracle: save through a faulty disk, crash at
//! every operation, reopen, and demand the store is all-old or all-new.
//!
//! One scenario becomes two databases — the *old* store (the first half of
//! the records) and the *new* store (all of them). The old store is saved
//! through a clean [`FaultVfs`]; then, for every fault kind and every VFS
//! operation index the new save performs, a fresh fork of that filesystem
//! is crashed at exactly that point, rebooted, and reopened. The reopened
//! store must answer the whole workload exactly like the old store or
//! exactly like the new one — anything in between is a torn state, the bug
//! this oracle exists to catch. A second sweep flips individual durable
//! bytes of the published store ("corruption at rest") and demands every
//! flip either surfaces as a typed corruption error or provably changes
//! nothing.
//!
//! [`CrashFault::DropCrc`] reopens with [`Verify::TrustDisk`] — the
//! deliberately-broken configuration that proves the harness has teeth:
//! with payload checksums off, some flipped byte must slip through and
//! change an answer, which this oracle reports as a failure the fuzzer
//! then shrinks.
//!
//! [`check_wal`] runs the same discipline over the *live write path*: an
//! [`MvccStore`] ingest sequence (open, two delta commits, a compaction)
//! is crashed at every VFS operation under every fault kind, and recovery
//! must land exactly on a commit boundary — acknowledged commits durable,
//! unacknowledged ones invisible, never a torn in-between.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphbi::disk::{save_store_with, save_store_with_format, DiskGraphStore};
use graphbi::{AggFn, GraphStore, MvccStore, QueryRequest, Response, Session};
use graphbi_columnstore::vfs::Fault as VfsFault;
use graphbi_columnstore::{DeltaOp, FaultVfs, FormatVersion, Verify, Vfs};
use graphbi_graph::RecordBuilder;

use crate::engines::delta_batches;
use crate::oracle::TOLERANCE;
use crate::scenario::Scenario;

/// Column-cache budget for reopened stores (matches the differential
/// matrix: small enough to exercise eviction).
const CACHE_BYTES: usize = 64 << 10;

/// Fault-kind sweep order: every kind is armed at every operation index
/// of the save under test.
const KINDS: [VfsFault; 6] = [
    VfsFault::Crash,
    VfsFault::TornWrite,
    VfsFault::Enospc,
    VfsFault::ShortRead,
    VfsFault::BitFlip,
    VfsFault::LostFsync,
];

/// Intentional misconfiguration of the store under test, for validating
/// that the crash oracle catches real durability bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashFault {
    /// No fault: the store under test, checksums on.
    None,
    /// Reopen every store with [`Verify::TrustDisk`] — payload checksums
    /// disabled. The bit-flip sweep must catch this.
    DropCrc,
}

/// One violated durability guarantee.
#[derive(Debug)]
pub struct CrashFailure {
    /// Where it happened (`TornWrite@17`, `flip g…-part_0000.gbi@412`, …).
    pub site: String,
    /// What guarantee broke.
    pub detail: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.site, self.detail)
    }
}

/// The crash oracle's verdict on one scenario.
#[derive(Debug, Default)]
pub struct CrashReport {
    /// Every broken guarantee (empty = scenario passed).
    pub failures: Vec<CrashFailure>,
    /// Crash experiments run (fault kinds × save operation indices).
    pub crash_points: u64,
    /// Corruption-at-rest experiments run (individual byte flips).
    pub flip_points: u64,
}

impl CrashReport {
    /// True when every crash point reopened consistently and every flip
    /// was caught or provably harmless.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn fail(&mut self, site: String, detail: String) {
        self.failures.push(CrashFailure { site, detail });
    }
}

/// Runs the full crash-consistency sweep on one scenario, over the
/// default (v3, compressed) on-disk format.
pub fn check(scenario: &Scenario, fault: CrashFault) -> CrashReport {
    check_format(scenario, fault, FormatVersion::default())
}

/// [`check`] with the on-disk format of the baseline and of the save
/// under test pinned explicitly, so the sweep covers legacy v2 (raw
/// payloads) and v3 (compressed) files with identical guarantees: every
/// fault kind at every VFS operation must reopen as exactly-old or
/// exactly-new, and every flipped payload byte must be caught by a CRC.
pub fn check_format(scenario: &Scenario, fault: CrashFault, format: FormatVersion) -> CrashReport {
    let mut report = CrashReport::default();
    let verify = match fault {
        CrashFault::None => Verify::Checksums,
        CrashFault::DropCrc => Verify::TrustDisk,
    };
    let dir = PathBuf::from("/crashdb");

    // Two generations of the database: the state before and after the
    // save under test.
    let old_n = (scenario.records.len() / 2)
        .max(1)
        .min(scenario.records.len());
    let old_store = store_of(scenario, old_n);
    let new_store = store_of(scenario, scenario.records.len());

    // Baseline: the old store saved through a clean in-memory disk.
    let base = FaultVfs::new(scenario.seed);
    save_store_with_format(&base, &old_store, &dir, &[], &[], format)
        .expect("baseline save on a clean FaultVfs");
    let ops_before = base.op_count();

    // The workload, restricted to requests every engine can answer
    // (cyclic path aggregations error on any backend, old or new).
    let reqs: Vec<QueryRequest> = requests(scenario)
        .into_iter()
        .filter(|r| new_store.execute(r).is_ok())
        .collect();

    // Expected answers, computed through the SAME disk engine so the
    // old-vs-new comparison is exact — no cross-engine float drift.
    let old_expected = {
        let f = Arc::new(base.fork());
        let disk = DiskGraphStore::open_with(&dir, CACHE_BYTES, f, Verify::Checksums)
            .expect("reopen baseline store");
        answers(&disk, &reqs).expect("answer workload on baseline store")
    };

    // Dry run of the save under test: counts the VFS operations it
    // performs — the crash sweep arms one fault at each of those indices.
    let clean = Arc::new(base.fork());
    save_store_with_format(clean.as_ref(), &new_store, &dir, &[], &[], format)
        .expect("dry-run save");
    let save_ops = clean.op_count() - ops_before;
    clean.reboot();
    let new_expected = {
        let disk = DiskGraphStore::open_with(&dir, CACHE_BYTES, clean.clone(), Verify::Checksums)
            .expect("reopen dry-run store");
        answers(&disk, &reqs).expect("answer workload on dry-run store")
    };

    // Phase 1: crash the save at every operation index, under every fault
    // kind. Reopening must find exactly the old or exactly the new store.
    for kind in KINDS {
        for k in 0..save_ops {
            report.crash_points += 1;
            let site = format!("{kind:?}@{k}");
            let f = Arc::new(base.fork());
            f.arm(kind, ops_before + k);
            let saved = save_store_with_format(f.as_ref(), &new_store, &dir, &[], &[], format);
            // Power loss right after the save call returns (or dies):
            // only fsynced state may survive.
            f.crash();
            f.reboot();
            // LostFsync breaks the write path's durability contract, so
            // a *detected* corruption is an acceptable outcome for it —
            // but never for the honest fault kinds.
            let lying = kind == VfsFault::LostFsync;
            let disk = match DiskGraphStore::open_with(&dir, CACHE_BYTES, f, verify) {
                Ok(d) => d,
                Err(e) if e.is_corruption() => {
                    if !lying {
                        report.fail(
                            site,
                            format!("store unopenable after crash (atomic publish broken): {e}"),
                        );
                    }
                    continue;
                }
                Err(e) => {
                    report.fail(
                        site,
                        format!("reopen failed with non-corruption error: {e}"),
                    );
                    continue;
                }
            };
            match answers(&disk, &reqs) {
                Err(e) if e.is_corruption() => {
                    if !lying {
                        report.fail(site, format!("payload corruption after crash reopen: {e}"));
                    }
                }
                Err(e) => {
                    report.fail(site, format!("query failed with non-corruption error: {e}"));
                }
                Ok(got) => {
                    let is_old = got == old_expected;
                    let is_new = got == new_expected;
                    if !is_old && !is_new {
                        report.fail(
                            site,
                            "torn state: answers match neither the old nor the new store".into(),
                        );
                    } else if is_old && !is_new && saved.is_ok() && !lying {
                        report.fail(
                            site,
                            "save reported success but the reopened store is the old one".into(),
                        );
                    }
                }
            }
        }
    }

    // Phase 2: corruption at rest. Flip one durable byte of the published
    // store per experiment; reopening + querying must either surface a
    // typed corruption error or answer exactly like the intact store.
    for (path, offset) in flip_targets(&clean, &dir) {
        report.flip_points += 1;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let site = format!("flip {name}@{offset}");
        let f = Arc::new(clean.fork());
        f.corrupt_at(&path, offset);
        let disk = match DiskGraphStore::open_with(&dir, CACHE_BYTES, f, verify) {
            Ok(d) => d,
            Err(e) if e.is_corruption() => continue, // caught at open: good
            Err(e) => {
                report.fail(
                    site,
                    format!("reopen failed with non-corruption error: {e}"),
                );
                continue;
            }
        };
        match answers(&disk, &reqs) {
            Err(e) if e.is_corruption() => {} // caught at fetch: good
            Err(e) => report.fail(site, format!("query failed with non-corruption error: {e}")),
            Ok(got) => {
                if got != new_expected {
                    report.fail(
                        site,
                        "flipped byte changed answers silently (checksum missed it)".into(),
                    );
                }
            }
        }
    }

    report
}

/// The WAL crash oracle: crash a live ingest — open, two delta commits,
/// one compaction — at every VFS operation under every fault kind, reboot,
/// and demand recovery lands on an exact commit boundary.
///
/// The committed states are `A0` (base only), `A1` (base + first batch)
/// and `A2` (base + both batches; compaction folds the same state, so it
/// adds no fourth answer set). A recovered store must answer the whole
/// workload like exactly one of them — structure exact, float aggregates
/// under [`TOLERANCE`], since merged and compacted read paths sum in
/// different orders — never between two frames — and,
/// for every honest fault kind, never *below* the highest commit whose
/// `commit()` call returned `Ok`: an acknowledged fsync is durable.
/// Recovery *above* the acked watermark is legal (a torn append whose
/// complete frame reached disk before the crash).
///
/// A second sweep flips durable WAL bytes at rest (the frame CRC must
/// roll replay back to a commit boundary, silently) and fold-sidecar
/// bytes (their checksum must surface a typed corruption error).
///
/// [`CrashFault::DropCrc`] only disables the *store payload* checksums on
/// reopen; WAL frames and sidecars are always self-checking, so this
/// oracle stays green under it — the differential bait lives in
/// [`check`].
pub fn check_wal(scenario: &Scenario, fault: CrashFault) -> CrashReport {
    let mut report = CrashReport::default();
    let verify = match fault {
        CrashFault::None => Verify::Checksums,
        CrashFault::DropCrc => Verify::TrustDisk,
    };
    let dir = PathBuf::from("/walcrashdb");

    let base_n = (scenario.records.len() / 2)
        .max(1)
        .min(scenario.records.len());
    let base_store = store_of(scenario, base_n);
    let (b1, b2) = wal_batches(scenario, base_n);

    // Baseline: the base generation saved through a clean disk. The WAL
    // does not exist yet — the sequence under test creates it.
    let base = FaultVfs::new(scenario.seed ^ 0x0a17);
    save_store_with(&base, &base_store, &dir).expect("baseline save on a clean FaultVfs");
    let ops_before = base.op_count();

    let reqs: Vec<QueryRequest> = requests(scenario)
        .into_iter()
        .filter(|r| base_store.execute(r).is_ok())
        .collect();

    // Committed states, each computed through a fresh *reopen* on a clean
    // fork — the exact code path recovery takes.
    let a0 = {
        let f = Arc::new(base.fork());
        let store = MvccStore::open_disk(&dir, CACHE_BYTES, f, Verify::Checksums)
            .expect("open baseline mvcc store");
        answers(&store, &reqs).expect("answer workload at A0")
    };
    let a1 = {
        let f = Arc::new(base.fork());
        {
            let store = MvccStore::open_disk(&dir, CACHE_BYTES, f.clone(), Verify::Checksums)
                .expect("open mvcc store for A1");
            store.commit(&b1).expect("clean commit b1");
        }
        let store = MvccStore::open_disk(&dir, CACHE_BYTES, f, Verify::Checksums)
            .expect("reopen mvcc store at A1");
        answers(&store, &reqs).expect("answer workload at A1")
    };
    // Dry run of the full sequence: its clean fork both yields A2 and
    // counts the VFS operations the crash sweep arms faults at.
    let clean = Arc::new(base.fork());
    {
        let store = MvccStore::open_disk(&dir, CACHE_BYTES, clean.clone(), Verify::Checksums)
            .expect("open mvcc store for dry run");
        store.commit(&b1).expect("clean commit b1");
        store.commit(&b2).expect("clean commit b2");
        store.compact().expect("clean compaction");
    }
    let seq_ops = clean.op_count() - ops_before;
    let a2 = {
        let store = MvccStore::open_disk(&dir, CACHE_BYTES, clean.clone(), Verify::Checksums)
            .expect("reopen mvcc store at A2");
        answers(&store, &reqs).expect("answer workload at A2")
    };

    // A pre-compaction end state whose WAL still holds both frames, for
    // the flip sweep (compaction truncates the log).
    let walful = Arc::new(base.fork());
    {
        let store = MvccStore::open_disk(&dir, CACHE_BYTES, walful.clone(), Verify::Checksums)
            .expect("open mvcc store for flip baseline");
        store.commit(&b1).expect("clean commit b1");
        store.commit(&b2).expect("clean commit b2");
    }

    // Phase 1: crash the live sequence at every operation index, under
    // every fault kind. The sequence stops at its first error (a real
    // writer that hits EIO is about to die anyway); only what recovery
    // finds matters.
    for kind in KINDS {
        for k in 0..seq_ops {
            report.crash_points += 1;
            let site = format!("wal {kind:?}@{k}");
            let f = Arc::new(base.fork());
            f.arm(kind, ops_before + k);
            let mut acked = 0usize;
            if let Ok(store) = MvccStore::open_disk(&dir, CACHE_BYTES, f.clone(), Verify::Checksums)
            {
                if store.commit(&b1).is_ok() {
                    acked = 1;
                    if store.commit(&b2).is_ok() {
                        acked = 2;
                        let _ = store.compact();
                    }
                }
            }
            f.crash();
            f.reboot();
            let lying = kind == VfsFault::LostFsync;
            let store = match MvccStore::open_disk(&dir, CACHE_BYTES, f, verify) {
                Ok(s) => s,
                Err(e) if e.is_corruption() => {
                    if !lying {
                        report.fail(site, format!("store unopenable after WAL crash: {e}"));
                    }
                    continue;
                }
                Err(e) => {
                    report.fail(
                        site,
                        format!("reopen failed with non-corruption error: {e}"),
                    );
                    continue;
                }
            };
            match answers(&store, &reqs) {
                Err(e) if e.is_corruption() => {
                    if !lying {
                        report.fail(site, format!("payload corruption after WAL crash: {e}"));
                    }
                }
                Err(e) => {
                    report.fail(site, format!("query failed with non-corruption error: {e}"));
                }
                Ok(got) => {
                    // Highest matching state wins, so indistinguishable
                    // batches (A1 == A2) never false-positive the
                    // durability check below.
                    let recovered = if answers_equiv(&got, &a2) {
                        Some(2)
                    } else if answers_equiv(&got, &a1) {
                        Some(1)
                    } else if answers_equiv(&got, &a0) {
                        Some(0)
                    } else {
                        None
                    };
                    match recovered {
                        None => {
                            report.fail(site, "torn state: answers match no commit boundary".into())
                        }
                        Some(j) if j < acked && !lying => report.fail(
                            site,
                            format!(
                                "acknowledged commit lost: recovered state A{j} \
                                 after {acked} acked commits"
                            ),
                        ),
                        _ => {}
                    }
                }
            }
        }
    }

    // Phase 2a: flip durable WAL bytes at rest. Frame CRCs must roll
    // replay back to a commit boundary — silently, never a torn state.
    let wal_path = dir.join(graphbi_columnstore::wal::WAL_FILE);
    let wal_bytes = walful.read(&wal_path).map(|b| b.len()).unwrap_or(0);
    for offset in sampled_offsets(wal_bytes, 96) {
        report.flip_points += 1;
        let site = format!("flip wal.gbl@{offset}");
        let f = Arc::new(walful.fork());
        f.corrupt_at(&wal_path, offset);
        let store = match MvccStore::open_disk(&dir, CACHE_BYTES, f, verify) {
            Ok(s) => s,
            Err(e) if e.is_corruption() => continue, // caught at open: good
            Err(e) => {
                report.fail(
                    site,
                    format!("reopen failed with non-corruption error: {e}"),
                );
                continue;
            }
        };
        match answers(&store, &reqs) {
            Err(e) if e.is_corruption() => {} // caught at fetch: good
            Err(e) => report.fail(site, format!("query failed with non-corruption error: {e}")),
            Ok(got) => {
                if !answers_equiv(&got, &a0)
                    && !answers_equiv(&got, &a1)
                    && !answers_equiv(&got, &a2)
                {
                    report.fail(
                        site,
                        "flipped WAL byte produced a state off every commit boundary".into(),
                    );
                }
            }
        }
    }

    // Phase 2b: flip every byte of the published fold sidecar (the
    // watermark that makes stale WAL frames inert after compaction). Its
    // checksum must surface a typed corruption error — a silently wrong
    // watermark would replay folded commits twice.
    let mut files = clean.list(&dir).unwrap_or_default();
    files.sort();
    for path in files {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        if !name.contains("wal_fold") {
            continue;
        }
        let len = clean.read(&path).map(|b| b.len()).unwrap_or(0);
        for offset in 0..len {
            report.flip_points += 1;
            let site = format!("flip {name}@{offset}");
            let f = Arc::new(clean.fork());
            f.corrupt_at(&path, offset);
            match MvccStore::open_disk(&dir, CACHE_BYTES, f, verify) {
                Err(e) if e.is_corruption() => {} // caught: good
                Err(e) => report.fail(
                    site,
                    format!("reopen failed with non-corruption error: {e}"),
                ),
                Ok(store) => match answers(&store, &reqs) {
                    Err(e) if e.is_corruption() => {}
                    Err(e) => {
                        report.fail(site, format!("query failed with non-corruption error: {e}"));
                    }
                    Ok(got) => {
                        if !answers_equiv(&got, &a2) {
                            report.fail(
                                site,
                                "flipped fold-sidecar byte changed answers silently".into(),
                            );
                        }
                    }
                },
            }
        }
    }

    report
}

/// Tolerance-aware equivalence of two workload answer sets. Structure
/// (record sets, match bitmaps, path counts) must be identical; float
/// measures and aggregates compare under the oracle's relative
/// [`TOLERANCE`]. A recovered store answers through the merged
/// base-plus-delta read path while the committed states may have been
/// compacted into a pure base — the summation orders differ, and a
/// last-ULP float wobble is not a durability violation.
fn answers_equiv(a: &[Response], b: &[Response]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Response::Records(p), Response::Records(q)) => p.diff(q, TOLERANCE).is_none(),
            (Response::Aggregates(p), Response::Aggregates(q)) => p.diff(q, TOLERANCE).is_none(),
            _ => x == y,
        })
}

/// The first two commit batches of the scenario's ingest stream (see
/// [`delta_batches`]), falling back to synthetic single-insert batches so
/// shrunken scenarios still exercise two commits.
fn wal_batches(scenario: &Scenario, base_n: usize) -> (Vec<DeltaOp>, Vec<DeltaOp>) {
    let mut batches = delta_batches(scenario, base_n).into_iter();
    let fallback = |measure: f64| {
        let mut b = RecordBuilder::new();
        if scenario.universe.edge_count() > 0 {
            b.add(graphbi::EdgeId(0), measure);
        }
        vec![DeltaOp::Insert(b.build())]
    };
    let b1 = batches.next().unwrap_or_else(|| fallback(1.0));
    let b2 = batches.next().unwrap_or_else(|| fallback(2.0));
    (b1, b2)
}

/// Up to `max` distinct byte offsets spread evenly over `len` bytes
/// (all of them when the file is small).
fn sampled_offsets(len: usize, max: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    if len <= max {
        return (0..len).collect();
    }
    let mut out: Vec<usize> = (0..max).map(|i| i * len / max).collect();
    out.dedup();
    out
}

/// The scenario's store over its first `n` records, views advised exactly
/// like the differential matrix does.
fn store_of(scenario: &Scenario, n: usize) -> GraphStore {
    let mut store = GraphStore::load(scenario.universe.clone(), &scenario.records[..n]);
    if scenario.view_budget > 0 {
        store.advise_views(&scenario.queries, scenario.view_budget);
    }
    if scenario.agg_view_budget > 0 {
        let _ = store.advise_agg_views(&scenario.queries, AggFn::Sum, scenario.agg_view_budget);
    }
    store
}

/// The scenario's whole workload as serial requests.
fn requests(scenario: &Scenario) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for q in &scenario.queries {
        reqs.push(QueryRequest::new(q.clone()));
    }
    for e in &scenario.exprs {
        reqs.push(QueryRequest::expr(e.clone()));
    }
    for a in &scenario.aggs {
        reqs.push(QueryRequest::aggregate(a.clone()));
    }
    reqs
}

/// Answers the workload through one backend, first error wins.
fn answers<S: Session>(
    store: &S,
    reqs: &[QueryRequest],
) -> Result<Vec<Response>, graphbi::SessionError> {
    reqs.iter()
        .map(|r| store.execute(r).map(|(resp, _)| resp))
        .collect()
}

/// Byte offsets to corrupt, chosen to land inside checksummed payloads:
/// measure values and bitmap bytes of the partition files (the
/// silent-wrong-answer bait when checksums are off), plus one tail byte
/// of every other file (manifest, views, sidecars — their checksums are
/// always on, so those must surface as typed errors).
///
/// Understands both partition layouts: v2
/// (`[ncols][(blen u64, vlen u64, crc, crc)×n][dir_crc][payloads]`) and v3
/// (`[magic][ncols][wb][wv][packed blens][packed vlens][crc pairs]
/// [dir_crc][payloads]`). For a v3 file the first values byte is the codec
/// tag — flipping it must surface as a *typed* error even with checksums
/// off — so each column also gets an interior flip (mid-payload, inside a
/// raw f64 or the dictionary) that stays silent under
/// [`Verify::TrustDisk`]: the `DropCrc` bait the teeth test needs.
fn flip_targets(vfs: &FaultVfs, dir: &Path) -> Vec<(PathBuf, usize)> {
    /// Values-payload flips per partition file — enough that several land
    /// in columns the workload actually fetches.
    const FLIPS_PER_PART: usize = 48;

    let mut out = Vec::new();
    let mut files = vfs.list(dir).unwrap_or_default();
    files.sort();
    for path in files {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let Ok(bytes) = vfs.read(&path) else { continue };
        if bytes.is_empty() {
            continue;
        }
        if !name.contains("-part_") {
            out.push((path, bytes.len() - 1));
            continue;
        }
        let Some((payload_start, lens)) = parse_part_header(&bytes) else {
            continue;
        };
        let mut off = payload_start;
        let mut flips = 0;
        for (c, &(bitmap_len, values_len)) in lens.iter().enumerate() {
            if flips < FLIPS_PER_PART {
                if values_len > 0 && off + bitmap_len < bytes.len() {
                    // First byte of the column's measure values (the codec
                    // tag on v3 files).
                    out.push((path.clone(), off + bitmap_len));
                    flips += 1;
                    // An interior byte of the values payload: inside a raw
                    // f64 (or the dictionary) where no structural check
                    // can notice — only the CRC stands between this flip
                    // and a silently wrong measure.
                    let interior = off + bitmap_len + (values_len / 2).max(1);
                    if c % 2 == 0 && values_len > 1 && interior < bytes.len() {
                        out.push((path.clone(), interior));
                        flips += 1;
                    }
                } else if bitmap_len > 0 && off < bytes.len() {
                    // Columns without measures: flip structure instead.
                    out.push((path.clone(), off));
                    flips += 1;
                }
            }
            off += bitmap_len + values_len;
        }
    }
    out
}

/// Parses either partition-file header, returning the payload start offset
/// and each column's `(bitmap_len, values_len)`.
fn parse_part_header(bytes: &[u8]) -> Option<(usize, Vec<(usize, usize)>)> {
    use graphbi_columnstore::codec::PackedInts;

    if bytes.len() < 8 {
        return None;
    }
    let head = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if head == graphbi_columnstore::persist::PART_MAGIC_V3 {
        let n = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        if bytes.len() < 10 {
            return None;
        }
        let (wb, wv) = (u32::from(bytes[8]), u32::from(bytes[9]));
        let bl_bytes = PackedInts::byte_len(n, wb);
        let vl_bytes = PackedInts::byte_len(n, wv);
        let header = 10 + bl_bytes + vl_bytes + n * 8;
        if bytes.len() < header + 4 {
            return None;
        }
        let blens = PackedInts::from_bytes(&bytes[10..10 + bl_bytes], wb, n)?;
        let vlens = PackedInts::from_bytes(&bytes[10 + bl_bytes..10 + bl_bytes + vl_bytes], wv, n)?;
        let lens = (0..n)
            .map(|i| (blens.get(i) as usize, vlens.get(i) as usize))
            .collect();
        return Some((header + 4, lens));
    }
    let n = head as usize;
    let header = 4 + n * 24;
    if bytes.len() < header + 4 {
        return None;
    }
    let le64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
    let lens = (0..n)
        .map(|c| (le64(4 + c * 24), le64(4 + c * 24 + 8)))
        .collect();
    Some((header + 4, lens))
}
