//! The crash-consistency oracle: save through a faulty disk, crash at
//! every operation, reopen, and demand the store is all-old or all-new.
//!
//! One scenario becomes two databases — the *old* store (the first half of
//! the records) and the *new* store (all of them). The old store is saved
//! through a clean [`FaultVfs`]; then, for every fault kind and every VFS
//! operation index the new save performs, a fresh fork of that filesystem
//! is crashed at exactly that point, rebooted, and reopened. The reopened
//! store must answer the whole workload exactly like the old store or
//! exactly like the new one — anything in between is a torn state, the bug
//! this oracle exists to catch. A second sweep flips individual durable
//! bytes of the published store ("corruption at rest") and demands every
//! flip either surfaces as a typed corruption error or provably changes
//! nothing.
//!
//! [`CrashFault::DropCrc`] reopens with [`Verify::TrustDisk`] — the
//! deliberately-broken configuration that proves the harness has teeth:
//! with payload checksums off, some flipped byte must slip through and
//! change an answer, which this oracle reports as a failure the fuzzer
//! then shrinks.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use graphbi::disk::{save_store_with, DiskGraphStore};
use graphbi::{AggFn, GraphStore, QueryRequest, Response, Session};
use graphbi_columnstore::vfs::Fault as VfsFault;
use graphbi_columnstore::{FaultVfs, Verify, Vfs};

use crate::scenario::Scenario;

/// Column-cache budget for reopened stores (matches the differential
/// matrix: small enough to exercise eviction).
const CACHE_BYTES: usize = 64 << 10;

/// Fault-kind sweep order: every kind is armed at every operation index
/// of the save under test.
const KINDS: [VfsFault; 6] = [
    VfsFault::Crash,
    VfsFault::TornWrite,
    VfsFault::Enospc,
    VfsFault::ShortRead,
    VfsFault::BitFlip,
    VfsFault::LostFsync,
];

/// Intentional misconfiguration of the store under test, for validating
/// that the crash oracle catches real durability bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashFault {
    /// No fault: the store under test, checksums on.
    None,
    /// Reopen every store with [`Verify::TrustDisk`] — payload checksums
    /// disabled. The bit-flip sweep must catch this.
    DropCrc,
}

/// One violated durability guarantee.
#[derive(Debug)]
pub struct CrashFailure {
    /// Where it happened (`TornWrite@17`, `flip g…-part_0000.gbi@412`, …).
    pub site: String,
    /// What guarantee broke.
    pub detail: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.site, self.detail)
    }
}

/// The crash oracle's verdict on one scenario.
#[derive(Debug, Default)]
pub struct CrashReport {
    /// Every broken guarantee (empty = scenario passed).
    pub failures: Vec<CrashFailure>,
    /// Crash experiments run (fault kinds × save operation indices).
    pub crash_points: u64,
    /// Corruption-at-rest experiments run (individual byte flips).
    pub flip_points: u64,
}

impl CrashReport {
    /// True when every crash point reopened consistently and every flip
    /// was caught or provably harmless.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn fail(&mut self, site: String, detail: String) {
        self.failures.push(CrashFailure { site, detail });
    }
}

/// Runs the full crash-consistency sweep on one scenario.
pub fn check(scenario: &Scenario, fault: CrashFault) -> CrashReport {
    let mut report = CrashReport::default();
    let verify = match fault {
        CrashFault::None => Verify::Checksums,
        CrashFault::DropCrc => Verify::TrustDisk,
    };
    let dir = PathBuf::from("/crashdb");

    // Two generations of the database: the state before and after the
    // save under test.
    let old_n = (scenario.records.len() / 2)
        .max(1)
        .min(scenario.records.len());
    let old_store = store_of(scenario, old_n);
    let new_store = store_of(scenario, scenario.records.len());

    // Baseline: the old store saved through a clean in-memory disk.
    let base = FaultVfs::new(scenario.seed);
    save_store_with(&base, &old_store, &dir).expect("baseline save on a clean FaultVfs");
    let ops_before = base.op_count();

    // The workload, restricted to requests every engine can answer
    // (cyclic path aggregations error on any backend, old or new).
    let reqs: Vec<QueryRequest> = requests(scenario)
        .into_iter()
        .filter(|r| new_store.execute(r).is_ok())
        .collect();

    // Expected answers, computed through the SAME disk engine so the
    // old-vs-new comparison is exact — no cross-engine float drift.
    let old_expected = {
        let f = Arc::new(base.fork());
        let disk = DiskGraphStore::open_with(&dir, CACHE_BYTES, f, Verify::Checksums)
            .expect("reopen baseline store");
        answers(&disk, &reqs).expect("answer workload on baseline store")
    };

    // Dry run of the save under test: counts the VFS operations it
    // performs — the crash sweep arms one fault at each of those indices.
    let clean = Arc::new(base.fork());
    save_store_with(clean.as_ref(), &new_store, &dir).expect("dry-run save");
    let save_ops = clean.op_count() - ops_before;
    clean.reboot();
    let new_expected = {
        let disk = DiskGraphStore::open_with(&dir, CACHE_BYTES, clean.clone(), Verify::Checksums)
            .expect("reopen dry-run store");
        answers(&disk, &reqs).expect("answer workload on dry-run store")
    };

    // Phase 1: crash the save at every operation index, under every fault
    // kind. Reopening must find exactly the old or exactly the new store.
    for kind in KINDS {
        for k in 0..save_ops {
            report.crash_points += 1;
            let site = format!("{kind:?}@{k}");
            let f = Arc::new(base.fork());
            f.arm(kind, ops_before + k);
            let saved = save_store_with(f.as_ref(), &new_store, &dir);
            // Power loss right after the save call returns (or dies):
            // only fsynced state may survive.
            f.crash();
            f.reboot();
            // LostFsync breaks the write path's durability contract, so
            // a *detected* corruption is an acceptable outcome for it —
            // but never for the honest fault kinds.
            let lying = kind == VfsFault::LostFsync;
            let disk = match DiskGraphStore::open_with(&dir, CACHE_BYTES, f, verify) {
                Ok(d) => d,
                Err(e) if e.is_corruption() => {
                    if !lying {
                        report.fail(
                            site,
                            format!("store unopenable after crash (atomic publish broken): {e}"),
                        );
                    }
                    continue;
                }
                Err(e) => {
                    report.fail(
                        site,
                        format!("reopen failed with non-corruption error: {e}"),
                    );
                    continue;
                }
            };
            match answers(&disk, &reqs) {
                Err(e) if e.is_corruption() => {
                    if !lying {
                        report.fail(site, format!("payload corruption after crash reopen: {e}"));
                    }
                }
                Err(e) => {
                    report.fail(site, format!("query failed with non-corruption error: {e}"));
                }
                Ok(got) => {
                    let is_old = got == old_expected;
                    let is_new = got == new_expected;
                    if !is_old && !is_new {
                        report.fail(
                            site,
                            "torn state: answers match neither the old nor the new store".into(),
                        );
                    } else if is_old && !is_new && saved.is_ok() && !lying {
                        report.fail(
                            site,
                            "save reported success but the reopened store is the old one".into(),
                        );
                    }
                }
            }
        }
    }

    // Phase 2: corruption at rest. Flip one durable byte of the published
    // store per experiment; reopening + querying must either surface a
    // typed corruption error or answer exactly like the intact store.
    for (path, offset) in flip_targets(&clean, &dir) {
        report.flip_points += 1;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let site = format!("flip {name}@{offset}");
        let f = Arc::new(clean.fork());
        f.corrupt_at(&path, offset);
        let disk = match DiskGraphStore::open_with(&dir, CACHE_BYTES, f, verify) {
            Ok(d) => d,
            Err(e) if e.is_corruption() => continue, // caught at open: good
            Err(e) => {
                report.fail(
                    site,
                    format!("reopen failed with non-corruption error: {e}"),
                );
                continue;
            }
        };
        match answers(&disk, &reqs) {
            Err(e) if e.is_corruption() => {} // caught at fetch: good
            Err(e) => report.fail(site, format!("query failed with non-corruption error: {e}")),
            Ok(got) => {
                if got != new_expected {
                    report.fail(
                        site,
                        "flipped byte changed answers silently (checksum missed it)".into(),
                    );
                }
            }
        }
    }

    report
}

/// The scenario's store over its first `n` records, views advised exactly
/// like the differential matrix does.
fn store_of(scenario: &Scenario, n: usize) -> GraphStore {
    let mut store = GraphStore::load(scenario.universe.clone(), &scenario.records[..n]);
    if scenario.view_budget > 0 {
        store.advise_views(&scenario.queries, scenario.view_budget);
    }
    if scenario.agg_view_budget > 0 {
        let _ = store.advise_agg_views(&scenario.queries, AggFn::Sum, scenario.agg_view_budget);
    }
    store
}

/// The scenario's whole workload as serial requests.
fn requests(scenario: &Scenario) -> Vec<QueryRequest> {
    let mut reqs = Vec::new();
    for q in &scenario.queries {
        reqs.push(QueryRequest::new(q.clone()));
    }
    for e in &scenario.exprs {
        reqs.push(QueryRequest::expr(e.clone()));
    }
    for a in &scenario.aggs {
        reqs.push(QueryRequest::aggregate(a.clone()));
    }
    reqs
}

/// Answers the workload through one backend, first error wins.
fn answers(
    store: &DiskGraphStore,
    reqs: &[QueryRequest],
) -> Result<Vec<Response>, graphbi::SessionError> {
    reqs.iter()
        .map(|r| store.execute(r).map(|(resp, _)| resp))
        .collect()
}

/// Byte offsets to corrupt, chosen to land inside checksummed payloads:
/// measure values and bitmap bytes of the partition files (the
/// silent-wrong-answer bait when checksums are off), plus one tail byte
/// of every other file (manifest, views, sidecars — their checksums are
/// always on, so those must surface as typed errors).
fn flip_targets(vfs: &FaultVfs, dir: &Path) -> Vec<(PathBuf, usize)> {
    /// Values-payload flips per partition file — enough that several land
    /// in columns the workload actually fetches.
    const FLIPS_PER_PART: usize = 32;

    let mut out = Vec::new();
    let mut files = vfs.list(dir).unwrap_or_default();
    files.sort();
    for path in files {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let Ok(bytes) = vfs.read(&path) else { continue };
        if bytes.is_empty() {
            continue;
        }
        if !name.contains("-part_") {
            out.push((path, bytes.len() - 1));
            continue;
        }
        // Partition file: walk the directory to find payload offsets.
        // Layout: [ncols u32][(bitmap_len u64, values_len u64, crc, crc)
        // × n][dir_crc u32][payloads].
        if bytes.len() < 4 {
            continue;
        }
        let le64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
        let ncols = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let header = 4 + ncols * 24;
        if bytes.len() < header + 4 {
            continue;
        }
        let mut off = header + 4;
        let mut flips = 0;
        for c in 0..ncols {
            let entry = 4 + c * 24;
            let bitmap_len = le64(entry);
            let values_len = le64(entry + 8);
            if flips < FLIPS_PER_PART {
                if values_len > 0 && off + bitmap_len < bytes.len() {
                    // First byte of the column's measure values.
                    out.push((path.clone(), off + bitmap_len));
                    flips += 1;
                } else if bitmap_len > 0 && off < bytes.len() {
                    // Columns without measures: flip structure instead.
                    out.push((path.clone(), off));
                    flips += 1;
                }
            }
            off += bitmap_len + values_len;
        }
    }
    out
}
