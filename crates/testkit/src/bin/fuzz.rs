//! Deterministic differential & crash-consistency fuzzer.
//!
//! ```text
//! fuzz --seed 42 --iters 200 [--fault flip-andnot]    # differential mode
//! fuzz --crash --seed 42 --iters 3 [--fault drop-crc] # crash mode
//! ```
//!
//! Differential mode: iteration `i` checks the scenario of seed `seed + i`
//! through the full engine matrix. Crash mode: the same scenario is saved
//! through the fault-injecting VFS, crashed at every operation index under
//! every fault kind, rebooted and reopened — the store must come back as
//! exactly the old or exactly the new database, and flipped-at-rest bytes
//! must be caught by checksums (`--fault drop-crc` disables verification
//! to prove the harness notices). On a failure, the scenario is shrunk to
//! a minimal reproducer and the replay seed is printed; the process exits
//! non-zero.

use graphbi_testkit::{check, crash, shrink, shrink_with, CrashFault, Fault, Scenario};

struct Args {
    seed: u64,
    iters: u64,
    crash: bool,
    fault: Fault,
    crash_fault: CrashFault,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0,
        iters: 100,
        crash: false,
        fault: Fault::None,
        crash_fault: CrashFault::None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                args.iters = v.parse().map_err(|_| format!("bad --iters {v:?}"))?;
            }
            "--crash" => args.crash = true,
            "--fault" => match it.next().as_deref() {
                Some("flip-andnot") => args.fault = Fault::FlipAndNot,
                Some("drop-crc") => args.crash_fault = CrashFault::DropCrc,
                Some("none") => {
                    args.fault = Fault::None;
                    args.crash_fault = CrashFault::None;
                }
                other => return Err(format!("unknown --fault {other:?}")),
            },
            "--help" | "-h" => {
                println!(
                    "usage: fuzz --seed N --iters M [--fault flip-andnot|none]\n       \
                     fuzz --crash --seed N --iters M [--fault drop-crc|none]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.crash && args.fault != Fault::None {
        return Err("--fault flip-andnot is a differential-mode fault".into());
    }
    if !args.crash && args.crash_fault != CrashFault::None {
        return Err("--fault drop-crc needs --crash".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    };
    if args.crash {
        crash_mode(&args);
    } else {
        differential_mode(&args);
    }
}

/// Crash mode: every scenario is a full crash-point × fault-kind sweep
/// plus the corruption-at-rest flips — once over the save path
/// ([`crash::check`]) and once over the live ingest path
/// ([`crash::check_wal`]: open, commit, commit, compact).
fn crash_mode(args: &Args) {
    let mut failures = 0u64;
    let mut crash_points = 0u64;
    let mut flip_points = 0u64;
    for i in 0..args.iters {
        let seed = args.seed.wrapping_add(i);
        let scenario = Scenario::generate(seed);
        let mut report = crash::check(&scenario, args.crash_fault);
        let wal_report = crash::check_wal(&scenario, args.crash_fault);
        report.crash_points += wal_report.crash_points;
        report.flip_points += wal_report.flip_points;
        report.failures.extend(wal_report.failures);
        crash_points += report.crash_points;
        flip_points += report.flip_points;
        if report.passed() {
            println!(
                "fuzz: seed {seed} consistent at {} crash points, {} byte flips",
                report.crash_points, report.flip_points,
            );
            continue;
        }

        failures += 1;
        println!(
            "fuzz: CRASH-CONSISTENCY FAILURE at seed {seed} ({} broken guarantees) — shrinking…",
            report.failures.len()
        );
        let crash_fault = args.crash_fault;
        let broken = |s: &Scenario| {
            !crash::check(s, crash_fault).passed() || !crash::check_wal(s, crash_fault).passed()
        };
        let minimized = shrink_with(&scenario, broken);
        let small = &minimized.scenario;
        let mut small_report = crash::check(small, crash_fault);
        small_report
            .failures
            .extend(crash::check_wal(small, crash_fault).failures);
        println!(
            "fuzz: minimal reproducer: seed {seed}, {} records (from {}), \
             {} queries / {} exprs / {} aggs ({} sweeps spent)",
            small.records.len(),
            scenario.records.len(),
            small.queries.len(),
            small.exprs.len(),
            small.aggs.len(),
            minimized.evaluations,
        );
        for f in small_report.failures.iter().take(5) {
            println!("fuzz:   {f}");
        }
        println!("fuzz: replay with: fuzz --crash --seed {seed} --iters 1");
    }

    if failures > 0 {
        println!("fuzz: {failures}/{} scenarios FAILED", args.iters);
        std::process::exit(1);
    }
    println!(
        "fuzz: all {} scenarios crash-consistent ({crash_points} crash points, \
         {flip_points} byte flips, seeds {}..{})",
        args.iters,
        args.seed,
        args.seed.wrapping_add(args.iters),
    );
}

fn differential_mode(args: &Args) {
    let mut failures = 0u64;
    let mut checks = 0u64;
    for i in 0..args.iters {
        let seed = args.seed.wrapping_add(i);
        let scenario = Scenario::generate(seed);
        let report = check(&scenario, args.fault);
        checks += report.checks;
        if report.passed() {
            if (i + 1) % 25 == 0 {
                println!(
                    "fuzz: {}/{} scenarios ok ({checks} checks so far)",
                    i + 1,
                    args.iters,
                );
            }
            continue;
        }

        failures += 1;
        println!(
            "fuzz: FAILURE at seed {seed} ({} discrepancies) — shrinking…",
            report.discrepancies.len()
        );
        let minimized = shrink(&scenario, args.fault);
        let small = &minimized.scenario;
        let small_report = check(small, args.fault);
        println!(
            "fuzz: minimal reproducer: seed {seed}, {} records (from {}), \
             {} queries / {} exprs / {} aggs ({} oracle runs spent)",
            small.records.len(),
            scenario.records.len(),
            small.queries.len(),
            small.exprs.len(),
            small.aggs.len(),
            minimized.evaluations,
        );
        for d in small_report.discrepancies.iter().take(5) {
            println!("fuzz:   {d}");
        }
        println!("fuzz: replay with: fuzz --seed {seed} --iters 1");
    }

    if failures > 0 {
        println!("fuzz: {failures}/{} scenarios FAILED", args.iters);
        std::process::exit(1);
    }
    println!(
        "fuzz: all {} scenarios passed ({checks} checks, seeds {}..{})",
        args.iters,
        args.seed,
        args.seed.wrapping_add(args.iters),
    );
}
