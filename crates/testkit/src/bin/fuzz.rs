//! Deterministic differential fuzzer.
//!
//! ```text
//! fuzz --seed 42 --iters 200 [--fault flip-andnot]
//! ```
//!
//! Iteration `i` checks the scenario of seed `seed + i` through the full
//! engine matrix. On a failure, the scenario is shrunk to a minimal
//! reproducer and the replay seed is printed; the process exits non-zero.

use graphbi_testkit::{check, shrink, Fault, Scenario};

struct Args {
    seed: u64,
    iters: u64,
    fault: Fault,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0,
        iters: 100,
        fault: Fault::None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                args.iters = v.parse().map_err(|_| format!("bad --iters {v:?}"))?;
            }
            "--fault" => match it.next().as_deref() {
                Some("flip-andnot") => args.fault = Fault::FlipAndNot,
                Some("none") => args.fault = Fault::None,
                other => return Err(format!("unknown --fault {other:?}")),
            },
            "--help" | "-h" => {
                println!("usage: fuzz --seed N --iters M [--fault flip-andnot|none]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    };

    let mut failures = 0u64;
    let mut checks = 0u64;
    for i in 0..args.iters {
        let seed = args.seed.wrapping_add(i);
        let scenario = Scenario::generate(seed);
        let report = check(&scenario, args.fault);
        checks += report.checks;
        if report.passed() {
            if (i + 1) % 25 == 0 {
                println!(
                    "fuzz: {}/{} scenarios ok ({checks} checks so far)",
                    i + 1,
                    args.iters,
                );
            }
            continue;
        }

        failures += 1;
        println!(
            "fuzz: FAILURE at seed {seed} ({} discrepancies) — shrinking…",
            report.discrepancies.len()
        );
        let minimized = shrink(&scenario, args.fault);
        let small = &minimized.scenario;
        let small_report = check(small, args.fault);
        println!(
            "fuzz: minimal reproducer: seed {seed}, {} records (from {}), \
             {} queries / {} exprs / {} aggs ({} oracle runs spent)",
            small.records.len(),
            scenario.records.len(),
            small.queries.len(),
            small.exprs.len(),
            small.aggs.len(),
            minimized.evaluations,
        );
        for d in small_report.discrepancies.iter().take(5) {
            println!("fuzz:   {d}");
        }
        println!("fuzz: replay with: fuzz --seed {seed} --iters 1");
    }

    if failures > 0 {
        println!("fuzz: {failures}/{} scenarios FAILED", args.iters);
        std::process::exit(1);
    }
    println!(
        "fuzz: all {} scenarios passed ({checks} checks, seeds {}..{})",
        args.iters,
        args.seed,
        args.seed.wrapping_add(args.iters),
    );
}
