//! Seeded scenario generation.
//!
//! A [`Scenario`] is everything one differential round needs: a record
//! collection, a query workload, logical query expressions, path
//! aggregations and a view-advisory budget — all a pure function of one
//! `u64` seed, so any failure replays from its seed alone.

use graphbi::{AggFn, GraphQuery, PathAggQuery, QueryExpr, Universe};
use graphbi_graph::GraphRecord;
use graphbi_workload::queries::{QueryDistribution, QueryShapeKind, QuerySpec};
use graphbi_workload::{BaseKind, Dataset, DatasetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One self-contained differential-testing input.
pub struct Scenario {
    /// The seed this scenario was generated from (replay handle).
    pub seed: u64,
    /// Shared naming scheme.
    pub universe: Universe,
    /// The record collection under test.
    pub records: Vec<GraphRecord>,
    /// Plain graph queries, run through every engine.
    pub queries: Vec<GraphQuery>,
    /// AND/OR/ANDNOT trees over sampled queries.
    pub exprs: Vec<QueryExpr>,
    /// Path aggregations (columnar engines + reference).
    pub aggs: Vec<PathAggQuery>,
    /// Graph-view advisory budget for the view-aware plans.
    pub view_budget: usize,
    /// Aggregate-view advisory budget.
    pub agg_view_budget: usize,
}

impl Scenario {
    /// Generates the scenario of `seed`. Sizes are kept small (tens to a
    /// few hundred records) so a fuzz iteration stays in the millisecond
    /// range while still covering both base-graph families, both query
    /// shapes and both workload distributions.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce0_a11a);
        let n_records = rng.gen_range(40..240);
        let edge_domain = rng.gen_range(80..400);
        let kind = if rng.gen_bool(0.5) {
            BaseKind::RoadNetwork
        } else {
            BaseKind::P2pNetwork
        };
        let min_edges = rng.gen_range(4..20);
        let spec = DatasetSpec {
            kind,
            n_records,
            edge_domain,
            min_edges,
            max_edges: min_edges + rng.gen_range(5usize..40),
            seed: rng.gen(),
        };
        let dataset = Dataset::synthesize(&spec);

        let qspec = QuerySpec {
            count: rng.gen_range(6..12),
            min_len: 1,
            max_len: rng.gen_range(3..7),
            distribution: if rng.gen_bool(0.5) {
                QueryDistribution::Uniform
            } else {
                QueryDistribution::Zipf {
                    alpha: 1.0,
                    pool: 4,
                }
            },
            shape: if rng.gen_bool(0.7) {
                QueryShapeKind::SinglePath
            } else {
                QueryShapeKind::MultiPath
            },
            seed: rng.gen(),
        };
        let queries = dataset.queries(&qspec);

        let n_exprs = rng.gen_range(3..7);
        let exprs = (0..n_exprs)
            .map(|_| random_expr(&queries, 0, &mut rng))
            .collect();

        // Aggregations want path-shaped patterns; reuse the workload's
        // generator with the single-path shape forced.
        let agg_patterns = dataset.queries(&QuerySpec {
            count: rng.gen_range(3..6),
            shape: QueryShapeKind::SinglePath,
            seed: rng.gen(),
            ..qspec
        });
        let aggs = agg_patterns
            .into_iter()
            .map(|q| {
                let func = match rng.gen_range(0..5) {
                    0 => AggFn::Sum,
                    1 => AggFn::Min,
                    2 => AggFn::Max,
                    3 => AggFn::Avg,
                    _ => AggFn::Count,
                };
                PathAggQuery::new(q, func)
            })
            .collect();

        Scenario {
            seed,
            universe: dataset.universe,
            records: dataset.records,
            queries,
            exprs,
            aggs,
            view_budget: rng.gen_range(0..8),
            agg_view_budget: rng.gen_range(0..6),
        }
    }

    /// A copy of this scenario restricted to the record subset `keep`
    /// (indices into `records`) — the shrinker's reduction step.
    pub fn with_records(&self, keep: &[usize]) -> Scenario {
        Scenario {
            seed: self.seed,
            universe: self.universe.clone(),
            records: keep.iter().map(|&i| self.records[i].clone()).collect(),
            queries: self.queries.clone(),
            exprs: self.exprs.clone(),
            aggs: self.aggs.clone(),
            view_budget: self.view_budget,
            agg_view_budget: self.agg_view_budget,
        }
    }

    /// A copy with only the selected workload items (for minimizing the
    /// failing query/expression/aggregation).
    pub fn with_workload(
        &self,
        queries: Vec<GraphQuery>,
        exprs: Vec<QueryExpr>,
        aggs: Vec<PathAggQuery>,
    ) -> Scenario {
        Scenario {
            seed: self.seed,
            universe: self.universe.clone(),
            records: self.records.clone(),
            queries,
            exprs,
            aggs,
            view_budget: self.view_budget,
            agg_view_budget: self.agg_view_budget,
        }
    }

    /// Total workload items across all three families.
    pub fn workload_len(&self) -> usize {
        self.queries.len() + self.exprs.len() + self.aggs.len()
    }
}

/// A random AND/OR/ANDNOT tree of depth ≤ 2 over the scenario's queries.
fn random_expr(queries: &[GraphQuery], depth: u32, rng: &mut StdRng) -> QueryExpr {
    if depth >= 2 || queries.is_empty() || rng.gen_bool(0.35) {
        let q = if queries.is_empty() {
            GraphQuery::from_edges(Vec::new())
        } else {
            queries[rng.gen_range(0..queries.len())].clone()
        };
        return QueryExpr::Atom(q);
    }
    let a = random_expr(queries, depth + 1, rng);
    let b = random_expr(queries, depth + 1, rng);
    match rng.gen_range(0..3) {
        0 => QueryExpr::and(a, b),
        1 => QueryExpr::or(a, b),
        _ => QueryExpr::and_not(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let a = Scenario::generate(99);
        let b = Scenario::generate(99);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.exprs, b.exprs);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.edges(), y.edges());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::generate(1);
        let b = Scenario::generate(2);
        assert!(
            a.records.len() != b.records.len() || a.queries != b.queries,
            "seeds 1 and 2 produced identical scenarios"
        );
    }

    #[test]
    fn restriction_keeps_selected_records() {
        let s = Scenario::generate(7);
        let keep = [0usize, 2, 4];
        let r = s.with_records(&keep);
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[1].edges(), s.records[2].edges());
        assert_eq!(r.queries, s.queries);
    }
}
