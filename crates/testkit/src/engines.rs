//! The engine × plan-mode × backend matrix.
//!
//! One scenario fans out to:
//!
//! * `columnar-mem-{views,oblivious}` — the in-memory [`GraphStore`], with
//!   and without view rewriting, sharing one store (and one view catalog);
//! * `columnar-disk-{views,oblivious}` — the same database saved and
//!   reopened as a [`DiskGraphStore`] behind a small column cache;
//! * `columnar-reloaded` — the database loaded *back into memory* through
//!   [`graphbi::disk::load_store`], making the persistence round-trip an
//!   ordinary matrix row;
//! * `row`, `rdf`, `graphdb` — the three baseline systems.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use graphbi::disk::{load_store, save_store, DiskGraphStore};
use graphbi::{
    AggFn, EvalOptions, GraphQuery, GraphStore, IoStats, PathAggQuery, PathAggResult, QueryExpr,
    QueryResult, RecordId,
};
use graphbi_baselines::{Engine, GraphDb, RdfStore, RowStore};

use crate::scenario::Scenario;

/// Intentional bug injection, for validating that the oracle catches and
/// shrinks real discrepancies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the matrix under test.
    None,
    /// Swap the operands of every ANDNOT in the in-memory columnar
    /// engines' expression plans (`a − b` becomes `b − a`).
    FlipAndNot,
}

impl Fault {
    fn apply(self, expr: &QueryExpr) -> QueryExpr {
        match self {
            Fault::None => expr.clone(),
            Fault::FlipAndNot => flip_and_not(expr),
        }
    }
}

fn flip_and_not(expr: &QueryExpr) -> QueryExpr {
    match expr {
        QueryExpr::Atom(q) => QueryExpr::Atom(q.clone()),
        QueryExpr::And(a, b) => QueryExpr::and(flip_and_not(a), flip_and_not(b)),
        QueryExpr::Or(a, b) => QueryExpr::or(flip_and_not(a), flip_and_not(b)),
        QueryExpr::AndNot(a, b) => QueryExpr::and_not(flip_and_not(b), flip_and_not(a)),
    }
}

/// One engine configuration in the matrix.
pub trait MatrixEngine {
    /// Stable configuration label (engine-backend-planmode).
    fn label(&self) -> &str;
    /// Full graph-query evaluation.
    fn evaluate(&self, q: &GraphQuery) -> QueryResult;
    /// Logical-expression match set; `None` when the configuration has no
    /// expression support.
    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>>;
    /// Path aggregation; `None` when unsupported.
    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult>;
}

struct ColumnarMem {
    store: Arc<GraphStore>,
    opts: EvalOptions,
    fault: Fault,
    label: String,
}

impl MatrixEngine for ColumnarMem {
    fn label(&self) -> &str {
        &self.label
    }

    fn evaluate(&self, q: &GraphQuery) -> QueryResult {
        self.store.evaluate_with(q, self.opts).0
    }

    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>> {
        let mut stats = IoStats::new();
        let e = self.fault.apply(e);
        Some(
            self.store
                .evaluate_expr_with(&e, self.opts, &mut stats)
                .to_vec(),
        )
    }

    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult> {
        self.store
            .path_aggregate_with(paq, self.opts)
            .ok()
            .map(|(r, _)| r)
    }
}

struct ColumnarDisk {
    disk: Arc<DiskGraphStore>,
    opts: EvalOptions,
    label: String,
}

impl ColumnarDisk {
    /// Expression evaluation by set algebra over this backend's own atom
    /// match sets — the atoms still exercise the disk structural path.
    fn expr_set(&self, e: &QueryExpr) -> BTreeSet<RecordId> {
        match e {
            QueryExpr::Atom(q) => {
                let mut stats = IoStats::new();
                self.disk
                    .match_records_with(q, self.opts, &mut stats)
                    .expect("disk structural phase")
                    .to_vec()
                    .into_iter()
                    .collect()
            }
            QueryExpr::And(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.intersection(&b).copied().collect()
            }
            QueryExpr::Or(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.union(&b).copied().collect()
            }
            QueryExpr::AndNot(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.difference(&b).copied().collect()
            }
        }
    }
}

impl MatrixEngine for ColumnarDisk {
    fn label(&self) -> &str {
        &self.label
    }

    fn evaluate(&self, q: &GraphQuery) -> QueryResult {
        self.disk
            .evaluate_with(q, self.opts)
            .expect("disk evaluate")
            .0
    }

    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>> {
        Some(self.expr_set(e).into_iter().collect())
    }

    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult> {
        self.disk
            .path_aggregate_with(paq, self.opts)
            .ok()
            .map(|(r, _)| r)
    }
}

struct Baseline<E: Engine> {
    engine: E,
    label: &'static str,
}

impl<E: Engine> Baseline<E> {
    fn expr_set(&self, e: &QueryExpr) -> BTreeSet<RecordId> {
        match e {
            QueryExpr::Atom(q) => self.engine.evaluate(q).records.into_iter().collect(),
            QueryExpr::And(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.intersection(&b).copied().collect()
            }
            QueryExpr::Or(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.union(&b).copied().collect()
            }
            QueryExpr::AndNot(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.difference(&b).copied().collect()
            }
        }
    }
}

impl<E: Engine> MatrixEngine for Baseline<E> {
    fn label(&self) -> &str {
        self.label
    }

    fn evaluate(&self, q: &GraphQuery) -> QueryResult {
        self.engine.evaluate(q)
    }

    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>> {
        Some(self.expr_set(e).into_iter().collect())
    }

    fn path_aggregate(&self, _paq: &PathAggQuery) -> Option<PathAggResult> {
        None
    }
}

/// The instantiated matrix for one scenario.
pub struct Matrix {
    /// Every engine configuration, ready to answer queries.
    pub engines: Vec<Box<dyn MatrixEngine>>,
    mem: Arc<GraphStore>,
    disk: Arc<DiskGraphStore>,
    dir: PathBuf,
}

/// Column-cache budget for the disk backend — small enough that larger
/// scenarios exercise eviction.
const DISK_CACHE_BYTES: usize = 64 << 10;

impl Matrix {
    /// Builds every engine configuration from a scenario. `fault` injects
    /// an intentional bug into the in-memory columnar engines (see
    /// [`Fault`]).
    pub fn build(scenario: &Scenario, fault: Fault) -> Matrix {
        let mut store = GraphStore::load(scenario.universe.clone(), &scenario.records);
        if scenario.view_budget > 0 {
            store.advise_views(&scenario.queries, scenario.view_budget);
        }
        if scenario.agg_view_budget > 0 {
            // Advise for SUM; MIN gets whatever budget produces. Advisory
            // failures (e.g. cyclic patterns) are not scenario failures.
            let _ = store.advise_agg_views(&scenario.queries, AggFn::Sum, scenario.agg_view_budget);
        }

        // Unique per (process, build) so parallel tests on the same seed
        // never share a directory.
        static NEXT_DIR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "graphbi-testkit-{}-{:x}-{}",
            std::process::id(),
            scenario.seed,
            NEXT_DIR.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        save_store(&store, &dir).expect("save scenario database");
        let disk = Arc::new(DiskGraphStore::open(&dir, DISK_CACHE_BYTES).expect("open disk store"));
        let reloaded = Arc::new(load_store(&dir).expect("reload scenario database"));
        let mem = Arc::new(store);

        let mut engines: Vec<Box<dyn MatrixEngine>> = Vec::new();
        for (opts, mode) in [
            (EvalOptions::default(), "views"),
            (EvalOptions::oblivious(), "oblivious"),
        ] {
            engines.push(Box::new(ColumnarMem {
                store: Arc::clone(&mem),
                opts,
                fault,
                label: format!("columnar-mem-{mode}"),
            }));
            engines.push(Box::new(ColumnarDisk {
                disk: Arc::clone(&disk),
                opts,
                label: format!("columnar-disk-{mode}"),
            }));
        }
        engines.push(Box::new(ColumnarMem {
            store: reloaded,
            opts: EvalOptions::default(),
            fault: Fault::None,
            label: "columnar-reloaded-views".into(),
        }));
        engines.push(Box::new(Baseline {
            engine: RowStore::load(&scenario.records),
            label: "row",
        }));
        engines.push(Box::new(Baseline {
            engine: RdfStore::load(&scenario.records),
            label: "rdf",
        }));
        engines.push(Box::new(Baseline {
            engine: GraphDb::load(&scenario.records, &scenario.universe),
            label: "graphdb",
        }));

        Matrix {
            engines,
            mem,
            disk,
            dir,
        }
    }

    /// Structural-column costs of `q` on the in-memory store:
    /// `(view plan, oblivious plan)`.
    pub fn mem_structural_costs(&self, q: &GraphQuery) -> (u64, u64) {
        let (_, with_views) = self.mem.evaluate_with(q, EvalOptions::default());
        let (_, oblivious) = self.mem.evaluate_with(q, EvalOptions::oblivious());
        (
            with_views.structural_columns(),
            oblivious.structural_columns(),
        )
    }

    /// Disk-read costs of `q` on the disk store under a cold cache:
    /// `(view plan, oblivious plan)`.
    pub fn disk_cold_reads(&self, q: &GraphQuery) -> (u64, u64) {
        self.disk.relation().clear_cache();
        let (_, with_views) = self
            .disk
            .evaluate_with(q, EvalOptions::default())
            .expect("disk evaluate");
        self.disk.relation().clear_cache();
        let (_, oblivious) = self
            .disk
            .evaluate_with(q, EvalOptions::oblivious())
            .expect("disk evaluate");
        (with_views.disk_reads, oblivious.disk_reads)
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}
