//! The engine × plan-mode × backend matrix.
//!
//! Every configuration — columnar and baseline alike — answers through the
//! one unified [`Engine`] trait from `graphbi-baselines`, so the oracle
//! drives all of them through one interface. One scenario fans out to:
//!
//! * `columnar-mem-{views,oblivious}` — the in-memory [`GraphStore`], with
//!   and without view rewriting, sharing one store (and one view catalog);
//! * `columnar-mem-views-sharded` / `columnar-disk-views-sharded` — the
//!   same stores answering through 3-way horizontal record sharding;
//! * `columnar-disk-{views,oblivious}` — the same database saved and
//!   reopened as a [`DiskGraphStore`] behind a small column cache;
//! * `columnar-reloaded` — the database loaded *back into memory* through
//!   [`graphbi::disk::load_store`], making the persistence round-trip an
//!   ordinary matrix row;
//! * `columnar-disk-faultvfs-views` — the database saved and reopened
//!   through the crash fuzzer's in-memory [`FaultVfs`] (no fault armed),
//!   proving the fault-injection substrate is semantically transparent;
//! * `columnar-mem-delta` — an [`MvccStore`] that starts from *half* the
//!   scenario's records and streams the rest in as delta commits (inserts,
//!   self-updates of base rows, and insert-then-correct updates), so every
//!   scenario also differentially tests the base+delta merge path;
//! * `columnar-disk-wal` — the same ingest against a disk-backed
//!   [`MvccStore`] on a [`FaultVfs`], with a mid-stream compaction and a
//!   full reopen (WAL replay + fold-watermark skip) before answering;
//! * `columnar-disk-{v2,v3}` / `columnar-disk-v3-faultvfs` — the database
//!   written with an explicitly pinned on-disk format (legacy raw v2 vs
//!   compressed v3), so the codec paths and reader-side backward
//!   compatibility are differentially tested on every scenario;
//! * `columnar-disk-wal-mixed` — the WAL ingest over a *v2* base with a
//!   snapshot pinned across the (v3-emitting) compaction, proving mixed
//!   v2/v3 generations answer identically;
//! * `row`, `rdf`, `graphdb` — the three baseline systems.

use std::path::PathBuf;
use std::sync::Arc;

use graphbi::disk::{
    load_store, save_store, save_store_with, save_store_with_format, DiskGraphStore,
};
use graphbi::{
    AggFn, EvalOptions, GraphQuery, GraphStore, MvccStore, PathAggQuery, PathAggResult, QueryExpr,
    QueryRequest, QueryResult, RecordId, Session,
};
use graphbi_baselines::{Engine, GraphDb, RdfStore, RowStore};
use graphbi_columnstore::{os_vfs, DeltaOp, FaultVfs, FormatVersion, Verify};
use graphbi_graph::RecordBuilder;

use crate::scenario::Scenario;

/// The unified engine interface (re-exported under the matrix's historical
/// name): one trait for baselines and columnar configurations alike.
pub use graphbi_baselines::Engine as MatrixEngine;

/// Intentional bug injection, for validating that the oracle catches and
/// shrinks real discrepancies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the matrix under test.
    None,
    /// Swap the operands of every ANDNOT in the in-memory columnar
    /// engines' expression plans (`a − b` becomes `b − a`).
    FlipAndNot,
}

impl Fault {
    fn apply(self, expr: &QueryExpr) -> QueryExpr {
        match self {
            Fault::None => expr.clone(),
            Fault::FlipAndNot => flip_and_not(expr),
        }
    }
}

fn flip_and_not(expr: &QueryExpr) -> QueryExpr {
    match expr {
        QueryExpr::Atom(q) => QueryExpr::Atom(q.clone()),
        QueryExpr::And(a, b) => QueryExpr::and(flip_and_not(a), flip_and_not(b)),
        QueryExpr::Or(a, b) => QueryExpr::or(flip_and_not(a), flip_and_not(b)),
        QueryExpr::AndNot(a, b) => QueryExpr::and_not(flip_and_not(b), flip_and_not(a)),
    }
}

struct ColumnarMem {
    store: Arc<GraphStore>,
    opts: EvalOptions,
    shards: usize,
    fault: Fault,
    label: String,
}

impl ColumnarMem {
    fn request(&self, kind: QueryRequest) -> QueryRequest {
        kind.opts(self.opts).shards(self.shards)
    }
}

impl Engine for ColumnarMem {
    fn name(&self) -> &str {
        &self.label
    }

    fn evaluate(&self, q: &GraphQuery) -> QueryResult {
        self.store
            .execute(&self.request(QueryRequest::new(q.clone())))
            .expect("mem evaluate")
            .0
            .into_records()
            .expect("graph request answers records")
    }

    fn record_count(&self) -> u64 {
        self.store.record_count()
    }

    fn size_in_bytes(&self) -> usize {
        self.store.size_in_bytes()
    }

    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>> {
        let e = self.fault.apply(e);
        Some(
            self.store
                .execute(&self.request(QueryRequest::expr(e)))
                .expect("mem expr")
                .0
                .into_matches()
                .expect("expr request answers matches")
                .to_vec(),
        )
    }

    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult> {
        self.store
            .execute(&self.request(QueryRequest::aggregate(paq.clone())))
            .ok()
            .map(|(r, _)| {
                r.into_aggregates()
                    .expect("aggregate request answers aggregates")
            })
    }
}

struct ColumnarDisk {
    disk: Arc<DiskGraphStore>,
    opts: EvalOptions,
    shards: usize,
    label: String,
}

impl ColumnarDisk {
    fn request(&self, kind: QueryRequest) -> QueryRequest {
        kind.opts(self.opts).shards(self.shards)
    }
}

impl Engine for ColumnarDisk {
    fn name(&self) -> &str {
        &self.label
    }

    fn evaluate(&self, q: &GraphQuery) -> QueryResult {
        self.disk
            .execute(&self.request(QueryRequest::new(q.clone())))
            .expect("disk evaluate")
            .0
            .into_records()
            .expect("graph request answers records")
    }

    fn record_count(&self) -> u64 {
        self.disk.record_count()
    }

    fn size_in_bytes(&self) -> usize {
        // Columns are disk-resident; nothing stays pinned between queries.
        0
    }

    /// Native disk expression support (bitmap algebra over the disk
    /// structural path), unlike the baselines' set-algebra default.
    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>> {
        Some(
            self.disk
                .execute(&self.request(QueryRequest::expr(e.clone())))
                .expect("disk expr")
                .0
                .into_matches()
                .expect("expr request answers matches")
                .to_vec(),
        )
    }

    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult> {
        self.disk
            .execute(&self.request(QueryRequest::aggregate(paq.clone())))
            .ok()
            .map(|(r, _)| {
                r.into_aggregates()
                    .expect("aggregate request answers aggregates")
            })
    }
}

/// An MVCC store answering through per-call snapshots. The store is fully
/// ingested before it joins the matrix, so repeated snapshots pin the same
/// epoch and every answer is repeat-deterministic.
struct ColumnarMvcc {
    store: Arc<MvccStore>,
    label: String,
}

impl Engine for ColumnarMvcc {
    fn name(&self) -> &str {
        &self.label
    }

    fn evaluate(&self, q: &GraphQuery) -> QueryResult {
        self.store
            .execute(&QueryRequest::new(q.clone()))
            .expect("mvcc evaluate")
            .0
            .into_records()
            .expect("graph request answers records")
    }

    fn record_count(&self) -> u64 {
        self.store.record_count()
    }

    fn size_in_bytes(&self) -> usize {
        0
    }

    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>> {
        Some(
            self.store
                .execute(&QueryRequest::expr(e.clone()))
                .expect("mvcc expr")
                .0
                .into_matches()
                .expect("expr request answers matches")
                .to_vec(),
        )
    }

    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult> {
        self.store
            .execute(&QueryRequest::aggregate(paq.clone()))
            .ok()
            .map(|(r, _)| {
                r.into_aggregates()
                    .expect("aggregate request answers aggregates")
            })
    }
}

/// The delta-commit stream that turns a half-loaded base into the full
/// scenario, batched. Inserts arrive in scenario order (so insert `k` gets
/// record id `half + k`), every 5th base row is re-committed with its own
/// content (exercising the retired-base mask without changing answers),
/// and every 3rd insert first lands with perturbed measures and is then
/// corrected by an update — so the merge path sees genuine multi-version
/// chains while the visible state stays exactly `scenario.records`.
pub(crate) fn delta_batches(scenario: &Scenario, half: usize) -> Vec<Vec<DeltaOp>> {
    let mut ops: Vec<DeltaOp> = Vec::new();
    for i in (0..half).step_by(5) {
        ops.push(DeltaOp::Update(i as u32, scenario.records[i].clone()));
    }
    for (k, rec) in scenario.records[half..].iter().enumerate() {
        if k % 3 == 0 && rec.edge_count() > 0 {
            let mut b = RecordBuilder::with_capacity(rec.edge_count());
            for &(e, m) in rec.edges() {
                b.add(e, m + 1.0);
            }
            ops.push(DeltaOp::Insert(b.build()));
            ops.push(DeltaOp::Update((half + k) as u32, rec.clone()));
        } else {
            ops.push(DeltaOp::Insert(rec.clone()));
        }
    }
    ops.chunks(8).map(<[DeltaOp]>::to_vec).collect()
}

/// A base store over the first `half` scenario records, with the same view
/// advice as the full matrix store.
fn half_store(scenario: &Scenario, half: usize) -> GraphStore {
    let mut store = GraphStore::load(scenario.universe.clone(), &scenario.records[..half]);
    if scenario.view_budget > 0 {
        store.advise_views(&scenario.queries, scenario.view_budget);
    }
    if scenario.agg_view_budget > 0 {
        let _ = store.advise_agg_views(&scenario.queries, AggFn::Sum, scenario.agg_view_budget);
    }
    store
}

/// Relabels a baseline engine with its stable matrix label while
/// delegating every answer.
struct Labeled<E: Engine> {
    engine: E,
    label: &'static str,
}

impl<E: Engine> Engine for Labeled<E> {
    fn name(&self) -> &str {
        self.label
    }

    fn evaluate(&self, q: &GraphQuery) -> QueryResult {
        self.engine.evaluate(q)
    }

    fn record_count(&self) -> u64 {
        self.engine.record_count()
    }

    fn size_in_bytes(&self) -> usize {
        self.engine.size_in_bytes()
    }

    fn match_expr(&self, e: &QueryExpr) -> Option<Vec<RecordId>> {
        self.engine.match_expr(e)
    }

    fn path_aggregate(&self, paq: &PathAggQuery) -> Option<PathAggResult> {
        self.engine.path_aggregate(paq)
    }
}

/// The instantiated matrix for one scenario.
pub struct Matrix {
    /// Every engine configuration, ready to answer queries.
    pub engines: Vec<Box<dyn MatrixEngine>>,
    mem: Arc<GraphStore>,
    disk: Arc<DiskGraphStore>,
    dir: PathBuf,
}

/// Column-cache budget for the disk backend — small enough that larger
/// scenarios exercise eviction.
const DISK_CACHE_BYTES: usize = 64 << 10;

/// Shard count for the sharded matrix rows: odd and small, so shard
/// boundaries land mid-chunk on every scenario size.
const MATRIX_SHARDS: usize = 3;

impl Matrix {
    /// Builds every engine configuration from a scenario. `fault` injects
    /// an intentional bug into the in-memory columnar engines (see
    /// [`Fault`]).
    pub fn build(scenario: &Scenario, fault: Fault) -> Matrix {
        let mut store = GraphStore::load(scenario.universe.clone(), &scenario.records);
        if scenario.view_budget > 0 {
            store.advise_views(&scenario.queries, scenario.view_budget);
        }
        if scenario.agg_view_budget > 0 {
            // Advise for SUM; MIN gets whatever budget produces. Advisory
            // failures (e.g. cyclic patterns) are not scenario failures.
            let _ = store.advise_agg_views(&scenario.queries, AggFn::Sum, scenario.agg_view_budget);
        }

        // Unique per (process, build) so parallel tests on the same seed
        // never share a directory.
        static NEXT_DIR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "graphbi-testkit-{}-{:x}-{}",
            std::process::id(),
            scenario.seed,
            NEXT_DIR.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        save_store(&store, &dir).expect("save scenario database");
        let disk = Arc::new(DiskGraphStore::open(&dir, DISK_CACHE_BYTES).expect("open disk store"));
        let reloaded = Arc::new(load_store(&dir).expect("reload scenario database"));
        let mem = Arc::new(store);

        let mut engines: Vec<Box<dyn MatrixEngine>> = Vec::new();
        for (opts, mode) in [
            (EvalOptions::default(), "views"),
            (EvalOptions::oblivious(), "oblivious"),
        ] {
            engines.push(Box::new(ColumnarMem {
                store: Arc::clone(&mem),
                opts,
                shards: 1,
                fault,
                label: format!("columnar-mem-{mode}"),
            }));
            engines.push(Box::new(ColumnarDisk {
                disk: Arc::clone(&disk),
                opts,
                shards: 1,
                label: format!("columnar-disk-{mode}"),
            }));
        }
        // Sharded rows: same stores, horizontal record sharding — results
        // must be indistinguishable from the serial rows.
        engines.push(Box::new(ColumnarMem {
            store: Arc::clone(&mem),
            opts: EvalOptions::default(),
            shards: MATRIX_SHARDS,
            fault,
            label: "columnar-mem-views-sharded".into(),
        }));
        engines.push(Box::new(ColumnarDisk {
            disk: Arc::clone(&disk),
            opts: EvalOptions::default(),
            shards: MATRIX_SHARDS,
            label: "columnar-disk-views-sharded".into(),
        }));
        engines.push(Box::new(ColumnarMem {
            store: reloaded,
            opts: EvalOptions::default(),
            shards: 1,
            fault: Fault::None,
            label: "columnar-reloaded-views".into(),
        }));
        // The same database saved and reopened through the in-memory
        // fault-injection VFS with no fault armed — the crash fuzzer's
        // substrate answering as an ordinary matrix row proves FaultVfs
        // itself is semantically transparent.
        let fvfs = Arc::new(FaultVfs::new(scenario.seed));
        let fdir = PathBuf::from("/matrixdb");
        save_store_with(fvfs.as_ref(), &mem, &fdir).expect("save through FaultVfs");
        let fdisk = Arc::new(
            DiskGraphStore::open_with(&fdir, DISK_CACHE_BYTES, fvfs, Verify::Checksums)
                .expect("open through FaultVfs"),
        );
        engines.push(Box::new(ColumnarDisk {
            disk: fdisk,
            opts: EvalOptions::default(),
            shards: 1,
            label: "columnar-disk-faultvfs-views".into(),
        }));
        // Format-version rows: the same database written explicitly as
        // legacy v2 (raw payloads) and as compressed v3, each answering as
        // its own matrix row — the reader-side backward-compat guarantee
        // and the compressed read path under differential test on every
        // scenario. The v3 row additionally runs on the FaultVfs substrate.
        for (format, version, label) in [
            (FormatVersion::V2, 2, "columnar-disk-v2"),
            (FormatVersion::V3, 3, "columnar-disk-v3"),
        ] {
            let fmt_dir = dir.join(format!("fmt-v{version}"));
            save_store_with_format(os_vfs().as_ref(), &mem, &fmt_dir, &[], &[], format)
                .expect("save format-pinned database");
            let fmt_disk = Arc::new(
                DiskGraphStore::open(&fmt_dir, DISK_CACHE_BYTES).expect("open format-pinned store"),
            );
            assert_eq!(
                fmt_disk.relation().format_version(),
                version,
                "manifest must record the pinned format"
            );
            engines.push(Box::new(ColumnarDisk {
                disk: fmt_disk,
                opts: EvalOptions::default(),
                shards: 1,
                label: label.into(),
            }));
        }
        let v3f_vfs = Arc::new(FaultVfs::new(scenario.seed ^ 0x7333));
        let v3f_dir = PathBuf::from("/matrixdb-v3");
        save_store_with_format(
            v3f_vfs.as_ref(),
            &mem,
            &v3f_dir,
            &[],
            &[],
            FormatVersion::V3,
        )
        .expect("save v3 through FaultVfs");
        engines.push(Box::new(ColumnarDisk {
            disk: Arc::new(
                DiskGraphStore::open_with(&v3f_dir, DISK_CACHE_BYTES, v3f_vfs, Verify::Checksums)
                    .expect("open v3 through FaultVfs"),
            ),
            opts: EvalOptions::default(),
            shards: 1,
            label: "columnar-disk-v3-faultvfs".into(),
        }));
        // The write path: half the records as an immutable base, the rest
        // streamed in as delta commits. Answers must match the reference
        // over the FULL record list — the merge, the WAL, the compaction
        // and the reopen are all under differential test on every scenario.
        let half = scenario.records.len() / 2;
        let batches = delta_batches(scenario, half);
        let mem_delta = MvccStore::new_mem(half_store(scenario, half));
        for batch in &batches {
            mem_delta.commit(batch).expect("mem delta commit");
        }
        engines.push(Box::new(ColumnarMvcc {
            store: Arc::new(mem_delta),
            label: "columnar-mem-delta".into(),
        }));
        let wal_vfs = Arc::new(FaultVfs::new(scenario.seed ^ 0x57a1));
        let wal_dir = PathBuf::from("/mvccdb");
        save_store_with(wal_vfs.as_ref(), &half_store(scenario, half), &wal_dir)
            .expect("save mvcc base through FaultVfs");
        let disk_delta = MvccStore::open_disk(
            &wal_dir,
            DISK_CACHE_BYTES,
            wal_vfs.clone(),
            Verify::Checksums,
        )
        .expect("open mvcc store");
        let mid = batches.len() / 2;
        for batch in &batches[..mid] {
            disk_delta.commit(batch).expect("wal commit");
        }
        disk_delta.compact().expect("mid-stream compaction");
        for batch in &batches[mid..] {
            disk_delta.commit(batch).expect("wal commit");
        }
        drop(disk_delta);
        // Reopen from the published generation + WAL: every scenario now
        // exercises replay, the fold watermark skip, and epoch resume.
        let reopened = MvccStore::open_disk(&wal_dir, DISK_CACHE_BYTES, wal_vfs, Verify::Checksums)
            .expect("reopen mvcc store");
        reopened.gc().expect("sweep unpinned generations");
        engines.push(Box::new(ColumnarMvcc {
            store: Arc::new(reopened),
            label: "columnar-disk-wal".into(),
        }));
        // Mixed-generation row: the base generation is written as legacy
        // v2, deltas stream in over the WAL, and the mid-stream compaction
        // publishes a v3 generation — with a snapshot pinning the v2 base
        // across the compaction so both formats coexist on disk. Proves
        // `MvccStore::compact` across format versions, answer-identically.
        let mixed_vfs = Arc::new(FaultVfs::new(scenario.seed ^ 0x313d));
        let mixed_dir = PathBuf::from("/mvccdb-mixed");
        save_store_with_format(
            mixed_vfs.as_ref(),
            &half_store(scenario, half),
            &mixed_dir,
            &[],
            &[],
            FormatVersion::V2,
        )
        .expect("save v2 mvcc base through FaultVfs");
        let mixed = MvccStore::open_disk(
            &mixed_dir,
            DISK_CACHE_BYTES,
            mixed_vfs.clone(),
            Verify::Checksums,
        )
        .expect("open mixed mvcc store");
        let pin = mixed.snapshot();
        for batch in &batches[..mid] {
            mixed.commit(batch).expect("mixed wal commit");
        }
        mixed.compact().expect("compact v2 base into v3");
        for batch in &batches[mid..] {
            mixed.commit(batch).expect("mixed wal commit");
        }
        drop(pin);
        drop(mixed);
        let mixed_reopened =
            MvccStore::open_disk(&mixed_dir, DISK_CACHE_BYTES, mixed_vfs, Verify::Checksums)
                .expect("reopen mixed mvcc store");
        mixed_reopened
            .gc()
            .expect("sweep unpinned mixed generations");
        engines.push(Box::new(ColumnarMvcc {
            store: Arc::new(mixed_reopened),
            label: "columnar-disk-wal-mixed".into(),
        }));
        engines.push(Box::new(Labeled {
            engine: RowStore::load(&scenario.records),
            label: "row",
        }));
        engines.push(Box::new(Labeled {
            engine: RdfStore::load(&scenario.records),
            label: "rdf",
        }));
        engines.push(Box::new(Labeled {
            engine: GraphDb::load(&scenario.records, &scenario.universe),
            label: "graphdb",
        }));

        Matrix {
            engines,
            mem,
            disk,
            dir,
        }
    }

    /// The in-memory store, for batched [`Session`] cross-checks.
    pub fn mem_store(&self) -> &GraphStore {
        &self.mem
    }

    /// The disk store, for batched [`Session`] cross-checks.
    pub fn disk_store(&self) -> &DiskGraphStore {
        &self.disk
    }

    /// Structural-column costs of `q` on the in-memory store:
    /// `(view plan, oblivious plan)`.
    pub fn mem_structural_costs(&self, q: &GraphQuery) -> (u64, u64) {
        let (_, with_views) = self
            .mem
            .execute(&QueryRequest::new(q.clone()))
            .expect("mem evaluate");
        let (_, oblivious) = self
            .mem
            .execute(&QueryRequest::new(q.clone()).oblivious())
            .expect("mem evaluate");
        (
            with_views.structural_columns(),
            oblivious.structural_columns(),
        )
    }

    /// Disk-read costs of `q` on the disk store under a cold cache:
    /// `(view plan, oblivious plan)`.
    pub fn disk_cold_reads(&self, q: &GraphQuery) -> (u64, u64) {
        self.disk.relation().clear_cache();
        let (_, with_views) = self
            .disk
            .execute(&QueryRequest::new(q.clone()))
            .expect("disk evaluate");
        self.disk.relation().clear_cache();
        let (_, oblivious) = self
            .disk
            .execute(&QueryRequest::new(q.clone()).oblivious())
            .expect("disk evaluate");
        (with_views.disk_reads, oblivious.disk_reads)
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}
