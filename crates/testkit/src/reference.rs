//! The ground-truth model: a deliberately naive evaluator over the raw
//! record list. No bitmaps, no columns, no views, no caches — per-record
//! scans and set algebra only. Every engine in the matrix is checked
//! against this, so the model must stay too simple to share a bug with any
//! of them.

use std::collections::BTreeSet;

use graphbi::{
    GraphQuery, PathAggQuery, PathAggResult, QueryExpr, QueryResult, RecordId, Universe,
};
use graphbi_graph::{AggState, GraphError, GraphRecord};

/// The naive model engine.
pub struct Reference<'a> {
    universe: &'a Universe,
    records: &'a [GraphRecord],
}

impl<'a> Reference<'a> {
    /// Wraps a record collection.
    pub fn new(universe: &'a Universe, records: &'a [GraphRecord]) -> Reference<'a> {
        Reference { universe, records }
    }

    /// Records containing every edge of `query` (all records when empty).
    pub fn match_records(&self, query: &GraphQuery) -> Vec<RecordId> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| query.edges().iter().all(|&e| r.contains(e)))
            .map(|(i, _)| u32::try_from(i).expect("record id fits u32"))
            .collect()
    }

    /// Full evaluation: matching records plus their record-major measure
    /// matrix in query-edge order (ascending, as `GraphQuery` stores them).
    pub fn evaluate(&self, query: &GraphQuery) -> QueryResult {
        let records = self.match_records(query);
        let edges = query.edges().to_vec();
        let mut measures = Vec::with_capacity(records.len() * edges.len());
        for &rid in &records {
            let rec = &self.records[rid as usize];
            for &e in &edges {
                measures.push(rec.measure(e).expect("matched record holds the edge"));
            }
        }
        QueryResult {
            records,
            edges,
            measures,
        }
    }

    /// Set-algebra evaluation of a logical expression.
    pub fn match_expr(&self, expr: &QueryExpr) -> Vec<RecordId> {
        set_to_vec(&self.expr_set(expr))
    }

    fn expr_set(&self, expr: &QueryExpr) -> BTreeSet<RecordId> {
        match expr {
            QueryExpr::Atom(q) => self.match_records(q).into_iter().collect(),
            QueryExpr::And(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.intersection(&b).copied().collect()
            }
            QueryExpr::Or(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.union(&b).copied().collect()
            }
            QueryExpr::AndNot(a, b) => {
                let (a, b) = (self.expr_set(a), self.expr_set(b));
                a.difference(&b).copied().collect()
            }
        }
    }

    /// Path aggregation: per matching record, fold the measures of each
    /// maximal path's elements through the aggregate function.
    pub fn path_aggregate(&self, paq: &PathAggQuery) -> Result<PathAggResult, GraphError> {
        let paths = paq.query.maximal_paths(self.universe)?;
        let records = self.match_records(&paq.query);
        let path_count = paths.len();
        let mut values = Vec::with_capacity(records.len() * path_count);
        let elements: Vec<Vec<graphbi::EdgeId>> = paths
            .iter()
            .map(|p| p.elements(self.universe))
            .collect::<Result<_, _>>()?;
        for &rid in &records {
            let rec = &self.records[rid as usize];
            for elems in &elements {
                let mut state = AggState::empty();
                for &e in elems {
                    state.push(rec.measure(e).expect("matched record holds the edge"));
                }
                values.push(state.finalize(paq.func).unwrap_or(f64::NAN));
            }
        }
        Ok(PathAggResult {
            records,
            path_count,
            values,
        })
    }
}

fn set_to_vec(s: &BTreeSet<RecordId>) -> Vec<RecordId> {
    s.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi::{AggFn, EdgeId};
    use graphbi_graph::RecordBuilder;

    fn tiny() -> (Universe, Vec<GraphRecord>, Vec<EdgeId>) {
        let mut u = Universe::new();
        let e: Vec<EdgeId> = (0..4)
            .map(|i| u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1)))
            .collect();
        let mut records = Vec::new();
        for mask in 1u32..16 {
            let mut b = RecordBuilder::new();
            for (i, &eid) in e.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    b.add(eid, f64::from(mask * 10 + i as u32));
                }
            }
            records.push(b.build());
        }
        (u, records, e)
    }

    #[test]
    fn matching_is_containment() {
        let (u, records, e) = tiny();
        let r = Reference::new(&u, &records);
        // Records with both e0 and e1: masks with low two bits set.
        let q = GraphQuery::from_edges(vec![e[0], e[1]]);
        let hits = r.match_records(&q);
        assert_eq!(hits, vec![2, 6, 10, 14]); // masks 3,7,11,15 → ids mask-1
        let full = r.evaluate(&q);
        assert_eq!(full.records, hits);
        assert_eq!(full.row(0), &[30.0, 31.0]); // mask 3
    }

    #[test]
    fn expr_algebra() {
        let (u, records, e) = tiny();
        let r = Reference::new(&u, &records);
        let a = QueryExpr::Atom(GraphQuery::from_edges(vec![e[0]]));
        let b = QueryExpr::Atom(GraphQuery::from_edges(vec![e[1]]));
        let both = r.match_expr(&QueryExpr::and(a.clone(), b.clone()));
        let either = r.match_expr(&QueryExpr::or(a.clone(), b.clone()));
        let only_a = r.match_expr(&QueryExpr::and_not(a.clone(), b.clone()));
        let just_a = r.match_expr(&a);
        assert!(both.iter().all(|x| just_a.contains(x)));
        assert!(just_a.iter().all(|x| either.contains(x)));
        assert!(only_a
            .iter()
            .all(|x| just_a.contains(x) && !both.contains(x)));
        assert_eq!(both.len() + only_a.len(), just_a.len());
    }

    #[test]
    fn aggregation_over_a_path() {
        let (u, records, e) = tiny();
        let r = Reference::new(&u, &records);
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![e[0], e[1]]), AggFn::Sum);
        let res = r.path_aggregate(&paq).unwrap();
        assert_eq!(res.records, vec![2, 6, 10, 14]);
        assert_eq!(res.path_count, 1);
        assert_eq!(res.values[0], 30.0 + 31.0);
    }
}
