//! The differential oracle: one scenario, every engine configuration,
//! every check.

use graphbi::{QueryRequest, Response, Session};

use crate::engines::{Fault, Matrix};
use crate::reference::Reference;
use crate::scenario::Scenario;

/// Relative tolerance for aggregate/measure comparisons. Engines sum in
/// different orders (columnar scan vs row joins vs view composition), so
/// float results may drift by rounding but never by more than this.
pub const TOLERANCE: f64 = 1e-9;

/// One disagreement between an engine and the reference model (or a broken
/// invariant).
#[derive(Debug)]
pub struct Discrepancy {
    /// The engine configuration that disagreed.
    pub engine: String,
    /// Which scenario item exposed it (`query[3]`, `expr[0]`, …).
    pub item: String,
    /// Human-readable explanation of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.engine, self.item, self.detail)
    }
}

/// The oracle's verdict on one scenario.
#[derive(Debug, Default)]
pub struct Report {
    /// Every disagreement found (empty = scenario passed).
    pub discrepancies: Vec<Discrepancy>,
    /// Number of individual comparisons performed.
    pub checks: u64,
}

impl Report {
    /// True when no engine disagreed and no invariant broke.
    pub fn passed(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Runs the full differential matrix on one scenario.
pub fn check(scenario: &Scenario, fault: Fault) -> Report {
    let matrix = Matrix::build(scenario, fault);
    let reference = Reference::new(&scenario.universe, &scenario.records);
    let mut report = Report::default();

    // Graph queries: every engine against the model.
    for (qi, q) in scenario.queries.iter().enumerate() {
        let expected = reference.evaluate(q);
        for engine in &matrix.engines {
            report.checks += 1;
            let got = engine.evaluate(q);
            if let Some(diff) = expected.diff(&got, TOLERANCE) {
                report.discrepancies.push(Discrepancy {
                    engine: engine.name().to_string(),
                    item: format!("query[{qi}] {q:?}"),
                    detail: diff,
                });
            }
        }

        // Invariant: a view-rewritten plan never fetches more structural
        // columns than the oblivious plan — rewriting exists to save
        // fetches, so regressing past the baseline is a planner bug.
        report.checks += 1;
        let (viewed, oblivious) = matrix.mem_structural_costs(q);
        if viewed > oblivious {
            report.discrepancies.push(Discrepancy {
                engine: "columnar-mem-views".into(),
                item: format!("query[{qi}] {q:?}"),
                detail: format!(
                    "view plan fetched {viewed} structural columns, oblivious plan {oblivious}"
                ),
            });
        }
        report.checks += 1;
        let (viewed, oblivious) = matrix.disk_cold_reads(q);
        if viewed > oblivious {
            report.discrepancies.push(Discrepancy {
                engine: "columnar-disk-views".into(),
                item: format!("query[{qi}] {q:?}"),
                detail: format!(
                    "cold view plan did {viewed} disk reads, oblivious plan {oblivious}"
                ),
            });
        }

        // Invariant: every logical cost counter — including the planner's
        // skipped-fetch count — is shard-count independent. Only the
        // physical `disk_reads`/`disk_bytes` may differ between runs (they
        // depend on cache state, not the plan), so they are masked out.
        for (backend, serial, sharded) in [
            (
                "columnar-mem-views-sharded",
                matrix
                    .mem_store()
                    .execute(&QueryRequest::new(q.clone()))
                    .expect("mem evaluate")
                    .1,
                matrix
                    .mem_store()
                    .execute(&QueryRequest::new(q.clone()).shards(3))
                    .expect("mem evaluate")
                    .1,
            ),
            (
                "columnar-disk-views-sharded",
                matrix
                    .disk_store()
                    .execute(&QueryRequest::new(q.clone()))
                    .expect("disk evaluate")
                    .1,
                matrix
                    .disk_store()
                    .execute(&QueryRequest::new(q.clone()).shards(3))
                    .expect("disk evaluate")
                    .1,
            ),
        ] {
            report.checks += 1;
            let mask = |mut s: graphbi::IoStats| {
                s.disk_reads = 0;
                s.disk_bytes = 0;
                s
            };
            let (serial, sharded) = (mask(serial), mask(sharded));
            if serial != sharded {
                report.discrepancies.push(Discrepancy {
                    engine: backend.into(),
                    item: format!("query[{qi}] {q:?}"),
                    detail: format!(
                        "stats depend on shard count: serial {serial:?} vs sharded {sharded:?}"
                    ),
                });
            }
        }

        // Invariant: tracing is observation only. Each engine row re-runs
        // the query under an installed span collector; the traced answer
        // must be bit-identical to the untraced one.
        for engine in &matrix.engines {
            report.checks += 1;
            let plain = engine.evaluate(q);
            let collector = std::sync::Arc::new(graphbi_obs::Collector::new());
            let traced = {
                let _tracing = graphbi_obs::install(&collector);
                engine.evaluate(q)
            };
            if let Some(diff) = plain.diff(&traced, 0.0) {
                report.discrepancies.push(Discrepancy {
                    engine: format!("{}-traced", engine.name()),
                    item: format!("query[{qi}] {q:?}"),
                    detail: format!("traced answer differs from untraced: {diff}"),
                });
            }
        }

        // Invariant: on the stats-bearing stores, tracing also leaves the
        // logical IoStats bit-identical, and where a span attribute names
        // an IoStats counter the trace-summed attribute must equal the
        // counter exactly — spans carry the same deltas, just annotated.
        let req = QueryRequest::new(q.clone());
        for (backend, store) in [
            (
                "columnar-mem-views-traced",
                matrix.mem_store() as &dyn Session,
            ),
            (
                "columnar-disk-views-traced",
                matrix.disk_store() as &dyn Session,
            ),
        ] {
            let (plain, plain_stats) = store.execute(&req).expect("untraced evaluate");
            let collector = std::sync::Arc::new(graphbi_obs::Collector::new());
            let (traced, traced_stats) = {
                let _tracing = graphbi_obs::install(&collector);
                store.execute(&req).expect("traced evaluate")
            };
            let trace = collector.trace();
            report.checks += 1;
            if traced != plain {
                report.discrepancies.push(Discrepancy {
                    engine: backend.into(),
                    item: format!("query[{qi}] {q:?}"),
                    detail: "traced answer differs from untraced".into(),
                });
            }
            report.checks += 1;
            let mask = |mut s: graphbi::IoStats| {
                s.disk_reads = 0;
                s.disk_bytes = 0;
                s
            };
            let (masked_traced, masked_plain) = (mask(traced_stats), mask(plain_stats));
            if masked_traced != masked_plain {
                report.discrepancies.push(Discrepancy {
                    engine: backend.into(),
                    item: format!("query[{qi}] {q:?}"),
                    detail: format!(
                        "tracing changed the logical stats: {masked_traced:?} vs {masked_plain:?}"
                    ),
                });
            }
            for (attr, want) in [
                ("bitmap_columns", traced_stats.bitmap_columns),
                ("view_bitmap_columns", traced_stats.view_bitmap_columns),
                ("measure_columns", traced_stats.measure_columns),
                ("values_fetched", traced_stats.values_fetched),
                ("fetches_skipped", traced_stats.fetches_skipped),
            ] {
                report.checks += 1;
                let got = trace.sum_attr_all(attr);
                if got != want {
                    report.discrepancies.push(Discrepancy {
                        engine: backend.into(),
                        item: format!("query[{qi}] {q:?}"),
                        detail: format!(
                            "span attr {attr:?} sums to {got}, IoStats counter says {want}"
                        ),
                    });
                }
            }
        }
    }

    // Logical expressions: match sets against the model's set algebra.
    for (ei, e) in scenario.exprs.iter().enumerate() {
        let expected = reference.match_expr(e);
        for engine in &matrix.engines {
            let Some(got) = engine.match_expr(e) else {
                continue;
            };
            report.checks += 1;
            if got != expected {
                report.discrepancies.push(Discrepancy {
                    engine: engine.name().to_string(),
                    item: format!("expr[{ei}]"),
                    detail: format!(
                        "match set differs: {} vs {} records (expected {:?}…, got {:?}…)",
                        expected.len(),
                        got.len(),
                        &expected[..expected.len().min(8)],
                        &got[..got.len().min(8)],
                    ),
                });
            }
        }
    }

    // Path aggregations: values against the model, under tolerance.
    for (ai, paq) in scenario.aggs.iter().enumerate() {
        let Ok(expected) = reference.path_aggregate(paq) else {
            // Cyclic pattern: every engine must refuse it too, but there is
            // no value to compare.
            continue;
        };
        for engine in &matrix.engines {
            let Some(got) = engine.path_aggregate(paq) else {
                continue;
            };
            report.checks += 1;
            if let Some(diff) = expected.diff(&got, TOLERANCE) {
                report.discrepancies.push(Discrepancy {
                    engine: engine.name().to_string(),
                    item: format!("agg[{ai}] {:?}", paq.func),
                    detail: diff,
                });
            }
        }
    }

    // Batched execution: the whole scenario workload as ONE
    // `Session::evaluate_many` call (with request-level sharding), on both
    // the in-memory and the disk backend. Batch answers must match the
    // reference item for item — deduplication, shared fetches, and shard
    // merging are not allowed to change any answer.
    let mut requests: Vec<(QueryRequest, BatchExpect)> = Vec::new();
    for q in &scenario.queries {
        requests.push((
            QueryRequest::new(q.clone()).shards(2),
            BatchExpect::Records(reference.evaluate(q)),
        ));
    }
    for e in &scenario.exprs {
        requests.push((
            QueryRequest::expr(e.clone()).shards(2),
            BatchExpect::Matches(reference.match_expr(e)),
        ));
    }
    for paq in &scenario.aggs {
        // Cyclic aggregations error, and `evaluate_many` propagates the
        // first error for the whole batch — keep only answerable ones.
        if let Ok(expected) = reference.path_aggregate(paq) {
            requests.push((
                QueryRequest::aggregate(paq.clone()).shards(2),
                BatchExpect::Aggregates(expected),
            ));
        }
    }
    if !requests.is_empty() {
        let batch: Vec<QueryRequest> = requests.iter().map(|(r, _)| r.clone()).collect();
        for (backend, answers) in [
            (
                "columnar-mem-batched",
                matrix.mem_store().evaluate_many(&batch),
            ),
            (
                "columnar-disk-batched",
                matrix.disk_store().evaluate_many(&batch),
            ),
        ] {
            let answers = match answers {
                Ok(a) => a,
                Err(e) => {
                    report.checks += 1;
                    report.discrepancies.push(Discrepancy {
                        engine: backend.into(),
                        item: "batch".into(),
                        detail: format!("evaluate_many failed: {e}"),
                    });
                    continue;
                }
            };
            for (bi, ((_, expect), (response, _))) in requests.iter().zip(&answers).enumerate() {
                report.checks += 1;
                let diff = match (expect, response) {
                    (BatchExpect::Records(expected), Response::Records(got)) => {
                        expected.diff(got, TOLERANCE)
                    }
                    (BatchExpect::Matches(expected), Response::Matches(got)) => {
                        let got = got.to_vec();
                        (&got != expected).then(|| {
                            format!(
                                "match set differs: {} vs {} records",
                                expected.len(),
                                got.len()
                            )
                        })
                    }
                    (BatchExpect::Aggregates(expected), Response::Aggregates(got)) => {
                        expected.diff(got, TOLERANCE)
                    }
                    _ => Some("response variant does not match request kind".into()),
                };
                if let Some(detail) = diff {
                    report.discrepancies.push(Discrepancy {
                        engine: backend.into(),
                        item: format!("batch[{bi}]"),
                        detail,
                    });
                }
            }
        }
    }

    debug_assert!(
        scenario.queries.is_empty() || report.checks > 0,
        "oracle ran no checks on a non-empty scenario"
    );
    report
}

/// What the reference model expects for one batched request.
enum BatchExpect {
    Records(graphbi::QueryResult),
    Matches(Vec<graphbi::RecordId>),
    Aggregates(graphbi::PathAggResult),
}
