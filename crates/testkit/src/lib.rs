//! Differential oracle and deterministic fuzz harness.
//!
//! Every storage engine in the workspace answers the same logical queries;
//! this crate makes that claim mechanically checkable. A [`Scenario`] —
//! record collection, query workload, logical expressions, path
//! aggregations, view budgets — is generated from a single `u64` seed and
//! run through the full engine × plan-mode × backend matrix
//! ([`engines::Matrix`]): the in-memory column store with view-rewritten
//! and view-oblivious plans, the disk-resident column store under both
//! plan modes, a persistence round-trip reload, and the row/RDF/graph-db
//! baselines. Every answer is compared against a deliberately naive
//! reference model ([`reference::Reference`]), with tolerance-aware float
//! comparison for aggregates, plus plan-cost invariants (a view plan never
//! fetches more structural columns than an oblivious one).
//!
//! On failure, [`shrink::shrink`] delta-debugs the scenario down to a
//! minimal record set and workload that still reproduce it; the `fuzz`
//! binary (`cargo run -p graphbi-testkit --bin fuzz -- --seed 42 --iters
//! 200`) drives the loop and prints replayable seeds.
//!
//! The same scenarios also feed the crash-consistency oracle
//! ([`crash::check`]): the store is saved through a deterministic faulty
//! filesystem (`FaultVfs`), crashed at every VFS operation index under
//! every fault kind, rebooted and reopened — the reopened store must be
//! exactly the old database or exactly the new one, and every
//! flipped-at-rest byte must be caught by a checksum or provably change
//! nothing (`fuzz --crash`). Crash failures shrink through the same
//! delta-debugger via [`shrink::shrink_with`].
//!
//! [`crash::check_wal`] applies the same discipline to the *live write
//! path*: an `MvccStore` ingest (open, two delta commits, a compaction)
//! is crashed at every VFS operation under every fault kind, and
//! recovery must land exactly on a commit boundary — acknowledged
//! commits durable, unacknowledged ones invisible, never torn. The
//! differential matrix exercises the same machinery on every scenario
//! through its `columnar-mem-delta` and `columnar-disk-wal` rows.

pub mod crash;
pub mod engines;
pub mod oracle;
pub mod reference;
pub mod scenario;
pub mod shrink;

pub use crash::{CrashFailure, CrashFault, CrashReport};
pub use engines::{Fault, Matrix, MatrixEngine};
pub use oracle::{check, Discrepancy, Report, TOLERANCE};
pub use reference::Reference;
pub use scenario::Scenario;
pub use shrink::{shrink, shrink_with, Shrunk};
