//! Fixed-seed smoke runs of the differential matrix, and the
//! fault-injection demonstration: an intentionally broken ANDNOT is
//! caught by the oracle and shrunk to a minimal reproducer.

use graphbi_testkit::{check, shrink, Fault, Scenario};

use std::path::PathBuf;
use std::sync::Arc;

use graphbi::disk::{save_store_with_format, DiskGraphStore};
use graphbi::{AggFn, GraphStore, QueryRequest, Session};
use graphbi_columnstore::{FaultVfs, FormatVersion, Verify};

/// The tier-1 smoke: the full engine × plan-mode × backend matrix agrees
/// with the reference model on several fixed seeds.
#[test]
fn matrix_agrees_on_fixed_seeds() {
    let mut total_checks = 0;
    for seed in [11u64, 23, 37, 101] {
        let scenario = Scenario::generate(seed);
        assert!(
            !scenario.queries.is_empty(),
            "seed {seed} generated no queries"
        );
        let report = check(&scenario, Fault::None);
        assert!(
            report.passed(),
            "seed {seed}: {} discrepancies, first: {}",
            report.discrepancies.len(),
            report.discrepancies[0],
        );
        total_checks += report.checks;
    }
    // 9 engine configurations × (queries + exprs + aggs) per seed: the
    // matrix must actually have fanned out, not short-circuited.
    assert!(
        total_checks >= 4 * 50,
        "suspiciously few checks ran: {total_checks}"
    );
}

/// Deterministic replay: the same seed yields the same verdict and the
/// same number of comparisons.
#[test]
fn oracle_is_deterministic_per_seed() {
    let a = check(&Scenario::generate(55), Fault::None);
    let b = check(&Scenario::generate(55), Fault::None);
    assert_eq!(a.checks, b.checks);
    assert_eq!(a.passed(), b.passed());
}

/// An injected bug — ANDNOT operands flipped in the in-memory columnar
/// expression plans — must be caught and shrunk to a minimal reproducer.
#[test]
fn injected_andnot_flip_is_caught_and_shrunk() {
    // Scan a few seeds for one whose workload exposes the flip (an ANDNOT
    // whose operands have asymmetric match sets); the generator makes
    // these common, so a short scan is enough.
    let mut caught = None;
    for seed in 1u64..24 {
        let scenario = Scenario::generate(seed);
        let report = check(&scenario, Fault::FlipAndNot);
        if !report.passed() {
            assert!(
                report
                    .discrepancies
                    .iter()
                    .all(|d| d.engine.starts_with("columnar-mem")),
                "the fault lives in the mem engines only, but got: {}",
                report.discrepancies[0],
            );
            caught = Some(scenario);
            break;
        }
    }
    let scenario = caught.expect("no seed in 1..24 exposed the flipped ANDNOT");

    // Shrinking must preserve the failure while reducing the input.
    let minimized = shrink(&scenario, Fault::FlipAndNot);
    let small = &minimized.scenario;
    assert!(
        !check(small, Fault::FlipAndNot).passed(),
        "shrunk scenario no longer fails"
    );
    assert!(
        small.records.len() <= scenario.records.len(),
        "shrinking grew the record set"
    );
    assert!(
        small.records.len() <= 4,
        "reproducer should be tiny, got {} records",
        small.records.len()
    );
    assert_eq!(
        small.workload_len(),
        1,
        "reproducer should be a single workload item"
    );

    // And the minimal scenario is clean without the fault: the bug is in
    // the injected mutation, not the shrunk data.
    assert!(
        check(small, Fault::None).passed(),
        "shrunk scenario fails even without the fault"
    );
}

/// A short in-process fuzz sweep as a test: every seed in a fixed window
/// passes the oracle.
#[test]
fn fuzz_window_is_clean() {
    for seed in 300u64..312 {
        let report = check(&Scenario::generate(seed), Fault::None);
        assert!(report.passed(), "seed {seed}: {}", report.discrepancies[0]);
    }
}

/// Satellite: IoStats accounting on compressed stores. The same database
/// is written as raw v2 and compressed v3; for every workload query the
/// two must give bit-identical answers with identical *logical* cost
/// counters, while the v3 physical `disk_bytes` — now charged in actual
/// compressed bytes — never exceeds the v2 figure. And on the v3 store,
/// a 3-way sharded run must report exactly the serial stats (physical
/// read counters masked, as they depend on cache interleaving only).
#[test]
fn compressed_store_stats_match_raw_serial_and_sharded() {
    let scenario = Scenario::generate(42);
    let mut mem = GraphStore::load(scenario.universe.clone(), &scenario.records);
    if scenario.view_budget > 0 {
        mem.advise_views(&scenario.queries, scenario.view_budget);
    }
    if scenario.agg_view_budget > 0 {
        let _ = mem.advise_agg_views(&scenario.queries, AggFn::Sum, scenario.agg_view_budget);
    }

    let vfs = Arc::new(FaultVfs::new(0xc0));
    let (v2_dir, v3_dir) = (PathBuf::from("/statsv2"), PathBuf::from("/statsv3"));
    save_store_with_format(vfs.as_ref(), &mem, &v2_dir, &[], &[], FormatVersion::V2).unwrap();
    save_store_with_format(vfs.as_ref(), &mem, &v3_dir, &[], &[], FormatVersion::V3).unwrap();
    let v2 = DiskGraphStore::open_with(&v2_dir, 1 << 20, vfs.clone(), Verify::Checksums).unwrap();
    let v3 = DiskGraphStore::open_with(&v3_dir, 1 << 20, vfs, Verify::Checksums).unwrap();

    let mask_physical = |mut s: graphbi::IoStats| {
        s.disk_reads = 0;
        s.disk_bytes = 0;
        s
    };

    let (mut v2_bytes, mut v3_bytes, mut compared) = (0u64, 0u64, 0u32);
    for q in &scenario.queries {
        let req = QueryRequest::new(q.clone());
        v2.relation().clear_cache();
        v3.relation().clear_cache();
        let (a2, s2) = v2.execute(&req).expect("v2 evaluate");
        let (a3, s3) = v3.execute(&req).expect("v3 evaluate");
        assert_eq!(a3, a2, "answers differ between formats: {q:?}");
        assert_eq!(
            mask_physical(s3),
            mask_physical(s2),
            "logical cost differs between formats: {q:?}"
        );
        assert_eq!(
            s3.disk_reads, s2.disk_reads,
            "cold fetch count differs: {q:?}"
        );
        assert!(
            s3.disk_bytes <= s2.disk_bytes,
            "compressed read larger than raw ({} > {}): {q:?}",
            s3.disk_bytes,
            s2.disk_bytes
        );
        v2_bytes += s2.disk_bytes;
        v3_bytes += s3.disk_bytes;

        let (a3s, s3s) = v3
            .execute(&QueryRequest::new(q.clone()).shards(3))
            .expect("sharded");
        assert_eq!(a3s, a3, "sharded answer differs on compressed store: {q:?}");
        assert_eq!(
            mask_physical(s3s),
            mask_physical(s3),
            "sharded stats differ on compressed store: {q:?}"
        );
        compared += 1;
    }
    assert!(compared >= 3, "too few queries compared: {compared}");
    assert!(
        v3_bytes <= v2_bytes,
        "workload read more compressed bytes ({v3_bytes}) than raw ({v2_bytes})"
    );
}
