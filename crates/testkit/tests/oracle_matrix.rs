//! Fixed-seed smoke runs of the differential matrix, and the
//! fault-injection demonstration: an intentionally broken ANDNOT is
//! caught by the oracle and shrunk to a minimal reproducer.

use graphbi_testkit::{check, shrink, Fault, Scenario};

/// The tier-1 smoke: the full engine × plan-mode × backend matrix agrees
/// with the reference model on several fixed seeds.
#[test]
fn matrix_agrees_on_fixed_seeds() {
    let mut total_checks = 0;
    for seed in [11u64, 23, 37, 101] {
        let scenario = Scenario::generate(seed);
        assert!(
            !scenario.queries.is_empty(),
            "seed {seed} generated no queries"
        );
        let report = check(&scenario, Fault::None);
        assert!(
            report.passed(),
            "seed {seed}: {} discrepancies, first: {}",
            report.discrepancies.len(),
            report.discrepancies[0],
        );
        total_checks += report.checks;
    }
    // 9 engine configurations × (queries + exprs + aggs) per seed: the
    // matrix must actually have fanned out, not short-circuited.
    assert!(
        total_checks >= 4 * 50,
        "suspiciously few checks ran: {total_checks}"
    );
}

/// Deterministic replay: the same seed yields the same verdict and the
/// same number of comparisons.
#[test]
fn oracle_is_deterministic_per_seed() {
    let a = check(&Scenario::generate(55), Fault::None);
    let b = check(&Scenario::generate(55), Fault::None);
    assert_eq!(a.checks, b.checks);
    assert_eq!(a.passed(), b.passed());
}

/// An injected bug — ANDNOT operands flipped in the in-memory columnar
/// expression plans — must be caught and shrunk to a minimal reproducer.
#[test]
fn injected_andnot_flip_is_caught_and_shrunk() {
    // Scan a few seeds for one whose workload exposes the flip (an ANDNOT
    // whose operands have asymmetric match sets); the generator makes
    // these common, so a short scan is enough.
    let mut caught = None;
    for seed in 1u64..24 {
        let scenario = Scenario::generate(seed);
        let report = check(&scenario, Fault::FlipAndNot);
        if !report.passed() {
            assert!(
                report
                    .discrepancies
                    .iter()
                    .all(|d| d.engine.starts_with("columnar-mem")),
                "the fault lives in the mem engines only, but got: {}",
                report.discrepancies[0],
            );
            caught = Some(scenario);
            break;
        }
    }
    let scenario = caught.expect("no seed in 1..24 exposed the flipped ANDNOT");

    // Shrinking must preserve the failure while reducing the input.
    let minimized = shrink(&scenario, Fault::FlipAndNot);
    let small = &minimized.scenario;
    assert!(
        !check(small, Fault::FlipAndNot).passed(),
        "shrunk scenario no longer fails"
    );
    assert!(
        small.records.len() <= scenario.records.len(),
        "shrinking grew the record set"
    );
    assert!(
        small.records.len() <= 4,
        "reproducer should be tiny, got {} records",
        small.records.len()
    );
    assert_eq!(
        small.workload_len(),
        1,
        "reproducer should be a single workload item"
    );

    // And the minimal scenario is clean without the fault: the bug is in
    // the injected mutation, not the shrunk data.
    assert!(
        check(small, Fault::None).passed(),
        "shrunk scenario fails even without the fault"
    );
}

/// A short in-process fuzz sweep as a test: every seed in a fixed window
/// passes the oracle.
#[test]
fn fuzz_window_is_clean() {
    for seed in 300u64..312 {
        let report = check(&Scenario::generate(seed), Fault::None);
        assert!(report.passed(), "seed {seed}: {}", report.discrepancies[0]);
    }
}
