//! Differential oracle runs under forced kernel paths: the full engine ×
//! backend matrix must pass, and direct query execution must return
//! bit-identical answers with identical logical IoStats, whether the
//! scalar or the SIMD kernels served them.
//!
//! This file deliberately holds a SINGLE `#[test]` function: it is its own
//! test binary and therefore its own process, so flipping the
//! process-global `kernels::force` override cannot race another test
//! thread (the unit/property suites use the explicit `*_path` kernel
//! variants instead and never touch the global).

use graphbi::kernels::{self, KernelPath};
use graphbi::{GraphStore, QueryRequest, Session};
use graphbi_testkit::{check, Fault, Scenario};

#[test]
fn oracle_and_answers_identical_under_forced_paths() {
    // 1) The differential matrix passes under both forced paths.
    for path in [KernelPath::Scalar, KernelPath::Simd] {
        kernels::force(Some(path));
        for seed in [11u64, 23] {
            let report = check(&Scenario::generate(seed), Fault::None);
            assert!(
                report.passed(),
                "seed {seed} under forced {}: {} discrepancies, first: {}",
                path.name(),
                report.discrepancies.len(),
                report.discrepancies[0],
            );
        }
    }

    // 2) Direct execution: answers and logical IoStats diffed across the
    //    two forced paths, query by query, on a fixed-seed store.
    let scenario = Scenario::generate(37);
    let store = GraphStore::load(scenario.universe.clone(), &scenario.records);
    let mut compared = 0u32;
    for q in &scenario.queries {
        let req = QueryRequest::new(q.clone());

        kernels::force(Some(KernelPath::Scalar));
        let (ans_scalar, io_scalar) = store.execute(&req).expect("scalar evaluate");

        kernels::force(Some(KernelPath::Simd));
        let (ans_simd, io_simd) = store.execute(&req).expect("simd evaluate");

        assert_eq!(ans_simd, ans_scalar, "answers diverged across paths: {q:?}");
        assert_eq!(
            io_simd, io_scalar,
            "logical IoStats diverged across paths: {q:?}"
        );
        compared += 1;
    }
    assert!(compared >= 3, "too few queries compared: {compared}");

    // 3) Forcing SIMD on a machine without it must degrade to scalar, not
    //    crash; the answers above already proved it stays correct.
    if !kernels::simd_available() {
        assert_eq!(kernels::active(), KernelPath::Scalar);
    }

    kernels::force(None);
}
