//! Fixed-seed runs of the crash-consistency oracle, the teeth test (a
//! deliberately disabled checksum must be caught and shrunk), and the
//! bit-identity check between the in-memory store and its FaultVfs
//! persistence round-trip.

use std::path::PathBuf;
use std::sync::Arc;

use graphbi::disk::{save_store_with, DiskGraphStore};
use graphbi::{AggFn, GraphStore, QueryRequest, Session};
use graphbi_columnstore::{FaultVfs, FormatVersion, Verify};
use graphbi_testkit::{crash, shrink_with, CrashFault, Scenario};

/// The tier-1 crash smoke: several fixed seeds survive the whole
/// crash-point × fault-kind sweep and the corruption-at-rest flips, and
/// the sweep is demonstrably large (hundreds of seeded crash points).
/// These saves are format v3 (the writer default), so every crash point
/// and byte flip here runs over compressed files.
#[test]
fn crash_sweep_is_clean_on_fixed_seeds() {
    let mut crash_points = 0;
    let mut flip_points = 0;
    for seed in [7u64, 42, 43] {
        let report = crash::check(&Scenario::generate(seed), CrashFault::None);
        assert!(
            report.passed(),
            "seed {seed}: {} broken guarantees, first: {}",
            report.failures.len(),
            report.failures[0],
        );
        crash_points += report.crash_points;
        flip_points += report.flip_points;
    }
    assert!(
        crash_points >= 200,
        "suspiciously small crash sweep: {crash_points} points"
    );
    assert!(
        flip_points >= 50,
        "suspiciously small flip sweep: {flip_points} flips"
    );
}

/// The crash sweep pinned to the legacy v2 format: a backward-compatible
/// store keeps exactly the same guarantees, through the same oracle.
#[test]
fn crash_sweep_is_clean_on_v2_format() {
    let report = crash::check_format(&Scenario::generate(42), CrashFault::None, FormatVersion::V2);
    assert!(
        report.passed(),
        "v2 sweep: {} broken guarantees, first: {}",
        report.failures.len(),
        report.failures[0],
    );
    assert!(
        report.crash_points >= 60,
        "suspiciously small v2 crash sweep: {} points",
        report.crash_points
    );
}

/// The WAL crash oracle on fixed seeds: the live ingest sequence (open,
/// two commits, one compaction) crashed at every VFS operation under
/// every fault kind always recovers to an exact commit boundary, and the
/// at-rest flip sweep over WAL frames and the fold sidecar is clean.
#[test]
fn wal_crash_sweep_is_clean_on_fixed_seeds() {
    let mut crash_points = 0;
    let mut flip_points = 0;
    for seed in [7u64, 42, 43] {
        let report = crash::check_wal(&Scenario::generate(seed), CrashFault::None);
        assert!(
            report.passed(),
            "seed {seed}: {} broken WAL guarantees, first: {}",
            report.failures.len(),
            report.failures[0],
        );
        crash_points += report.crash_points;
        flip_points += report.flip_points;
    }
    assert!(
        crash_points >= 200,
        "suspiciously small WAL crash sweep: {crash_points} points"
    );
    assert!(
        flip_points >= 50,
        "suspiciously small WAL flip sweep: {flip_points} flips"
    );
}

/// Replaying a seed through the WAL oracle yields the same verdict and
/// the same sweep size.
#[test]
fn wal_oracle_is_deterministic_per_seed() {
    let a = crash::check_wal(&Scenario::generate(42), CrashFault::None);
    let b = crash::check_wal(&Scenario::generate(42), CrashFault::None);
    assert_eq!(a.crash_points, b.crash_points);
    assert_eq!(a.flip_points, b.flip_points);
    assert_eq!(a.passed(), b.passed());
}

/// Replaying a seed yields the same verdict and the same sweep size.
#[test]
fn crash_oracle_is_deterministic_per_seed() {
    let a = crash::check(&Scenario::generate(42), CrashFault::None);
    let b = crash::check(&Scenario::generate(42), CrashFault::None);
    assert_eq!(a.crash_points, b.crash_points);
    assert_eq!(a.flip_points, b.flip_points);
    assert_eq!(a.passed(), b.passed());
}

/// The teeth test: reopening with payload checksums disabled
/// (`Verify::TrustDisk` via [`CrashFault::DropCrc`]) must let some
/// flipped byte silently change an answer — which the oracle reports and
/// the shrinker reduces, proving the harness actually exercises the
/// checksums.
#[test]
fn disabled_checksums_are_caught_and_shrunk() {
    // Scan a few seeds for one whose workload fetches a flipped byte;
    // the flip sweep targets measure payloads, so most seeds qualify.
    let mut caught = None;
    for seed in 42u64..52 {
        let scenario = Scenario::generate(seed);
        let report = crash::check(&scenario, CrashFault::DropCrc);
        if !report.passed() {
            assert!(
                report
                    .failures
                    .iter()
                    .all(|f| f.site.starts_with("flip") || f.site.contains('@')),
                "unexpected failure shape: {}",
                report.failures[0],
            );
            caught = Some(scenario);
            break;
        }
    }
    let scenario = caught.expect("no seed in 42..52 exposed the disabled checksum");

    let minimized = shrink_with(&scenario, |s| {
        !crash::check(s, CrashFault::DropCrc).passed()
    });
    let small = &minimized.scenario;
    assert!(
        !crash::check(small, CrashFault::DropCrc).passed(),
        "shrunk scenario no longer fails"
    );
    assert!(
        small.records.len() <= scenario.records.len(),
        "shrinking grew the record set"
    );

    // With checksums back on, the same scenario is clean: the bug is the
    // disabled verification, not the store.
    assert!(
        crash::check(small, CrashFault::None).passed(),
        "shrunk scenario fails even with checksums on"
    );
}

/// Satellite: a store saved through [`FaultVfs`] with no fault armed and
/// reopened from it answers the whole workload *bit-identically* to the
/// in-memory store it came from — same records, same measures, same
/// aggregate floats, no tolerance.
#[test]
fn faultvfs_reload_answers_bit_identical_to_mem() {
    let scenario = Scenario::generate(42);
    let mut mem = GraphStore::load(scenario.universe.clone(), &scenario.records);
    if scenario.view_budget > 0 {
        mem.advise_views(&scenario.queries, scenario.view_budget);
    }
    if scenario.agg_view_budget > 0 {
        let _ = mem.advise_agg_views(&scenario.queries, AggFn::Sum, scenario.agg_view_budget);
    }

    let vfs = Arc::new(FaultVfs::new(0xFA7E));
    let dir = PathBuf::from("/bitident");
    save_store_with(vfs.as_ref(), &mem, &dir).expect("save through FaultVfs");
    let disk = DiskGraphStore::open_with(&dir, 64 << 10, vfs, Verify::Checksums)
        .expect("reopen through FaultVfs");
    assert_eq!(
        disk.relation().format_version(),
        3,
        "the default writer must emit format v3"
    );

    let mut requests: Vec<QueryRequest> = Vec::new();
    for q in &scenario.queries {
        requests.push(QueryRequest::new(q.clone()));
        requests.push(QueryRequest::new(q.clone()).oblivious());
    }
    for e in &scenario.exprs {
        requests.push(QueryRequest::expr(e.clone()));
    }
    for a in &scenario.aggs {
        requests.push(QueryRequest::aggregate(a.clone()));
    }

    let mut compared = 0;
    for (i, req) in requests.iter().enumerate() {
        match (mem.execute(req), disk.execute(req)) {
            (Ok((want, _)), Ok((got, _))) => {
                assert_eq!(got, want, "request[{i}] differs between mem and reload");
                compared += 1;
            }
            (Err(_), Err(_)) => {} // e.g. cyclic aggregation: both refuse
            (Ok(_), Err(e)) => panic!("request[{i}] fails only on disk: {e}"),
            (Err(e), Ok(_)) => panic!("request[{i}] fails only in memory: {e}"),
        }
    }
    assert!(compared >= 8, "too few comparable requests: {compared}");
}
