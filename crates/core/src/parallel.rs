//! Parallel execution primitives.
//!
//! Everything on the query path takes `&self` — bitmap conjunctions and
//! column gathers are read-only — so work parallelizes trivially across OS
//! threads with a shared work queue. Two layers build on [`run_indexed`]:
//! horizontal record sharding inside one query (`QueryRequest::shards`) and
//! workload-level fan-out across a batch
//! ([`crate::Session::evaluate_many`]).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0..n)` on a shared atomic work queue, preserving index order in
/// the output.
///
/// `threads` is a ceiling, not a promise: it is clamped to the task count
/// and to the machine's available parallelism — extra threads beyond the
/// core count only add scheduling overhead, never throughput. With an
/// effective parallelism of one the queue degenerates to a plain
/// sequential loop (same results, same order, no thread spawn).
///
/// The caller's tracing collector (if one is installed) is re-installed in
/// every worker: `graphbi_obs`'s collector is thread-local, so without the
/// hand-off the spans of sharded work would vanish. Workers record where
/// the spawning query records, and the installation dies with the worker.
pub fn run_indexed<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let threads = threads.min(cores);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    let collector = graphbi_obs::current();
    let next = AtomicUsize::new(0);
    let slots: parking_lot::Mutex<Vec<Option<T>>> =
        parking_lot::Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _tracing = collector.as_ref().map(graphbi_obs::install);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Do the work outside the lock; the lock only guards
                    // the cheap slot write.
                    let out = f(i);
                    slots.lock()[i] = Some(out);
                }
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{QueryRequest, Session};
    use crate::GraphStore;
    use graphbi_graph::{AggFn, EdgeId, GraphQuery, PathAggQuery, RecordBuilder, Universe};

    fn store() -> (GraphStore, Vec<GraphQuery>) {
        let mut u = Universe::new();
        let edges: Vec<EdgeId> = (0..10)
            .map(|i| u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1)))
            .collect();
        let mut records = Vec::new();
        for r in 0..200u32 {
            let mut b = RecordBuilder::new();
            for (i, &e) in edges.iter().enumerate() {
                if !(r as usize + i).is_multiple_of(3) {
                    b.add(e, f64::from(r) + i as f64);
                }
            }
            records.push(b.build());
        }
        let queries: Vec<GraphQuery> = (0..8)
            .map(|i| GraphQuery::from_edges(edges[i..i + 2].to_vec()))
            .collect();
        (GraphStore::load(u, &records), queries)
    }

    #[test]
    fn run_indexed_preserves_order() {
        let out = run_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 0, |i| i), vec![0]);
    }

    #[test]
    fn batched_workload_equals_sequential() {
        let (store, qs) = store();
        let reqs: Vec<QueryRequest> = qs
            .iter()
            .map(|q| QueryRequest::new(q.clone()).shards(4))
            .collect();
        let batch = store.evaluate_many(&reqs).unwrap();
        assert_eq!(batch.len(), reqs.len());
        for (req, (resp, stats)) in reqs.iter().zip(&batch) {
            let (lone, lone_stats) = store
                .execute(&QueryRequest::new(match &req.kind {
                    crate::session::RequestKind::Graph(q) => q.clone(),
                    _ => unreachable!(),
                }))
                .unwrap();
            assert_eq!(resp, &lone);
            assert_eq!(stats, &lone_stats);
        }
    }

    #[test]
    fn batched_aggregation_equals_sequential() {
        let (store, qs) = store();
        let reqs: Vec<QueryRequest> = qs
            .iter()
            .map(|q| QueryRequest::aggregate(PathAggQuery::new(q.clone(), AggFn::Sum)))
            .collect();
        let batch = store.evaluate_many(&reqs).unwrap();
        for (req, (resp, _)) in reqs.iter().zip(&batch) {
            let (lone, _) = store.execute(req).unwrap();
            assert_eq!(resp, &lone);
        }
    }
}
