//! Parallel workload execution.
//!
//! Everything on the query path takes `&self` — bitmap conjunctions and
//! column gathers are read-only — so a workload parallelizes trivially
//! across OS threads with a shared work queue. The paper runs workloads of
//! 100 queries back to back; this is the multi-core equivalent.

use std::sync::atomic::{AtomicUsize, Ordering};

use graphbi_columnstore::IoStats;
use graphbi_graph::{GraphError, GraphQuery, PathAggQuery, PathAggResult, QueryResult};

use crate::GraphStore;

impl GraphStore {
    /// Evaluates a workload across `threads` worker threads, returning
    /// per-query results in workload order.
    ///
    /// `threads == 0` or `1` degrades to the sequential loop.
    pub fn evaluate_many(
        &self,
        queries: &[GraphQuery],
        threads: usize,
    ) -> Vec<(QueryResult, IoStats)> {
        run_indexed(queries.len(), threads, |i| self.evaluate(&queries[i]))
    }

    /// Parallel counterpart of [`GraphStore::path_aggregate`] over a
    /// workload; fails if any query graph is cyclic.
    pub fn path_aggregate_many(
        &self,
        queries: &[PathAggQuery],
        threads: usize,
    ) -> Result<Vec<(PathAggResult, IoStats)>, GraphError> {
        run_indexed(queries.len(), threads, |i| self.path_aggregate(&queries[i]))
            .into_iter()
            .collect()
    }
}

/// Runs `f(0..n)` on a shared atomic work queue, preserving index order in
/// the output.
pub fn run_indexed<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    let slots: parking_lot::Mutex<Vec<Option<T>>> =
        parking_lot::Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Do the work outside the lock; the lock only guards the
                // cheap slot write.
                let out = f(i);
                slots.lock()[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{AggFn, EdgeId, RecordBuilder, Universe};

    fn store() -> (GraphStore, Vec<GraphQuery>) {
        let mut u = Universe::new();
        let edges: Vec<EdgeId> = (0..10)
            .map(|i| u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1)))
            .collect();
        let mut records = Vec::new();
        for r in 0..200u32 {
            let mut b = RecordBuilder::new();
            for (i, &e) in edges.iter().enumerate() {
                if !(r as usize + i).is_multiple_of(3) {
                    b.add(e, f64::from(r) + i as f64);
                }
            }
            records.push(b.build());
        }
        let queries: Vec<GraphQuery> = (0..8)
            .map(|i| GraphQuery::from_edges(edges[i..i + 2].to_vec()))
            .collect();
        (GraphStore::load(u, &records), queries)
    }

    #[test]
    fn parallel_equals_sequential() {
        let (store, qs) = store();
        let seq = store.evaluate_many(&qs, 1);
        let par = store.evaluate_many(&qs, 4);
        assert_eq!(seq.len(), par.len());
        for ((r1, s1), (r2, s2)) in seq.iter().zip(&par) {
            assert_eq!(r1, r2);
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn parallel_aggregation_equals_sequential() {
        let (store, qs) = store();
        let paqs: Vec<PathAggQuery> = qs
            .iter()
            .map(|q| PathAggQuery::new(q.clone(), AggFn::Sum))
            .collect();
        let seq = store.path_aggregate_many(&paqs, 1).unwrap();
        let par = store.path_aggregate_many(&paqs, 3).unwrap();
        for ((r1, _), (r2, _)) in seq.iter().zip(&par) {
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn zero_threads_and_empty_workload() {
        let (store, qs) = store();
        assert_eq!(store.evaluate_many(&[], 4).len(), 0);
        let one = store.evaluate_many(&qs[..1], 0);
        assert_eq!(one.len(), 1);
    }
}
