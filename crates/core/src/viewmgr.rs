//! The view catalog: definitions of materialized views and their
//! construction against the master relation.

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::{AggViewId, ColumnBuilder, IoStats, MasterRelation, ViewId};
use graphbi_graph::{AggFn, AggState, EdgeId};

/// Which distributive sub-aggregate an aggregate view's column stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BaseKind {
    /// Stores the sum of the path's measures.
    Sum,
    /// Stores the minimum.
    Min,
    /// Stores the maximum.
    Max,
}

/// The sub-aggregate a function needs. AVG decomposes into sum + the view's
/// static element count (§5.1.2's "constituent distributive sub-aggregates")
/// and COUNT needs only the count, which every view kind carries.
pub(crate) fn base_kind(f: AggFn) -> BaseKind {
    match f {
        AggFn::Sum | AggFn::Avg | AggFn::Count => BaseKind::Sum,
        AggFn::Min => BaseKind::Min,
        AggFn::Max => BaseKind::Max,
    }
}

/// True when a view storing `view` sub-aggregates can answer a query using
/// function `query`.
pub(crate) fn compatible(view: BaseKind, query: AggFn) -> bool {
    query == AggFn::Count || base_kind(query) == view
}

/// A materialized graph view: one precomputed bitmap column (§5.1.1).
#[derive(Clone, Debug)]
pub struct GraphViewDef {
    /// Sorted edge ids of the view subgraph.
    pub edges: Vec<EdgeId>,
    /// Storage handle of the bitmap column.
    pub(crate) id: ViewId,
}

/// A materialized aggregate graph view: a pre-aggregated measure column plus
/// the path's bitmap (§5.1.2).
#[derive(Clone, Debug)]
pub struct AggViewDef {
    /// The path's consecutive edges, in path order.
    pub edges: Vec<EdgeId>,
    /// The aggregate function the view was built for.
    pub func: AggFn,
    /// Which sub-aggregate the column stores.
    pub(crate) kind: BaseKind,
    /// Storage handle of the `(m_p, b_p)` column pair.
    pub(crate) id: AggViewId,
}

impl AggViewDef {
    /// Reconstructs the distributive state of this view's path segment from
    /// the stored column value.
    ///
    /// Fields not covered by the view's kind are set to the merge identity,
    /// so merging never pollutes the field a *compatible* query reads.
    pub(crate) fn state_of(&self, value: f64) -> AggState {
        let mut s = AggState::empty();
        s.count = self.edges.len() as u64;
        match self.kind {
            BaseKind::Sum => s.sum = value,
            BaseKind::Min => s.min = value,
            BaseKind::Max => s.max = value,
        }
        s
    }
}

/// All materialized views of a store.
#[derive(Default)]
pub(crate) struct ViewCatalog {
    pub graph_views: Vec<GraphViewDef>,
    pub agg_views: Vec<AggViewDef>,
}

impl ViewCatalog {
    /// Edge lists of the graph views, for the rewriter.
    pub fn graph_view_edges(&self) -> Vec<Vec<EdgeId>> {
        self.graph_views.iter().map(|v| v.edges.clone()).collect()
    }

    /// Edge sequences of the aggregate views compatible with `func`, paired
    /// with their catalog indices.
    pub fn compatible_agg_views(&self, func: AggFn) -> (Vec<usize>, Vec<Vec<EdgeId>>) {
        let mut idx = Vec::new();
        let mut seqs = Vec::new();
        for (i, v) in self.agg_views.iter().enumerate() {
            if compatible(v.kind, func) {
                idx.push(i);
                seqs.push(v.edges.clone());
            }
        }
        (idx, seqs)
    }
}

/// The column value a view of `kind` stores for a path whose measures fold
/// to `state`.
pub(crate) fn stored_value(kind: BaseKind, state: &AggState) -> f64 {
    match kind {
        BaseKind::Sum => state.sum,
        BaseKind::Min => state.min,
        BaseKind::Max => state.max,
    }
}

/// Materializes a graph view: AND of the edge bitmaps, stored as a new
/// bitmap column. Not charged to any query's [`IoStats`] — materialization
/// is offline work.
pub(crate) fn build_graph_view(relation: &mut MasterRelation, edges: &[EdgeId]) -> ViewId {
    let mut scratch = IoStats::new();
    let bitmaps: Vec<&Bitmap> = edges
        .iter()
        .map(|&e| relation.edge_bitmap(e, &mut scratch))
        .collect();
    let mut bitmap = Bitmap::and_many(bitmaps);
    bitmap.optimize();
    relation.add_view_bitmap(bitmap)
}

/// Materializes an aggregate graph view for `func` along the ordered path
/// `edges`: computes `b_p` (the path's bitmap) and `m_p` (the distributive
/// sub-aggregate of the path's measures per containing record).
pub(crate) fn build_agg_view(
    relation: &mut MasterRelation,
    edges: &[EdgeId],
    func: AggFn,
) -> (AggViewId, BaseKind) {
    let kind = base_kind(func);
    let mut scratch = IoStats::new();
    let bitmaps: Vec<&Bitmap> = edges
        .iter()
        .map(|&e| relation.edge_bitmap(e, &mut scratch))
        .collect();
    let bp = Bitmap::and_many(bitmaps);

    // Gather each edge's measures aligned to b_p and fold them.
    let mut states = vec![AggState::empty(); bp.len() as usize];
    for &e in edges {
        let col = relation.edge_measures(e, &mut scratch);
        for (i, v) in col.gather(&bp).into_iter().enumerate() {
            states[i].push(v);
        }
    }
    let mut builder = ColumnBuilder::new();
    for (rid, state) in bp.iter().zip(states) {
        builder.push(rid, stored_value(kind, &state));
    }
    (relation.add_agg_view(builder.finish()), kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_kinds_and_compatibility() {
        assert_eq!(base_kind(AggFn::Sum), BaseKind::Sum);
        assert_eq!(base_kind(AggFn::Avg), BaseKind::Sum);
        assert_eq!(base_kind(AggFn::Count), BaseKind::Sum);
        assert_eq!(base_kind(AggFn::Min), BaseKind::Min);
        assert!(compatible(BaseKind::Sum, AggFn::Avg));
        assert!(compatible(BaseKind::Min, AggFn::Min));
        assert!(!compatible(BaseKind::Min, AggFn::Sum));
        // COUNT only needs the static element count: any view serves it.
        assert!(compatible(BaseKind::Max, AggFn::Count));
    }

    #[test]
    fn state_reconstruction_uses_identities() {
        let v = AggViewDef {
            edges: vec![EdgeId(0), EdgeId(1), EdgeId(2)],
            func: AggFn::Sum,
            kind: BaseKind::Sum,
            id: AggViewId(0),
        };
        let s = v.state_of(7.5);
        assert_eq!(s.sum, 7.5);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, f64::INFINITY);
        assert_eq!(s.max, f64::NEG_INFINITY);
        // Merging with a real state keeps sum/count exact.
        let mut other = AggState::of(2.5);
        other.merge(&s);
        assert_eq!(other.finalize(AggFn::Sum), Some(10.0));
        assert_eq!(other.finalize(AggFn::Count), Some(4.0));
    }
}
