//! The unified query API: one request type, one trait, every backend.
//!
//! Evaluation used to sprawl into `evaluate`/`evaluate_with`,
//! `path_aggregate`/`path_aggregate_with`, … pairs duplicated across
//! [`crate::GraphStore`], [`crate::disk::DiskGraphStore`] and
//! [`crate::SharedStore`]. A [`QueryRequest`] folds the three knobs — the
//! query itself, the [`EvalOptions`] plan mode and the record-shard count —
//! into one builder, and the [`Session`] trait is the single entry point
//! every backend implements:
//!
//! ```
//! use graphbi::{EvalOptions, GraphQuery, GraphStore, QueryRequest, Session, Universe};
//! use graphbi_graph::RecordBuilder;
//!
//! let mut u = Universe::new();
//! let ad = u.edge_by_names("A", "D");
//! let mut r = RecordBuilder::new();
//! r.add(ad, 3.0);
//! let store = GraphStore::load(u, &[r.build()]);
//!
//! let req = QueryRequest::new(GraphQuery::from_edges(vec![ad]))
//!     .opts(EvalOptions::oblivious())
//!     .shards(8);
//! let (response, stats) = store.execute(&req)?;
//! assert_eq!(response.into_records().unwrap().records, vec![0]);
//! assert_eq!(stats.bitmap_columns, 1);
//! # Ok::<(), graphbi::SessionError>(())
//! ```
//!
//! Batched workloads go through [`Session::evaluate_many`], which backends
//! override to share work across the batch (duplicate-request elimination on
//! the in-memory store, shared column fetches on the disk store, a single
//! read-lock snapshot on [`crate::SharedStore`]).

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::IoStats;
use graphbi_graph::{GraphError, GraphQuery, PathAggQuery, PathAggResult, QueryExpr, QueryResult};

use crate::disk::DiskError;
use crate::engine::EvalOptions;

/// The payload of a [`QueryRequest`]: which kind of question is being asked.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestKind {
    /// Full graph-query evaluation: matching records plus their measures.
    Graph(GraphQuery),
    /// A logical combination of graph queries, answered as a record set.
    Expr(QueryExpr),
    /// Path aggregation along the query's maximal paths.
    Aggregate(PathAggQuery),
}

/// One fully-specified query: payload, plan options and parallelism.
///
/// Built fluently: `QueryRequest::new(q).opts(EvalOptions::oblivious())
/// .shards(8)`. Defaults are view-assisted planning and serial (1-shard)
/// execution, matching the classic `evaluate(&q)` behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// What is being asked.
    pub kind: RequestKind,
    /// Plan options ([`EvalOptions::oblivious`] ignores materialized views).
    pub options: EvalOptions,
    /// Number of horizontal record shards to evaluate on worker threads;
    /// `0` or `1` is the serial path. Results are independent of the shard
    /// count — bitmaps bit-identical, aggregate values computed in the same
    /// per-record order.
    pub shards: usize,
}

impl QueryRequest {
    /// A graph-query request with default options, serial execution.
    pub fn new(query: GraphQuery) -> QueryRequest {
        QueryRequest::of(RequestKind::Graph(query))
    }

    /// A logical-expression request.
    pub fn expr(expr: QueryExpr) -> QueryRequest {
        QueryRequest::of(RequestKind::Expr(expr))
    }

    /// A path-aggregation request.
    pub fn aggregate(query: PathAggQuery) -> QueryRequest {
        QueryRequest::of(RequestKind::Aggregate(query))
    }

    pub(crate) fn of(kind: RequestKind) -> QueryRequest {
        QueryRequest {
            kind,
            options: EvalOptions::default(),
            shards: 1,
        }
    }

    /// Sets the plan options.
    pub fn opts(mut self, options: EvalOptions) -> QueryRequest {
        self.options = options;
        self
    }

    /// Shorthand for `.opts(EvalOptions::oblivious())`.
    pub fn oblivious(self) -> QueryRequest {
        self.opts(EvalOptions::oblivious())
    }

    /// Sets the record-shard count (`0`/`1` → serial).
    pub fn shards(mut self, shards: usize) -> QueryRequest {
        self.shards = shards;
        self
    }
}

/// The answer to a [`QueryRequest`], mirroring its [`RequestKind`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`RequestKind::Graph`].
    Records(QueryResult),
    /// Answer to [`RequestKind::Expr`].
    Matches(Bitmap),
    /// Answer to [`RequestKind::Aggregate`].
    Aggregates(PathAggResult),
}

impl Response {
    /// The graph-query result, if this answered a [`RequestKind::Graph`].
    pub fn into_records(self) -> Option<QueryResult> {
        match self {
            Response::Records(r) => Some(r),
            _ => None,
        }
    }

    /// The match set, if this answered a [`RequestKind::Expr`].
    pub fn into_matches(self) -> Option<Bitmap> {
        match self {
            Response::Matches(b) => Some(b),
            _ => None,
        }
    }

    /// The aggregation result, if this answered a
    /// [`RequestKind::Aggregate`].
    pub fn into_aggregates(self) -> Option<PathAggResult> {
        match self {
            Response::Aggregates(r) => Some(r),
            _ => None,
        }
    }
}

/// Errors from [`Session`] execution, covering every backend.
#[derive(Debug)]
pub enum SessionError {
    /// Query-model failure (e.g. cyclic path aggregation).
    Graph(GraphError),
    /// Disk-backend failure.
    Disk(DiskError),
    /// The operation is not supported by this backend.
    Unsupported(&'static str),
}

impl SessionError {
    /// The stable [`ErrorCode`](crate::ErrorCode) classifying this error
    /// (see [`crate::errcode`]) — what travels on the wire.
    pub fn code(&self) -> crate::ErrorCode {
        crate::errcode::Coded::code(self)
    }

    /// True when the error reports damaged or partial on-disk state — a
    /// 3xx-class [`ErrorCode`](crate::ErrorCode).
    pub fn is_corruption(&self) -> bool {
        self.code().is_corruption()
    }

    /// True when the failure is environmental and the identical request
    /// may succeed on retry — a 2xx-class [`ErrorCode`](crate::ErrorCode).
    pub fn is_transient(&self) -> bool {
        self.code().is_transient()
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Graph(e) => write!(f, "query: {e}"),
            SessionError::Disk(e) => write!(f, "disk: {e}"),
            SessionError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<GraphError> for SessionError {
    fn from(e: GraphError) -> Self {
        SessionError::Graph(e)
    }
}

impl From<DiskError> for SessionError {
    fn from(e: DiskError) -> Self {
        SessionError::Disk(e)
    }
}

/// A backend that answers [`QueryRequest`]s.
///
/// Implemented by [`crate::GraphStore`] (in-memory),
/// [`crate::disk::DiskGraphStore`] (disk-resident) and
/// [`crate::SharedStore`] (concurrent). Every implementation returns the
/// same answers for the same database — the differential test matrix in
/// `graphbi-testkit` drives them all through this trait.
pub trait Session {
    /// Executes one request.
    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError>;

    /// Executes a workload, one result per request in order.
    ///
    /// The default is a serial loop; backends override it to share work
    /// across the batch. Answers are always identical to executing each
    /// request alone (duplicated requests report the cost of their first
    /// occurrence).
    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        requests.iter().map(|r| self.execute(r)).collect()
    }

    /// `EXPLAIN ANALYZE`: executes `request` under a private span
    /// collector and returns the answer plus its [`crate::Profile`].
    ///
    /// Part of the trait so profiling needs no backend-specific entry
    /// point; backends override it to report their own backend label (and,
    /// on disk, column-cache deltas). Tracing never changes answers or
    /// logical [`IoStats`].
    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        crate::explain::profile_request(self, "session", None, request)
    }
}

/// Deduplicated batch order: returns `(firsts, assign)` where `firsts`
/// holds the index of each distinct request's first occurrence and
/// `assign[i]` is the position in `firsts` answering request `i`.
pub(crate) fn dedup_requests(requests: &[QueryRequest]) -> (Vec<usize>, Vec<usize>) {
    let mut firsts: Vec<usize> = Vec::new();
    let mut assign: Vec<usize> = Vec::with_capacity(requests.len());
    for (i, r) in requests.iter().enumerate() {
        match firsts.iter().position(|&j| requests[j] == *r) {
            Some(p) => assign.push(p),
            None => {
                assign.push(firsts.len());
                firsts.push(i);
            }
        }
    }
    (firsts, assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::AggFn;

    fn q(ids: &[u32]) -> GraphQuery {
        GraphQuery::from_edges(ids.iter().map(|&i| graphbi_graph::EdgeId(i)).collect())
    }

    #[test]
    fn builder_sets_all_knobs() {
        let r = QueryRequest::new(q(&[1, 2])).oblivious().shards(8);
        assert_eq!(r.shards, 8);
        assert!(!r.options.use_views);
        assert!(matches!(r.kind, RequestKind::Graph(_)));
        let a = QueryRequest::aggregate(PathAggQuery::new(q(&[1]), AggFn::Sum));
        assert!(matches!(a.kind, RequestKind::Aggregate(_)));
        assert_eq!(a.shards, 1);
        assert!(a.options.use_views);
    }

    #[test]
    fn response_accessors_match_variants() {
        let m = Response::Matches(Bitmap::new());
        assert!(m.clone().into_matches().is_some());
        assert!(m.into_records().is_none());
    }

    #[test]
    fn dedup_assigns_duplicates_to_first() {
        let reqs = vec![
            QueryRequest::new(q(&[1])),
            QueryRequest::new(q(&[2])),
            QueryRequest::new(q(&[1])),
            QueryRequest::new(q(&[1])).shards(4), // different knobs: distinct
        ];
        let (firsts, assign) = dedup_requests(&reqs);
        assert_eq!(firsts, vec![0, 1, 3]);
        assert_eq!(assign, vec![0, 1, 0, 2]);
    }
}
