#![warn(missing_docs)]

//! # graphbi — graph analytics on massive collections of small graphs
//!
//! A from-scratch Rust implementation of the EDBT 2014 framework of Bleco &
//! Kotidis: business-intelligence analytics over *collections* of small,
//! named-entity graph records (supply chains, workflows, service
//! provisioning), hosted in a column store with bitmap indexing and
//! materialized graph views.
//!
//! The public entry point is [`GraphStore`]:
//!
//! ```
//! use graphbi::GraphStore;
//! use graphbi_graph::{AggFn, GraphQuery, PathAggQuery, RecordBuilder, Universe};
//!
//! // A universe of named entities shared by records and queries.
//! let mut universe = Universe::new();
//! let ad = universe.edge_by_names("A", "D");
//! let de = universe.edge_by_names("D", "E");
//!
//! // Two delivery records with shipping-time measures.
//! let mut r1 = RecordBuilder::new();
//! r1.add(ad, 3.0).add(de, 4.0);
//! let mut r2 = RecordBuilder::new();
//! r2.add(ad, 5.0);
//! let records = vec![r1.build(), r2.build()];
//!
//! let mut store = GraphStore::load(universe, &records);
//!
//! // Which orders went A→D→E, and how long did each leg take?
//! let q = GraphQuery::from_edges(vec![ad, de]);
//! let (result, _stats) = store.evaluate(&q);
//! assert_eq!(result.records, vec![0]);
//! assert_eq!(result.row(0), &[3.0, 4.0]);
//!
//! // Total delivery time along the path, per matching record.
//! let (agg, _) = store.path_aggregate(&PathAggQuery::new(q, AggFn::Sum)).unwrap();
//! assert_eq!(agg.row(0), &[7.0]);
//! ```
//!
//! ## Architecture
//!
//! * Storage: one sparse measure column + bitmap column per edge id of the
//!   universe, vertically partitioned ([`graphbi_columnstore`]).
//! * Structural evaluation: a graph query is the conjunction of its edges'
//!   bitmaps; logical combinators map to bitmap algebra ([`QueryExpr`]).
//! * Views: [`GraphStore::materialize_graph_view`] precomputes a subgraph's
//!   bitmap; [`GraphStore::materialize_agg_view`] additionally stores a
//!   path's pre-aggregated measure. [`GraphStore::advise_views`] /
//!   [`GraphStore::advise_agg_views`] run the paper's greedy extended
//!   set-cover selection over a workload, and every evaluation rewrites the
//!   incoming query over whatever views exist.

pub mod disk;
mod engine;
pub mod errcode;
mod explain;
mod groups;
pub mod mvcc;
pub mod parallel;
pub mod ql;
mod session;
mod shared;
mod statistics;
mod store;
mod topk;
mod viewmgr;
mod wire;

pub use engine::EvalOptions;
pub use errcode::{Coded, ErrorCode};
pub use explain::{PhaseStat, Plan, Profile, PHASE_NAMES};
pub use groups::GroupIndex;
pub use mvcc::{MvccStore, Snapshot};
pub use session::{QueryRequest, RequestKind, Response, Session, SessionError};
pub use shared::{SharedSnapshot, SharedStore};
pub use statistics::{EdgeSelectivity, StoreStatistics};
pub use store::GraphStore;
pub use topk::RankedRecord;
pub use viewmgr::{AggViewDef, GraphViewDef};
pub use wire::WireError;

// The vocabulary types users need alongside the store.
pub use graphbi_bitmap::kernels;
pub use graphbi_bitmap::{Bitmap, RecordId};
pub use graphbi_columnstore::IoStats;
pub use graphbi_graph::{
    floats_close, AggFn, EdgeId, GraphError, GraphQuery, NodeId, PathAggQuery, PathAggResult,
    QueryExpr, QueryResult, Universe,
};
