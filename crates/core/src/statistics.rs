//! Store statistics: the ANALYZE-style summaries a BI deployment watches.

use graphbi_columnstore::IoStats;
use graphbi_graph::EdgeId;

use crate::GraphStore;

/// A summary of the loaded collection.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreStatistics {
    /// Number of records.
    pub records: u64,
    /// Number of edge columns (the universe's width at load).
    pub edge_columns: usize,
    /// Total non-NULL measures (Table 2's headline number).
    pub measures: u64,
    /// Mean fraction of the edge universe present per record.
    pub density: f64,
    /// The most frequent edge and its record count.
    pub hottest_edge: Option<(EdgeId, u64)>,
    /// Number of edges present in no record at all.
    pub empty_edges: usize,
    /// Resident bytes (base columns + views).
    pub resident_bytes: usize,
    /// Materialized graph / aggregate views.
    pub views: (usize, usize),
}

impl StoreStatistics {
    /// Renders a compact report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "records          {}", self.records);
        let _ = writeln!(out, "edge columns     {}", self.edge_columns);
        let _ = writeln!(out, "measures         {}", self.measures);
        let _ = writeln!(out, "record density   {:.2}%", self.density * 100.0);
        if let Some((e, n)) = self.hottest_edge {
            let _ = writeln!(out, "hottest edge     #{} in {} records", e.0, n);
        }
        let _ = writeln!(out, "empty edges      {}", self.empty_edges);
        let _ = writeln!(out, "resident bytes   {}", self.resident_bytes);
        let _ = write!(
            out,
            "views            {} graph, {} aggregate",
            self.views.0, self.views.1
        );
        out
    }
}

/// Per-edge selectivity: fraction of records containing the edge, the
/// quantity a cost-based optimizer sorts join orders by.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeSelectivity {
    /// The edge.
    pub edge: EdgeId,
    /// Records containing it.
    pub records: u64,
    /// `records / total records`.
    pub selectivity: f64,
}

impl GraphStore {
    /// Computes collection statistics (one pass over the bitmap
    /// cardinalities; not charged to any query).
    pub fn statistics(&self) -> StoreStatistics {
        let mut scratch = IoStats::new();
        let records = self.record_count();
        let edge_columns = self.relation().edge_count();
        let mut measures = 0u64;
        let mut hottest: Option<(EdgeId, u64)> = None;
        let mut empty = 0usize;
        for i in 0..edge_columns {
            let e = EdgeId(u32::try_from(i).expect("edge index fits u32"));
            let n = self.relation().edge_bitmap(e, &mut scratch).len();
            measures += n;
            if n == 0 {
                empty += 1;
            }
            if hottest.is_none_or(|(_, h)| n > h) {
                hottest = Some((e, n));
            }
        }
        let density = if records == 0 || edge_columns == 0 {
            0.0
        } else {
            measures as f64 / (records as f64 * edge_columns as f64)
        };
        StoreStatistics {
            records,
            edge_columns,
            measures,
            density,
            hottest_edge: hottest.filter(|&(_, n)| n > 0),
            empty_edges: empty,
            resident_bytes: self.size_in_bytes(),
            views: (self.graph_views().len(), self.agg_views().len()),
        }
    }

    /// The `k` most selective (rarest, non-empty) edges — the ones worth
    /// anchoring a query plan on.
    pub fn rarest_edges(&self, k: usize) -> Vec<EdgeSelectivity> {
        let mut scratch = IoStats::new();
        let records = self.record_count().max(1);
        let mut all: Vec<EdgeSelectivity> = (0..self.relation().edge_count())
            .map(|i| {
                let edge = EdgeId(u32::try_from(i).expect("edge index fits u32"));
                let n = self.relation().edge_bitmap(edge, &mut scratch).len();
                EdgeSelectivity {
                    edge,
                    records: n,
                    selectivity: n as f64 / records as f64,
                }
            })
            .filter(|s| s.records > 0)
            .collect();
        all.sort_by(|a, b| a.records.cmp(&b.records).then(a.edge.cmp(&b.edge)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{GraphQuery, RecordBuilder, Universe};

    fn store() -> GraphStore {
        let mut u = Universe::new();
        let e: Vec<EdgeId> = (0..4)
            .map(|i| u.edge_by_names(&format!("a{i}"), &format!("b{i}")))
            .collect();
        // e0 in all 10 records, e1 in 5, e2 in 1, e3 in none.
        let mut records = Vec::new();
        for r in 0..10u32 {
            let mut b = RecordBuilder::new();
            b.add(e[0], 1.0);
            if r % 2 == 0 {
                b.add(e[1], 2.0);
            }
            if r == 7 {
                b.add(e[2], 3.0);
            }
            records.push(b.build());
        }
        GraphStore::load(u, &records)
    }

    #[test]
    fn statistics_summarize_the_collection() {
        let s = store().statistics();
        assert_eq!(s.records, 10);
        assert_eq!(s.edge_columns, 4);
        assert_eq!(s.measures, 10 + 5 + 1);
        assert_eq!(s.hottest_edge, Some((EdgeId(0), 10)));
        assert_eq!(s.empty_edges, 1);
        assert!((s.density - 16.0 / 40.0).abs() < 1e-12);
        let rendered = s.render();
        assert!(rendered.contains("hottest edge     #0"), "{rendered}");
    }

    #[test]
    fn rarest_edges_rank_by_selectivity() {
        let st = store();
        let rare = st.rarest_edges(2);
        assert_eq!(rare.len(), 2);
        assert_eq!(rare[0].edge, EdgeId(2));
        assert_eq!(rare[0].records, 1);
        assert!((rare[0].selectivity - 0.1).abs() < 1e-12);
        assert_eq!(rare[1].edge, EdgeId(1));
        // The rare edge bounds its queries' results.
        let (r, _) = st.evaluate(&GraphQuery::from_edges(vec![EdgeId(2)]));
        assert_eq!(r.len() as u64, rare[0].records);
    }

    #[test]
    fn empty_store_statistics() {
        let s = GraphStore::load(Universe::new(), &[]).statistics();
        assert_eq!(s.records, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.hottest_edge, None);
    }
}
