//! Query evaluation: structural phase (bitmap algebra) and measure fetch.

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::{IoStats, MasterRelation};
use graphbi_graph::{
    AggState, EdgeId, GraphError, GraphQuery, PathAggQuery, PathAggResult, QueryExpr, Universe,
};
use graphbi_views::{cover_path, rewrite_query, PathSegment};

use crate::viewmgr::ViewCatalog;

/// Evaluation knobs.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Rewrite queries over materialized views (`false` reproduces the
    /// paper's "oblivious" baseline plans).
    pub use_views: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { use_views: true }
    }
}

impl EvalOptions {
    /// The view-oblivious plan.
    pub fn oblivious() -> EvalOptions {
        EvalOptions { use_views: false }
    }
}

/// Structural phase: the bitmap of records containing the query graph.
pub(crate) fn structural(
    relation: &MasterRelation,
    catalog: &ViewCatalog,
    query: &GraphQuery,
    opts: EvalOptions,
    stats: &mut IoStats,
) -> Bitmap {
    if query.is_empty() {
        return Bitmap::from_range(
            0..u32::try_from(relation.record_count()).expect("record count fits u32"),
        );
    }
    if opts.use_views && !catalog.graph_views.is_empty() {
        let plan = rewrite_query(query, &catalog.graph_view_edges());
        let mut bitmaps: Vec<&Bitmap> = Vec::with_capacity(plan.bitmap_cost());
        for &vi in &plan.views {
            bitmaps.push(relation.view_bitmap(catalog.graph_views[vi].id, stats));
        }
        for &e in &plan.residual_edges {
            bitmaps.push(relation.edge_bitmap(e, stats));
        }
        if !plan.residual_edges.is_empty() {
            relation.note_partitions(&plan.residual_edges, stats);
        }
        Bitmap::and_many(bitmaps)
    } else {
        let bitmaps: Vec<&Bitmap> = query
            .edges()
            .iter()
            .map(|&e| relation.edge_bitmap(e, stats))
            .collect();
        relation.note_partitions(query.edges(), stats);
        Bitmap::and_many(bitmaps)
    }
}

/// Evaluates a logical combination of graph queries as bitmap algebra
/// (§3.2): `AND → ∩`, `OR → ∪`, `AND NOT → −`.
pub(crate) fn eval_expr(
    relation: &MasterRelation,
    catalog: &ViewCatalog,
    expr: &QueryExpr,
    opts: EvalOptions,
    stats: &mut IoStats,
) -> Bitmap {
    match expr {
        QueryExpr::Atom(q) => structural(relation, catalog, q, opts, stats),
        QueryExpr::And(a, b) => eval_expr(relation, catalog, a, opts, stats)
            .and(&eval_expr(relation, catalog, b, opts, stats)),
        QueryExpr::Or(a, b) => eval_expr(relation, catalog, a, opts, stats)
            .or(&eval_expr(relation, catalog, b, opts, stats)),
        QueryExpr::AndNot(a, b) => eval_expr(relation, catalog, a, opts, stats)
            .and_not(&eval_expr(relation, catalog, b, opts, stats)),
    }
}

/// Measure-fetch phase: the record-major measure matrix of `edges` over the
/// matching records.
///
/// Columns are gathered per vertical partition; when the query spans several
/// sub-relations, the per-partition row groups are stitched back together by
/// record id — the §6.1 recid join, whose cost [`IoStats::join_rows`]
/// tracks and Figure 5 measures.
pub(crate) fn fetch_measure_matrix(
    relation: &MasterRelation,
    edges: &[EdgeId],
    ids: &Bitmap,
    stats: &mut IoStats,
) -> Vec<f64> {
    let n = usize::try_from(ids.len()).expect("result fits usize");
    let w = edges.len();
    if w == 0 || n == 0 {
        return Vec::new();
    }
    relation.note_partitions(edges, stats);

    // Gather column-major, tracking which partition each column came from.
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(w);
    let mut partitions = std::collections::BTreeSet::new();
    for &e in edges {
        partitions.insert(relation.partition_of(e));
        let col = relation.edge_measures(e, stats);
        let vals = col.gather(ids);
        debug_assert_eq!(vals.len(), n, "result ids must be subset of presence");
        columns.push(vals);
    }
    stats.values_fetched += (n * w) as u64;
    if partitions.len() > 1 {
        // Every result row participates in (parts−1) recid joins.
        stats.join_rows += (n * (partitions.len() - 1)) as u64;
    }

    // Transpose to record-major rows (the join's output materialization).
    let mut out = vec![0.0f64; n * w];
    for (j, col) in columns.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            out[i * w + j] = v;
        }
    }
    out
}

/// Path-aggregation phase (§3.4): per matching record, applies the query's
/// function along each maximal path, composing materialized aggregate views
/// where the tiling finds them.
pub(crate) fn path_aggregate(
    universe: &Universe,
    relation: &MasterRelation,
    catalog: &ViewCatalog,
    paq: &PathAggQuery,
    opts: EvalOptions,
    stats: &mut IoStats,
) -> Result<PathAggResult, GraphError> {
    let paths = paq.query.maximal_paths(universe)?;
    let ids = structural(relation, catalog, &paq.query, opts, stats);
    let n = usize::try_from(ids.len()).expect("result fits usize");
    let path_count = paths.len();
    let mut values = vec![f64::NAN; n * path_count];

    let (avail_idx, avail_seqs) = if opts.use_views {
        catalog.compatible_agg_views(paq.func)
    } else {
        (Vec::new(), Vec::new())
    };

    for (pi, path) in paths.iter().enumerate() {
        // Consecutive edges in path order; self-edge elements separately.
        let cons: Vec<EdgeId> = path
            .nodes()
            .windows(2)
            .map(|w| {
                universe
                    .find_edge(w[0], w[1])
                    .expect("maximal path edges exist in universe")
            })
            .collect();
        let all_elements = path.elements(universe)?;
        let extras: Vec<EdgeId> = all_elements
            .iter()
            .copied()
            .filter(|e| !cons.contains(e))
            .collect();

        let mut states = vec![AggState::empty(); n];
        let absorb_edge = |e: EdgeId, states: &mut Vec<AggState>, stats: &mut IoStats| {
            let col = relation.edge_measures(e, stats);
            for (i, v) in col.gather(&ids).into_iter().enumerate() {
                states[i].push(v);
            }
            stats.values_fetched += n as u64;
        };

        let cover = cover_path(&cons, &avail_seqs);
        let mut fetched_base: Vec<EdgeId> = extras.clone();
        for seg in &cover.segments {
            match *seg {
                PathSegment::View { view, .. } => {
                    let def = &catalog.agg_views[avail_idx[view]];
                    let col = relation.agg_view(def.id, stats);
                    for (i, v) in col.gather(&ids).into_iter().enumerate() {
                        states[i].merge(&def.state_of(v));
                    }
                    stats.values_fetched += n as u64;
                }
                PathSegment::Edge(e) => {
                    absorb_edge(e, &mut states, stats);
                    fetched_base.push(e);
                }
            }
        }
        for &e in &extras {
            absorb_edge(e, &mut states, stats);
        }
        if !fetched_base.is_empty() {
            relation.note_partitions(&fetched_base, stats);
        }

        for (i, s) in states.iter().enumerate() {
            // NaN marks "no measured element on this path for this record"
            // (SQL NULL); COUNT still finalizes to zero.
            values[i * path_count + pi] = s.finalize(paq.func).unwrap_or(f64::NAN);
        }
    }

    Ok(PathAggResult {
        records: ids.to_vec(),
        path_count,
        values,
    })
}
