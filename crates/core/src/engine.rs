//! Query evaluation: structural phase (bitmap algebra) and measure fetch.

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::{IoStats, MasterRelation};
use graphbi_graph::{
    AggState, EdgeId, GraphError, GraphQuery, PathAggQuery, PathAggResult, QueryExpr, Universe,
};
use graphbi_views::{cover_path, rewrite_query_ranked, PathSegment};

use crate::viewmgr::ViewCatalog;

/// Evaluation knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Rewrite queries over materialized views (`false` reproduces the
    /// paper's "oblivious" baseline plans).
    pub use_views: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { use_views: true }
    }
}

impl EvalOptions {
    /// The view-oblivious plan.
    pub fn oblivious() -> EvalOptions {
        EvalOptions { use_views: false }
    }
}

/// The bitmap columns a structural plan will intersect, fetched (and
/// cost-accounted) once up front and ordered cheapest-first by
/// [`Bitmap::cardinality_hint`]. Returning the references separately from
/// combining them is what lets the sharded path intersect per record range
/// without re-counting fetches per shard; the selectivity order keeps the
/// conjunction accumulator as small as possible from the first AND on.
pub(crate) fn plan_bitmaps<'a>(
    relation: &'a MasterRelation,
    catalog: &ViewCatalog,
    query: &GraphQuery,
    opts: EvalOptions,
    stats: &mut IoStats,
) -> Vec<&'a Bitmap> {
    let mut bitmaps: Vec<&Bitmap> = if opts.use_views && !catalog.graph_views.is_empty() {
        // Coverage ties in the set cover go to the most selective view —
        // ranked by cardinality peeked without a counted fetch.
        let plan = rewrite_query_ranked(query, &catalog.graph_view_edges(), |vi| {
            relation
                .view_bitmap_uncounted(catalog.graph_views[vi].id)
                .cardinality_hint()
        });
        let mut bitmaps: Vec<&Bitmap> = Vec::with_capacity(plan.bitmap_cost());
        for &vi in &plan.views {
            bitmaps.push(relation.view_bitmap(catalog.graph_views[vi].id, stats));
        }
        for &e in &plan.residual_edges {
            bitmaps.push(relation.edge_bitmap(e, stats));
        }
        if !plan.residual_edges.is_empty() {
            relation.note_partitions(&plan.residual_edges, stats);
        }
        bitmaps
    } else {
        let bitmaps: Vec<&Bitmap> = query
            .edges()
            .iter()
            .map(|&e| relation.edge_bitmap(e, stats))
            .collect();
        relation.note_partitions(query.edges(), stats);
        bitmaps
    };
    bitmaps.sort_by_key(|b| b.cardinality_hint());
    bitmaps
}

/// Intersects the plan's bitmaps, splitting the record space into `shards`
/// horizontal ranges evaluated on worker threads when `shards > 1`. The
/// per-shard conjunctions touch disjoint record ranges, so stitching them
/// back in range order yields exactly the serial intersection.
///
/// Only the cheapest operand is sliced per shard: the slice confines the
/// accumulator to the shard's record range, after which in-place ANDs with
/// the *whole* remaining bitmaps stay range-confined for free. A shard whose
/// accumulator drains skips its remaining operands entirely.
pub(crate) fn and_many_sharded(bitmaps: &[&Bitmap], record_count: u64, shards: usize) -> Bitmap {
    if shards <= 1 || record_count == 0 || bitmaps.is_empty() {
        let mut sp = graphbi_obs::span("phase.structural");
        let out = Bitmap::and_many(bitmaps.iter().copied());
        sp.attr("matches", out.len());
        return out;
    }
    let mut sp = graphbi_obs::span("phase.structural");
    let mut ordered: Vec<&Bitmap> = bitmaps.to_vec();
    ordered.sort_by_key(|b| b.cardinality_hint());
    if ordered[0].is_empty() {
        sp.attr("matches", 0);
        return Bitmap::new();
    }
    let ranges = graphbi_columnstore::shard_ranges(record_count, shards);
    let parts = crate::parallel::run_indexed(ranges.len(), shards, |s| {
        let mut shard_sp = graphbi_obs::span("shard.structural");
        shard_sp.attr("shard", s as u64);
        let mut acc = ordered[0].slice(ranges[s].clone());
        for b in &ordered[1..] {
            if acc.is_empty() {
                break;
            }
            acc.and_inplace(b);
        }
        shard_sp.attr("matches", acc.len());
        acc
    });
    drop(sp);
    let mut sp = graphbi_obs::span("phase.merge");
    sp.attr("parts", parts.len() as u64);
    let mut out = Bitmap::new();
    for p in &parts {
        out.append_disjoint(p);
    }
    sp.attr("matches", out.len());
    out
}

/// Structural phase: the bitmap of records containing the query graph.
pub(crate) fn structural(
    relation: &MasterRelation,
    catalog: &ViewCatalog,
    query: &GraphQuery,
    opts: EvalOptions,
    shards: usize,
    stats: &mut IoStats,
) -> Bitmap {
    if query.is_empty() {
        let mut sp = graphbi_obs::span("phase.plan");
        sp.attr("estimated_matches", relation.record_count());
        return Bitmap::from_range(
            0..u32::try_from(relation.record_count()).expect("record count fits u32"),
        );
    }
    let mut sp = graphbi_obs::span("phase.plan");
    let (base_before, view_before) = (stats.bitmap_columns, stats.view_bitmap_columns);
    let bitmaps = plan_bitmaps(relation, catalog, query, opts, stats);
    if sp.is_live() {
        sp.attr("bitmap_columns", stats.bitmap_columns - base_before);
        sp.attr(
            "view_bitmap_columns",
            stats.view_bitmap_columns - view_before,
        );
        // The plan's match estimate: the rarest bitmap bounds the result
        // (the same quantity `GraphStore::explain` reports). The list is
        // already sorted cheapest-first.
        sp.attr(
            "estimated_matches",
            bitmaps.first().map_or(0, |b| b.cardinality_hint()),
        );
    }
    drop(sp);
    and_many_sharded(&bitmaps, relation.record_count(), shards)
}

/// Evaluates a logical combination of graph queries as bitmap algebra
/// (§3.2): `AND → ∩`, `OR → ∪`, `AND NOT → −`.
pub(crate) fn eval_expr(
    relation: &MasterRelation,
    catalog: &ViewCatalog,
    expr: &QueryExpr,
    opts: EvalOptions,
    shards: usize,
    stats: &mut IoStats,
) -> Bitmap {
    match expr {
        QueryExpr::Atom(q) => structural(relation, catalog, q, opts, shards, stats),
        QueryExpr::And(a, b) => eval_expr(relation, catalog, a, opts, shards, stats)
            .and(&eval_expr(relation, catalog, b, opts, shards, stats)),
        QueryExpr::Or(a, b) => eval_expr(relation, catalog, a, opts, shards, stats)
            .or(&eval_expr(relation, catalog, b, opts, shards, stats)),
        QueryExpr::AndNot(a, b) => eval_expr(relation, catalog, a, opts, shards, stats)
            .and_not(&eval_expr(relation, catalog, b, opts, shards, stats)),
    }
}

/// Measure-fetch phase: the record-major measure matrix of `edges` over the
/// matching records.
///
/// Columns are gathered per vertical partition; when the query spans several
/// sub-relations, the per-partition row groups are stitched back together by
/// record id — the §6.1 recid join, whose cost [`IoStats::join_rows`]
/// tracks and Figure 5 measures.
pub(crate) fn fetch_measure_matrix(
    relation: &MasterRelation,
    edges: &[EdgeId],
    ids: &Bitmap,
    shards: usize,
    stats: &mut IoStats,
) -> Vec<f64> {
    let n = usize::try_from(ids.len()).expect("result fits usize");
    let w = edges.len();
    let mut sp = graphbi_obs::span("phase.measure");
    if w == 0 || n == 0 {
        // Provably-empty result: no row can reference any measure column, so
        // the planner skips the fetches outright. The count depends only on
        // `ids` — never the shard split — so serial and sharded runs agree.
        stats.fetches_skipped += w as u64;
        sp.attr("fetches_skipped", w as u64);
        return Vec::new();
    }
    relation.note_partitions(edges, stats);

    // Fetch (and cost-account) every column once up front, whatever the
    // shard count; shard workers only gather from the shared references.
    let mut cols: Vec<&graphbi_columnstore::SparseColumn> = Vec::with_capacity(w);
    let mut partitions = std::collections::BTreeSet::new();
    for &e in edges {
        partitions.insert(relation.partition_of(e));
        cols.push(relation.edge_measures(e, stats));
    }
    stats.values_fetched += (n * w) as u64;
    if partitions.len() > 1 {
        // Every result row participates in (parts−1) recid joins.
        stats.join_rows += (n * (partitions.len() - 1)) as u64;
    }
    if sp.is_live() {
        sp.attr("measure_columns", w as u64);
        sp.attr("values_fetched", (n * w) as u64);
    }

    let gather_block = |sub: &Bitmap| -> Vec<f64> {
        let sn = usize::try_from(sub.len()).expect("result fits usize");
        let mut block = vec![0.0f64; sn * w];
        for (j, col) in cols.iter().enumerate() {
            // Fused gather-transpose: each value streams straight into its
            // record-major slot (the join's output materialization) without
            // an intermediate column vector.
            let mut i = 0;
            col.fold_over(sub, |v| {
                block[i * w + j] = v;
                i += 1;
            });
            debug_assert_eq!(i, sn, "result ids must be subset of presence");
        }
        block
    };

    if shards <= 1 {
        return gather_block(ids);
    }
    // Record ranges are disjoint and ordered, so concatenating the
    // record-major shard blocks reproduces the serial matrix exactly.
    let ranges = relation.shard_ranges(shards);
    let blocks = crate::parallel::run_indexed(ranges.len(), shards, |s| {
        let mut shard_sp = graphbi_obs::span("shard.measure");
        shard_sp.attr("shard", s as u64);
        gather_block(&ids.slice(ranges[s].clone()))
    });
    drop(sp);
    let mut sp = graphbi_obs::span("phase.merge");
    sp.attr("parts", blocks.len() as u64);
    let mut out = Vec::with_capacity(n * w);
    for b in blocks {
        out.extend_from_slice(&b);
    }
    out
}

/// Path-aggregation phase (§3.4): per matching record, applies the query's
/// function along each maximal path, composing materialized aggregate views
/// where the tiling finds them.
pub(crate) fn path_aggregate(
    universe: &Universe,
    relation: &MasterRelation,
    catalog: &ViewCatalog,
    paq: &PathAggQuery,
    opts: EvalOptions,
    shards: usize,
    stats: &mut IoStats,
) -> Result<PathAggResult, GraphError> {
    let paths = paq.query.maximal_paths(universe)?;
    let ids = structural(relation, catalog, &paq.query, opts, shards, stats);
    let n = usize::try_from(ids.len()).expect("result fits usize");
    let path_count = paths.len();

    let (avail_idx, avail_seqs) = if opts.use_views {
        catalog.compatible_agg_views(paq.func)
    } else {
        (Vec::new(), Vec::new())
    };

    // One measure source per fetched column, in the exact order the serial
    // engine folds them into the per-record state: cover segments first
    // (views merge pre-aggregated states, edges push raw values), then the
    // path's self-edge extras.
    enum Source<'a> {
        View {
            def: &'a crate::viewmgr::AggViewDef,
            col: &'a graphbi_columnstore::SparseColumn,
        },
        Edge(&'a graphbi_columnstore::SparseColumn),
    }

    // Plan phase: resolve every path's sources once, counting every fetch
    // exactly as the serial engine does — shard workers never touch stats.
    let mut sp = graphbi_obs::span("phase.plan");
    let before = (
        stats.measure_columns,
        stats.agg_view_columns,
        stats.fetches_skipped,
    );
    let mut plans: Vec<Vec<Source>> = Vec::with_capacity(path_count);
    for path in &paths {
        // Consecutive edges in path order; self-edge elements separately.
        let cons: Vec<EdgeId> = path
            .nodes()
            .windows(2)
            .map(|w| {
                universe
                    .find_edge(w[0], w[1])
                    .expect("maximal path edges exist in universe")
            })
            .collect();
        let all_elements = path.elements(universe)?;
        let extras: Vec<EdgeId> = all_elements
            .iter()
            .copied()
            .filter(|e| !cons.contains(e))
            .collect();

        let cover = cover_path(&cons, &avail_seqs);
        if n == 0 {
            // No matching record: every source fetch this path would have
            // made is provably useless, so skip (and count) them all. The
            // skip depends only on the structural result, keeping serial and
            // sharded stats identical.
            stats.fetches_skipped += (cover.segments.len() + extras.len()) as u64;
            plans.push(Vec::new());
            continue;
        }
        let mut sources: Vec<Source> = Vec::new();
        let mut fetched_base: Vec<EdgeId> = extras.clone();
        for seg in &cover.segments {
            match *seg {
                PathSegment::View { view, .. } => {
                    let def = &catalog.agg_views[avail_idx[view]];
                    sources.push(Source::View {
                        def,
                        col: relation.agg_view(def.id, stats),
                    });
                }
                PathSegment::Edge(e) => {
                    sources.push(Source::Edge(relation.edge_measures(e, stats)));
                    fetched_base.push(e);
                }
            }
        }
        for &e in &extras {
            sources.push(Source::Edge(relation.edge_measures(e, stats)));
        }
        stats.values_fetched += (n * sources.len()) as u64;
        if !fetched_base.is_empty() {
            relation.note_partitions(&fetched_base, stats);
        }
        plans.push(sources);
    }
    if sp.is_live() {
        sp.attr("measure_columns", stats.measure_columns - before.0);
        sp.attr("agg_view_columns", stats.agg_view_columns - before.1);
        sp.attr("fetches_skipped", stats.fetches_skipped - before.2);
    }
    drop(sp);

    // Compute phase: fold each record's sources in plan order. Records are
    // independent, so a shard computes its record range's block without
    // changing any per-record operation order — values come out identical
    // to the serial pass.
    let compute = |sub: &Bitmap| -> Vec<f64> {
        let sn = usize::try_from(sub.len()).expect("result fits usize");
        let mut values = vec![f64::NAN; sn * path_count];
        for (pi, sources) in plans.iter().enumerate() {
            let mut states = vec![AggState::empty(); sn];
            for source in sources {
                // Fused gather-aggregate: measure values stream from the
                // column straight into the per-record aggregate states, with
                // no intermediate value vector.
                match source {
                    Source::View { def, col } => {
                        let mut i = 0;
                        col.fold_over(sub, |v| {
                            states[i].merge(&def.state_of(v));
                            i += 1;
                        });
                    }
                    Source::Edge(col) => {
                        let mut i = 0;
                        col.fold_over(sub, |v| {
                            states[i].push(v);
                            i += 1;
                        });
                    }
                }
            }
            for (i, s) in states.iter().enumerate() {
                // NaN marks "no measured element on this path for this
                // record" (SQL NULL); COUNT still finalizes to zero.
                values[i * path_count + pi] = s.finalize(paq.func).unwrap_or(f64::NAN);
            }
        }
        values
    };

    let sp = graphbi_obs::span("phase.measure");
    let values = if shards <= 1 {
        compute(&ids)
    } else {
        // Record-major blocks over disjoint, ordered record ranges
        // concatenate into the full matrix.
        let ranges = relation.shard_ranges(shards);
        let blocks = crate::parallel::run_indexed(ranges.len(), shards, |s| {
            let mut shard_sp = graphbi_obs::span("shard.measure");
            shard_sp.attr("shard", s as u64);
            compute(&ids.slice(ranges[s].clone()))
        });
        drop(sp);
        let mut msp = graphbi_obs::span("phase.merge");
        msp.attr("parts", blocks.len() as u64);
        let mut out = Vec::with_capacity(n * path_count);
        for b in blocks {
            out.extend_from_slice(&b);
        }
        out
    };

    Ok(PathAggResult {
        records: ids.to_vec(),
        path_count,
        values,
    })
}
