//! Concurrent access: many readers, one maintenance writer.
//!
//! The paper's applications ingest records "on a continuous basis" while
//! analysts query. [`SharedStore`] wraps a [`GraphStore`] in a
//! reader-writer lock so query threads proceed in parallel and ingest /
//! view materialization serialize briefly. Queries take `&self` throughout
//! the engine, so the read path shares without copying.

use std::sync::Arc;

use graphbi_columnstore::IoStats;
use graphbi_graph::{
    AggFn, GraphError, GraphQuery, GraphRecord, PathAggQuery, PathAggResult, QueryResult,
};
use parking_lot::RwLock;

use crate::session::{QueryRequest, Response, Session, SessionError};
use crate::GraphStore;

/// A thread-safe handle to a store. Cheap to clone; all clones share the
/// same underlying store.
#[derive(Clone)]
pub struct SharedStore {
    inner: Arc<RwLock<GraphStore>>,
}

impl SharedStore {
    /// Wraps a store for shared use.
    pub fn new(store: GraphStore) -> SharedStore {
        SharedStore {
            inner: Arc::new(RwLock::new(store)),
        }
    }

    /// Runs `f` with read access (parallel with other readers).
    pub fn read<T>(&self, f: impl FnOnce(&GraphStore) -> T) -> T {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive write access.
    pub fn write<T>(&self, f: impl FnOnce(&mut GraphStore) -> T) -> T {
        f(&mut self.inner.write())
    }

    /// Evaluates a graph query under a read lock.
    pub fn evaluate(&self, query: &GraphQuery) -> (QueryResult, IoStats) {
        self.read(|s| s.evaluate(query))
    }

    /// Path aggregation under a read lock.
    pub fn path_aggregate(
        &self,
        query: &PathAggQuery,
    ) -> Result<(PathAggResult, IoStats), GraphError> {
        self.read(|s| s.path_aggregate(query))
    }

    /// Appends a record under a write lock (views maintained).
    pub fn append_record(&self, record: &GraphRecord) -> graphbi_bitmap::RecordId {
        self.write(|s| s.append_record(record))
    }

    /// Runs the advisor under a write lock.
    pub fn advise_views(&self, workload: &[GraphQuery], budget: usize) -> usize {
        self.write(|s| s.advise_views(workload, budget))
    }

    /// Aggregate-view advisor under a write lock.
    pub fn advise_agg_views(
        &self,
        workload: &[GraphQuery],
        func: AggFn,
        budget: usize,
    ) -> Result<usize, GraphError> {
        self.write(|s| s.advise_agg_views(workload, func, budget))
    }

    /// Current record count.
    pub fn record_count(&self) -> u64 {
        self.read(GraphStore::record_count)
    }

    /// Holds a read lock for the guard's lifetime, pinning one state of
    /// the store across *multiple* [`Session`] calls: unlike
    /// [`SharedStore::evaluate_many`], which pins a single batch, the
    /// guard lets a caller interleave several batches (or single requests)
    /// that must all answer as of the same instant. Writers block until
    /// the guard drops — for lock-free epoch pinning use
    /// [`crate::MvccStore::snapshot`] instead.
    pub fn pinned(&self) -> SharedSnapshot<'_> {
        SharedSnapshot {
            guard: self.inner.read(),
        }
    }
}

/// A read-lock guard over a [`SharedStore`] that answers queries as of
/// one pinned state (see [`SharedStore::pinned`]).
pub struct SharedSnapshot<'a> {
    guard: parking_lot::RwLockReadGuard<'a, GraphStore>,
}

impl SharedSnapshot<'_> {
    /// Record count at the pinned state.
    pub fn record_count(&self) -> u64 {
        self.guard.record_count()
    }
}

impl Session for SharedSnapshot<'_> {
    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        self.guard.execute(request)
    }

    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        self.guard.evaluate_many(requests)
    }

    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        self.guard.profile(request)
    }
}

impl Session for SharedStore {
    /// Executes under a read lock, in parallel with other readers.
    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        self.read(|s| s.execute(request))
    }

    /// Executes the whole batch under ONE read lock: the batch sees a
    /// single consistent snapshot of the store — a concurrent writer's
    /// appends land entirely before or entirely after it, never between
    /// two requests of the same batch.
    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        self.read(|s| s.evaluate_many(requests))
    }

    /// Profiles under a read lock, in parallel with other readers.
    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        self.read(|s| s.profile(request))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{EdgeId, RecordBuilder, Universe};

    fn shared() -> (SharedStore, Vec<EdgeId>) {
        let mut u = Universe::new();
        let edges: Vec<EdgeId> = (0..6)
            .map(|i| u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1)))
            .collect();
        let mut records = Vec::new();
        for r in 0..200u32 {
            let mut b = RecordBuilder::new();
            for (i, &e) in edges.iter().enumerate() {
                if !(r as usize + i).is_multiple_of(3) {
                    b.add(e, f64::from(r));
                }
            }
            records.push(b.build());
        }
        (SharedStore::new(GraphStore::load(u, &records)), edges)
    }

    #[test]
    fn concurrent_readers_agree() {
        let (store, e) = shared();
        let q = GraphQuery::from_edges(vec![e[0], e[1]]);
        let (expect, _) = store.evaluate(&q);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = store.clone();
                let q = q.clone();
                let expect = expect.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let (got, _) = store.evaluate(&q);
                        assert_eq!(got, expect);
                    }
                });
            }
        });
    }

    #[test]
    fn ingest_while_querying_is_consistent() {
        let (store, e) = shared();
        let q = GraphQuery::from_edges(vec![e[0]]);
        let initial = store.evaluate(&q).0.len();
        std::thread::scope(|scope| {
            // Writer: append 100 records all containing e0.
            {
                let store = store.clone();
                let e0 = e[0];
                scope.spawn(move || {
                    for i in 0..100 {
                        let mut b = RecordBuilder::new();
                        b.add(e0, f64::from(i));
                        store.append_record(&b.build());
                    }
                });
            }
            // Readers: result size must be monotone non-decreasing.
            for _ in 0..2 {
                let store = store.clone();
                let q = q.clone();
                scope.spawn(move || {
                    let mut last = 0usize;
                    for _ in 0..100 {
                        let n = store.evaluate(&q).0.len();
                        assert!(n >= last, "results went backwards: {n} < {last}");
                        last = n;
                    }
                });
            }
        });
        assert_eq!(store.evaluate(&q).0.len(), initial + 100);
    }

    #[test]
    fn pinned_guard_spans_multiple_batches() {
        let (store, e) = shared();
        let q = GraphQuery::from_edges(vec![e[0]]);
        let req = QueryRequest::new(q.clone());
        let before = store.evaluate(&q).0;
        {
            let pin = store.pinned();
            let a = pin.execute(&req).unwrap().0.into_records().unwrap();
            let b = pin.evaluate_many(std::slice::from_ref(&req)).unwrap();
            assert_eq!(a, before);
            assert_eq!(b[0].0.clone().into_records().unwrap(), before);
            assert_eq!(pin.record_count(), 200);
        }
        let mut b = RecordBuilder::new();
        b.add(e[0], 1.0);
        store.append_record(&b.build());
        assert_eq!(store.evaluate(&q).0.len(), before.len() + 1);
    }

    #[test]
    fn advisor_under_write_lock_keeps_answers() {
        let (store, e) = shared();
        let workload = vec![
            GraphQuery::from_edges(vec![e[0], e[1]]),
            GraphQuery::from_edges(vec![e[1], e[2]]),
        ];
        let before: Vec<_> = workload.iter().map(|q| store.evaluate(q).0).collect();
        store.advise_views(&workload, 2);
        for (q, expect) in workload.iter().zip(&before) {
            assert_eq!(&store.evaluate(q).0, expect);
        }
    }
}
