//! Name binding: AST → engine queries via the universe.

use graphbi_graph::{Endpoint, GraphQuery, Path, PathAggQuery, PathJoinError, QueryExpr, Universe};

use super::parser::{AstExpr, AstPath, Statement};

/// A resolved statement, ready for the engine.
#[derive(Clone, Debug, PartialEq)]
pub enum Resolved {
    /// Structural query (no aggregate prefix).
    Expr(QueryExpr),
    /// Path-aggregation query.
    Agg(PathAggQuery),
    /// Top-k consolidation of a path aggregation (`TOP k SUM …`).
    TopAgg(PathAggQuery, usize),
}

/// Binding failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolveError {
    /// A node name is not in the universe — it can match nothing.
    UnknownNode(String),
    /// Two consecutive path nodes have no edge in the universe.
    UnknownEdge(String, String),
    /// A `JOIN` operand was a logical combination, not a path.
    JoinOperandNotPath,
    /// The paths refused to join (§3.3's openness rules).
    Join(PathJoinError),
    /// Aggregation over `OR` / `AND NOT` is undefined (`F_Gq` takes one
    /// query graph).
    AggregateOverLogic,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            ResolveError::UnknownEdge(a, b) => write!(f, "no edge ({a},{b}) in the universe"),
            ResolveError::JoinOperandNotPath => {
                write!(f, "JOIN operands must be paths, not logical combinations")
            }
            ResolveError::Join(e) => write!(f, "path join failed: {e}"),
            ResolveError::AggregateOverLogic => {
                write!(
                    f,
                    "aggregates apply to a single graph pattern, not OR/AND NOT"
                )
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Binds a parsed statement against `universe`.
pub fn resolve(statement: &Statement, universe: &Universe) -> Result<Resolved, ResolveError> {
    match statement.agg {
        None => Ok(Resolved::Expr(resolve_expr(&statement.expr, universe)?)),
        Some(func) => {
            let query = resolve_pattern(&statement.expr, universe)?;
            let paq = PathAggQuery::new(query, func);
            match statement.top {
                Some(k) => Ok(Resolved::TopAgg(
                    paq,
                    usize::try_from(k).expect("top-k fits usize"),
                )),
                None => Ok(Resolved::Agg(paq)),
            }
        }
    }
}

/// Resolves to the engine's logical-expression form.
fn resolve_expr(expr: &AstExpr, universe: &Universe) -> Result<QueryExpr, ResolveError> {
    Ok(match expr {
        AstExpr::Path(_) | AstExpr::Join(..) => {
            let path = resolve_path_like(expr, universe)?;
            QueryExpr::Atom(query_of_path(&path, universe)?)
        }
        AstExpr::And(a, b) => {
            QueryExpr::and(resolve_expr(a, universe)?, resolve_expr(b, universe)?)
        }
        AstExpr::Or(a, b) => QueryExpr::or(resolve_expr(a, universe)?, resolve_expr(b, universe)?),
        AstExpr::AndNot(a, b) => {
            QueryExpr::and_not(resolve_expr(a, universe)?, resolve_expr(b, universe)?)
        }
    })
}

/// Resolves an expression that must denote a *single* graph pattern (the
/// aggregate case): paths, joins and ANDs, whose edge union is the query
/// graph (`[Gq1 AND Gq2]` matches records containing both patterns, i.e. the
/// union edge set).
fn resolve_pattern(expr: &AstExpr, universe: &Universe) -> Result<GraphQuery, ResolveError> {
    match expr {
        AstExpr::Path(_) | AstExpr::Join(..) => {
            let path = resolve_path_like(expr, universe)?;
            query_of_path(&path, universe)
        }
        AstExpr::And(a, b) => {
            Ok(resolve_pattern(a, universe)?.union(&resolve_pattern(b, universe)?))
        }
        AstExpr::Or(..) | AstExpr::AndNot(..) => Err(ResolveError::AggregateOverLogic),
    }
}

/// Resolves a path literal or a JOIN tree into one concrete [`Path`].
fn resolve_path_like(expr: &AstExpr, universe: &Universe) -> Result<Path, ResolveError> {
    match expr {
        AstExpr::Path(p) => resolve_path(p, universe),
        AstExpr::Join(a, b) => {
            let left = resolve_path_like(a, universe)?;
            let right = resolve_path_like(b, universe)?;
            left.join(&right).map_err(ResolveError::Join)
        }
        _ => Err(ResolveError::JoinOperandNotPath),
    }
}

fn resolve_path(p: &AstPath, universe: &Universe) -> Result<Path, ResolveError> {
    let nodes: Vec<_> = p
        .nodes
        .iter()
        .map(|n| {
            universe
                .find_node(n)
                .ok_or_else(|| ResolveError::UnknownNode(n.clone()))
        })
        .collect::<Result<_, _>>()?;
    // `[H,H]` denotes the node itself (§3.3).
    let nodes = if nodes.len() == 2 && nodes[0] == nodes[1] {
        vec![nodes[0]]
    } else {
        nodes
    };
    let start = if p.closed_start {
        Endpoint::Closed
    } else {
        Endpoint::Open
    };
    let end = if p.closed_end {
        Endpoint::Closed
    } else {
        Endpoint::Open
    };
    Path::new(nodes, start, end).map_err(|_| ResolveError::UnknownNode("<empty>".into()))
}

fn query_of_path(path: &Path, universe: &Universe) -> Result<GraphQuery, ResolveError> {
    GraphQuery::from_path(path, universe).map_err(|e| match e {
        graphbi_graph::GraphError::UnknownEdge { source, target } => {
            ResolveError::UnknownEdge(source, target)
        }
        _ => ResolveError::UnknownNode("<internal>".into()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ql::lexer::lex;
    use crate::ql::parser::parse;
    use graphbi_graph::AggFn;

    fn setup() -> Universe {
        let mut u = Universe::new();
        for pair in [("A", "B"), ("B", "C"), ("C", "D"), ("E", "F")] {
            u.edge_by_names(pair.0, pair.1);
        }
        let h = u.node("H");
        u.node_edge(h);
        u
    }

    fn run(text: &str, u: &Universe) -> Result<Resolved, ResolveError> {
        resolve(&parse(&lex(text).unwrap()).unwrap(), u)
    }

    #[test]
    fn path_resolves_to_atom_with_edges() {
        let u = setup();
        match run("[A,B,C]", &u).unwrap() {
            Resolved::Expr(QueryExpr::Atom(q)) => assert_eq!(q.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_composes_paths() {
        let u = setup();
        // [A,B) ⋈ [B,C,D] = [A,B,C,D] → 3 edges.
        match run("SUM [A,B) JOIN [B,C,D]", &u).unwrap() {
            Resolved::Agg(paq) => {
                assert_eq!(paq.func, AggFn::Sum);
                assert_eq!(paq.query.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_rejects_double_closed() {
        let u = setup();
        assert!(matches!(
            run("[A,B] JOIN [B,C]", &u),
            Err(ResolveError::Join(PathJoinError::BothClosed))
        ));
    }

    #[test]
    fn unknown_names_and_edges_error() {
        let u = setup();
        assert_eq!(run("[A,Z]", &u), Err(ResolveError::UnknownNode("Z".into())));
        assert_eq!(
            run("[A,C]", &u),
            Err(ResolveError::UnknownEdge("A".into(), "C".into()))
        );
    }

    #[test]
    fn aggregate_over_or_is_rejected() {
        let u = setup();
        assert_eq!(
            run("SUM [A,B] OR [E,F]", &u),
            Err(ResolveError::AggregateOverLogic)
        );
        // AND is fine: union pattern.
        match run("COUNT [A,B] AND [E,F]", &u).unwrap() {
            Resolved::Agg(paq) => assert_eq!(paq.query.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_shorthand() {
        let u = setup();
        match run("[H,H]", &u).unwrap() {
            Resolved::Expr(QueryExpr::Atom(q)) => {
                assert_eq!(q.len(), 1);
                assert!(u.is_node_edge(q.edges()[0]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
