//! A textual query language in the paper's own notation.
//!
//! The paper writes queries as bracketed paths with per-end openness and
//! combines them with logical operators and aggregate functions:
//!
//! ```text
//! [A,D,E,G,I]                      -- Q1: records containing the path
//! [C,H] OR [F,J,K]                 -- Q2: either leased route
//! MAX [A,D,E,G,I]                  -- Q3: longest leg delay
//! [D,E,G) AND NOT [F,F]            -- open end at G, excluding hub F
//! SUM ([A,C,E] JOIN (E,F,G])       -- path-join composition
//! ```
//!
//! Grammar (precedence low→high: `OR`, `AND` / `AND NOT`, `JOIN`):
//!
//! ```text
//! statement := AGGFN? expr
//! expr      := term ((AND NOT? | OR) term)*
//! term      := atom (JOIN atom)*
//! atom      := path | '(' expr ')'
//! path      := ('['|'(') ident (',' ident)* (']'|')')
//! AGGFN     := SUM | MIN | MAX | AVG | COUNT
//! ```
//!
//! A `(` starting an atom is disambiguated against an open path start by
//! look-ahead: `(A,`… parses as a path when the matching close bracket ends
//! a plain identifier list.
//!
//! Parsing yields a [`Statement`]; [`resolve`] binds node names through the
//! universe into the engine's [`crate::QueryExpr`] / [`crate::PathAggQuery`].

mod lexer;
mod parser;
mod resolve;

pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse, AstExpr, AstPath, ParseError, Statement};
pub use resolve::{resolve, ResolveError, Resolved};

use crate::GraphStore;
use graphbi_columnstore::IoStats;
use graphbi_graph::{PathAggResult, QueryResult};

/// The answer of a textual query.
#[derive(Clone, Debug, PartialEq)]
pub enum QlAnswer {
    /// A structural query: matching records with their measures.
    ///
    /// For a single-pattern query the result carries the pattern's measure
    /// matrix. For logical combinations (`OR` / `AND NOT`) only the record
    /// ids are returned — `edges` and `measures` are empty, because a
    /// measure matrix is only well-defined when every matching record
    /// contains every queried edge.
    Records(QueryResult),
    /// An aggregation query: per-record per-maximal-path aggregates.
    Aggregates(PathAggResult),
    /// A `TOP k` query: the k records with the largest aggregates.
    Ranked(Vec<crate::RankedRecord>),
}

/// Errors from the full text→answer pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum QlError {
    /// Tokenization failure.
    Lex(LexError),
    /// Grammar failure.
    Parse(ParseError),
    /// Name binding failure.
    Resolve(ResolveError),
    /// Execution failure (e.g. aggregation over a cyclic pattern).
    Execute(graphbi_graph::GraphError),
    /// The statement has no [`crate::QueryRequest`] form (e.g. `TOP k`).
    Unsupported(&'static str),
}

impl std::fmt::Display for QlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QlError::Lex(e) => write!(f, "lex error: {e}"),
            QlError::Parse(e) => write!(f, "parse error: {e}"),
            QlError::Resolve(e) => write!(f, "resolve error: {e}"),
            QlError::Execute(e) => write!(f, "execution error: {e}"),
            QlError::Unsupported(what) => write!(f, "unsupported statement: {what}"),
        }
    }
}

impl std::error::Error for QlError {}

/// Parses a paper-notation statement against `universe` into an
/// executable [`crate::QueryRequest`] — the one text→request path shared
/// by the CLI, the `graphbi-serve` client and the docs. `TOP k`
/// statements have no session form and are rejected with
/// [`QlError::Unsupported`].
pub fn request_from_text(
    text: &str,
    universe: &graphbi_graph::Universe,
) -> Result<crate::QueryRequest, QlError> {
    let statement = parse(&lex(text).map_err(QlError::Lex)?).map_err(QlError::Parse)?;
    match resolve(&statement, universe).map_err(QlError::Resolve)? {
        Resolved::Expr(graphbi_graph::QueryExpr::Atom(q)) => Ok(crate::QueryRequest::new(q)),
        Resolved::Expr(e) => Ok(crate::QueryRequest::expr(e)),
        Resolved::Agg(paq) => Ok(crate::QueryRequest::aggregate(paq)),
        Resolved::TopAgg(..) => Err(QlError::Unsupported("TOP-k statements")),
    }
}

impl GraphStore {
    /// Parses, resolves and executes a textual query.
    ///
    /// ```
    /// # use graphbi::GraphStore;
    /// # use graphbi_graph::{RecordBuilder, Universe};
    /// let mut u = Universe::new();
    /// let ad = u.edge_by_names("A", "D");
    /// let de = u.edge_by_names("D", "E");
    /// let mut r = RecordBuilder::new();
    /// r.add(ad, 3.0).add(de, 4.0);
    /// let store = GraphStore::load(u, &[r.build()]);
    /// match store.query("SUM [A,D,E]").unwrap() {
    ///     graphbi::ql::QlAnswer::Aggregates(agg) => assert_eq!(agg.row(0), &[7.0]),
    ///     _ => unreachable!(),
    /// }
    /// ```
    pub fn query(&self, text: &str) -> Result<QlAnswer, QlError> {
        let tokens = lexer::lex(text).map_err(QlError::Lex)?;
        let statement = parser::parse(&tokens).map_err(QlError::Parse)?;
        let resolved = resolve::resolve(&statement, self.universe()).map_err(QlError::Resolve)?;
        match resolved {
            Resolved::Expr(expr) => {
                let mut stats = IoStats::new();
                // Single-atom expressions keep full measure retrieval; a
                // logical combination returns the record set with the
                // measures of the union of its atoms' edges.
                let ids = self.evaluate_expr(&expr, &mut stats);
                let edges: Vec<graphbi_graph::EdgeId> = {
                    let mut all: Vec<graphbi_graph::EdgeId> = expr
                        .atoms()
                        .iter()
                        .flat_map(|q| q.edges().iter().copied())
                        .collect();
                    all.sort_unstable();
                    all.dedup();
                    all
                };
                // Measures are only well-defined for edges every matching
                // record contains; for OR/AND NOT combinations we report
                // the record ids with no measure matrix.
                let single_atom = matches!(expr, graphbi_graph::QueryExpr::Atom(_));
                let measures = if single_atom {
                    self.fetch_measures(&edges, &ids, &mut stats)
                } else {
                    Vec::new()
                };
                Ok(QlAnswer::Records(QueryResult {
                    records: ids.to_vec(),
                    edges: if single_atom { edges } else { Vec::new() },
                    measures,
                }))
            }
            Resolved::Agg(paq) => {
                let (result, _) = self.path_aggregate(&paq).map_err(QlError::Execute)?;
                Ok(QlAnswer::Aggregates(result))
            }
            Resolved::TopAgg(paq, k) => {
                let ranked = self.top_k_aggregates(&paq, k).map_err(QlError::Execute)?;
                Ok(QlAnswer::Ranked(ranked))
            }
        }
    }
}
