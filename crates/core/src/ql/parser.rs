//! Recursive-descent parser for the query language.

use graphbi_graph::AggFn;

use super::lexer::{Token, TokenKind};

/// A parsed path literal: node names with per-end openness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstPath {
    /// Node names in path order.
    pub nodes: Vec<String>,
    /// True when the start bracket was `[`.
    pub closed_start: bool,
    /// True when the end bracket was `]`.
    pub closed_end: bool,
}

/// A parsed query expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstExpr {
    /// A path literal.
    Path(AstPath),
    /// `a JOIN b` — the path-join operator `⋈` (§3.3).
    Join(Box<AstExpr>, Box<AstExpr>),
    /// `a AND b`.
    And(Box<AstExpr>, Box<AstExpr>),
    /// `a OR b`.
    Or(Box<AstExpr>, Box<AstExpr>),
    /// `a AND NOT b`.
    AndNot(Box<AstExpr>, Box<AstExpr>),
}

/// A full statement: optional `TOP k` and aggregate prefixes over an
/// expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Statement {
    /// Present for top-k consolidation (`TOP 5 SUM [A,B,C]`).
    pub top: Option<u64>,
    /// Present for aggregation queries (`SUM [A,B,C]`).
    pub agg: Option<AggFn>,
    /// The structural pattern.
    pub expr: AstExpr,
}

/// Grammar failure with the byte offset of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset (source end when input was truncated).
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Parses a token stream into a [`Statement`].
pub fn parse(tokens: &[Token]) -> Result<Statement, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let top = match p.peek() {
        Some(TokenKind::Top) => {
            p.pos += 1;
            match p.peek() {
                Some(&TokenKind::Number(k)) if k > 0 => {
                    p.pos += 1;
                    Some(k)
                }
                _ => {
                    return Err(ParseError {
                        at: p.at(),
                        message: "TOP needs a positive count".into(),
                    })
                }
            }
        }
        _ => None,
    };
    let agg = match p.peek() {
        Some(TokenKind::Agg(f)) => {
            let f = *f;
            p.pos += 1;
            Some(f)
        }
        _ => None,
    };
    if top.is_some() && agg.is_none() {
        return Err(ParseError {
            at: p.at(),
            message: "TOP requires an aggregate function (e.g. TOP 5 SUM …)".into(),
        });
    }
    let expr = p.expr()?;
    if let Some(t) = p.tokens.get(p.pos) {
        return Err(ParseError {
            at: t.at,
            message: format!("trailing input starting with {:?}", t.kind),
        });
    }
    Ok(Statement { top, agg, expr })
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.at)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                at: self.at(),
                message: format!("expected {what}"),
            })
        }
    }

    /// `expr := term ((AND NOT? | OR) term)*`
    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.term()?;
        loop {
            match self.peek() {
                Some(TokenKind::And) => {
                    self.pos += 1;
                    let negate = if self.peek() == Some(&TokenKind::Not) {
                        self.pos += 1;
                        true
                    } else {
                        false
                    };
                    let right = self.term()?;
                    left = if negate {
                        AstExpr::AndNot(Box::new(left), Box::new(right))
                    } else {
                        AstExpr::And(Box::new(left), Box::new(right))
                    };
                }
                Some(TokenKind::Or) => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = AstExpr::Or(Box::new(left), Box::new(right));
                }
                _ => return Ok(left),
            }
        }
    }

    /// `term := atom (JOIN atom)*`
    fn term(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.atom()?;
        while self.peek() == Some(&TokenKind::Join) {
            self.pos += 1;
            let right = self.atom()?;
            left = AstExpr::Join(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// `atom := path | '(' expr ')'` — a leading `(` is a grouping paren
    /// only when it is not the start of an open path (`(A,` or `(A]`).
    fn atom(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek() {
            Some(TokenKind::OpenBracket) => Ok(AstExpr::Path(self.path()?)),
            Some(TokenKind::OpenParen) => {
                if self.looks_like_open_path() {
                    Ok(AstExpr::Path(self.path()?))
                } else {
                    self.pos += 1;
                    let inner = self.expr()?;
                    self.expect(&TokenKind::CloseParen, "closing ')'")?;
                    Ok(inner)
                }
            }
            _ => Err(ParseError {
                at: self.at(),
                message: "expected a path or '('".into(),
            }),
        }
    }

    /// Look-ahead: `(` begins a path literal when it is followed by an
    /// identifier list and a close bracket — i.e. nothing but idents and
    /// commas until `]` or `)`.
    fn looks_like_open_path(&self) -> bool {
        let mut i = self.pos + 1;
        let mut expect_ident = true;
        while let Some(t) = self.tokens.get(i) {
            match (&t.kind, expect_ident) {
                (TokenKind::Ident(_) | TokenKind::Number(_), true) => expect_ident = false,
                (TokenKind::Comma, false) => expect_ident = true,
                (TokenKind::CloseBracket | TokenKind::CloseParen, false) => return true,
                _ => return false,
            }
            i += 1;
        }
        false
    }

    /// `path := ('['|'(') ident (',' ident)* (']'|')')`
    fn path(&mut self) -> Result<AstPath, ParseError> {
        let closed_start = match self.peek() {
            Some(TokenKind::OpenBracket) => true,
            Some(TokenKind::OpenParen) => false,
            _ => {
                return Err(ParseError {
                    at: self.at(),
                    message: "expected '[' or '(' to start a path".into(),
                })
            }
        };
        self.pos += 1;
        let mut nodes = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::Ident(name)) => {
                    nodes.push(name.clone());
                    self.pos += 1;
                }
                // A purely numeric node name lexes as a number; accept it.
                Some(&TokenKind::Number(n)) => {
                    nodes.push(n.to_string());
                    self.pos += 1;
                }
                _ => {
                    return Err(ParseError {
                        at: self.at(),
                        message: "expected a node name".into(),
                    })
                }
            }
            match self.peek() {
                Some(TokenKind::Comma) => {
                    self.pos += 1;
                }
                Some(TokenKind::CloseBracket) => {
                    self.pos += 1;
                    return Ok(AstPath {
                        nodes,
                        closed_start,
                        closed_end: true,
                    });
                }
                Some(TokenKind::CloseParen) => {
                    self.pos += 1;
                    return Ok(AstPath {
                        nodes,
                        closed_start,
                        closed_end: false,
                    });
                }
                _ => {
                    return Err(ParseError {
                        at: self.at(),
                        message: "expected ',' or a closing bracket".into(),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ql::lexer::lex;

    fn parse_text(text: &str) -> Result<Statement, ParseError> {
        parse(&lex(text).unwrap())
    }

    fn path(nodes: &[&str], cs: bool, ce: bool) -> AstExpr {
        AstExpr::Path(AstPath {
            nodes: nodes.iter().map(|s| (*s).to_string()).collect(),
            closed_start: cs,
            closed_end: ce,
        })
    }

    #[test]
    fn simple_closed_path() {
        let s = parse_text("[A,D,E]").unwrap();
        assert_eq!(s.agg, None);
        assert_eq!(s.expr, path(&["A", "D", "E"], true, true));
    }

    #[test]
    fn open_ended_paths() {
        assert_eq!(
            parse_text("(D,E,G)").unwrap().expr,
            path(&["D", "E", "G"], false, false)
        );
        assert_eq!(
            parse_text("[D,E,G)").unwrap().expr,
            path(&["D", "E", "G"], true, false)
        );
        assert_eq!(
            parse_text("(D,E,G]").unwrap().expr,
            path(&["D", "E", "G"], false, true)
        );
    }

    #[test]
    fn aggregates_and_logic() {
        let s = parse_text("MAX [A,B] AND NOT [C,D] OR (E,F]").unwrap();
        assert_eq!(s.agg, Some(graphbi_graph::AggFn::Max));
        // Left-associative: ((A,B AND NOT C,D) OR E,F).
        match s.expr {
            AstExpr::Or(l, r) => {
                assert!(matches!(*l, AstExpr::AndNot(..)));
                assert_eq!(*r, path(&["E", "F"], false, true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn grouping_parens_vs_open_paths() {
        // `([A,B] OR [C,D]) AND [E,F]` — parens group.
        let s = parse_text("([A,B] OR [C,D]) AND [E,F]").unwrap();
        match s.expr {
            AstExpr::And(l, _) => assert!(matches!(*l, AstExpr::Or(..))),
            other => panic!("unexpected {other:?}"),
        }
        // `(A,B) AND [E,F]` — open path, not grouping.
        let s = parse_text("(A,B) AND [E,F]").unwrap();
        match s.expr {
            AstExpr::And(l, _) => assert_eq!(*l, path(&["A", "B"], false, false)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_binds_tighter_than_and() {
        let s = parse_text("[A,B) JOIN [B,C] AND [D,E]").unwrap();
        match s.expr {
            AstExpr::And(l, r) => {
                assert!(matches!(*l, AstExpr::Join(..)));
                assert_eq!(*r, path(&["D", "E"], true, true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_report_positions() {
        let err = parse_text("[A,]").unwrap_err();
        assert!(err.message.contains("node name"), "{err}");
        let err = parse_text("[A,B] [C]").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        let err = parse_text("AND [A,B]").unwrap_err();
        assert!(err.message.contains("path"), "{err}");
        assert!(parse_text("([A,B]").is_err());
    }

    #[test]
    fn single_node_path() {
        let s = parse_text("[H,H]").unwrap();
        assert_eq!(s.expr, path(&["H", "H"], true, true));
        let s = parse_text("[H]").unwrap();
        assert_eq!(s.expr, path(&["H"], true, true));
    }
}
