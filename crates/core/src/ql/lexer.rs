//! Tokenizer for the query language.

/// One lexical token with its byte offset (for error messages).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub at: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// `[`
    OpenBracket,
    /// `]`
    CloseBracket,
    /// `(`
    OpenParen,
    /// `)`
    CloseParen,
    /// `,`
    Comma,
    /// A node name or keyword candidate.
    Ident(String),
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `JOIN` (the path-join operator `⋈`)
    Join,
    /// `TOP` (top-k consolidation prefix)
    Top,
    /// An integer literal (the `k` of `TOP k`)
    Number(u64),
    /// `SUM` / `MIN` / `MAX` / `AVG` / `COUNT`
    Agg(graphbi_graph::AggFn),
}

/// Tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// The character.
    pub found: char,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unexpected character {:?} at byte {}",
            self.found, self.at
        )
    }
}

impl std::error::Error for LexError {}

/// Splits `text` into tokens. Keywords are case-insensitive; node names are
/// case-sensitive identifiers (letters, digits, `_`, `~`, `-`).
pub fn lex(text: &str) -> Result<Vec<Token>, LexError> {
    use graphbi_graph::AggFn;
    let mut out = Vec::new();
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut i = 0;
    while i < bytes.len() {
        let (at, c) = bytes[i];
        let simple = match c {
            '[' => Some(TokenKind::OpenBracket),
            ']' => Some(TokenKind::CloseBracket),
            '(' => Some(TokenKind::OpenParen),
            ')' => Some(TokenKind::CloseParen),
            ',' => Some(TokenKind::Comma),
            _ => None,
        };
        if let Some(kind) = simple {
            out.push(Token { kind, at });
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' || c == '~' || c == '-' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i].1;
                if ch.is_alphanumeric() || ch == '_' || ch == '~' || ch == '-' {
                    i += 1;
                } else {
                    break;
                }
            }
            let word: String = bytes[start..i].iter().map(|&(_, ch)| ch).collect();
            if let Ok(n) = word.parse::<u64>() {
                out.push(Token {
                    kind: TokenKind::Number(n),
                    at,
                });
                continue;
            }
            let kind = match word.to_ascii_uppercase().as_str() {
                "AND" => TokenKind::And,
                "OR" => TokenKind::Or,
                "NOT" => TokenKind::Not,
                "JOIN" => TokenKind::Join,
                "TOP" => TokenKind::Top,
                "SUM" => TokenKind::Agg(AggFn::Sum),
                "MIN" => TokenKind::Agg(AggFn::Min),
                "MAX" => TokenKind::Agg(AggFn::Max),
                "AVG" => TokenKind::Agg(AggFn::Avg),
                "COUNT" => TokenKind::Agg(AggFn::Count),
                _ => TokenKind::Ident(word),
            };
            out.push(Token { kind, at });
            continue;
        }
        return Err(LexError { at, found: c });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::AggFn;

    fn kinds(text: &str) -> Vec<TokenKind> {
        lex(text).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn paths_and_keywords() {
        assert_eq!(
            kinds("SUM [A,D2,E) and not (x_1]"),
            vec![
                TokenKind::Agg(AggFn::Sum),
                TokenKind::OpenBracket,
                TokenKind::Ident("A".into()),
                TokenKind::Comma,
                TokenKind::Ident("D2".into()),
                TokenKind::Comma,
                TokenKind::Ident("E".into()),
                TokenKind::CloseParen,
                TokenKind::And,
                TokenKind::Not,
                TokenKind::OpenParen,
                TokenKind::Ident("x_1".into()),
                TokenKind::CloseBracket,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive_names_are_not() {
        let toks = kinds("Or oR A~2 aNd");
        assert_eq!(toks[0], TokenKind::Or);
        assert_eq!(toks[1], TokenKind::Or);
        assert_eq!(toks[2], TokenKind::Ident("A~2".into()));
        assert_eq!(toks[3], TokenKind::And);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("[A,B] & [C]").unwrap_err();
        assert_eq!(err.found, '&');
        assert_eq!(err.at, 6);
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = lex("  [AB]").unwrap();
        assert_eq!(toks[0].at, 2);
        assert_eq!(toks[1].at, 3);
    }

    #[test]
    fn empty_input_is_no_tokens() {
        assert!(lex("   ").unwrap().is_empty());
    }
}
