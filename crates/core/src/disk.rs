//! The disk-resident store: the paper's actual operating regime.
//!
//! [`GraphStore`] keeps every column in memory; the paper instead ran
//! hundreds of gigabytes off one HDD, where the cost of a query *is* the
//! columns it reads. [`DiskGraphStore`] reproduces that: it opens a saved
//! database directory, pulls bitmap/measure columns from disk on demand
//! through a byte-budgeted cache, and answers the same queries with the
//! same results (asserted by the disk_store integration tests). Under a
//! cold cache, `IoStats::disk_reads` *is* the paper's cost model.
//!
//! ```no_run
//! # use graphbi::disk::DiskGraphStore;
//! let store = DiskGraphStore::open("db/ny".as_ref(), 64 << 20)?;
//! let q = store.parse_query("[A,D,E,G,I]")?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::path::Path;

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::{persist, DiskRelation, IoStats, StoreError};
use graphbi_graph::{
    AggFn, AggState, EdgeId, GraphError, GraphQuery, PathAggQuery, PathAggResult, QueryResult,
    Universe, UniverseIoError,
};
use graphbi_views::{cover_path, rewrite_query, PathSegment};

use crate::viewmgr::{base_kind, compatible, BaseKind};
use crate::GraphStore;

/// Errors from the disk store.
#[derive(Debug)]
pub enum DiskError {
    /// Storage-layer failure.
    Store(StoreError),
    /// Universe file failure.
    Universe(UniverseIoError),
    /// Query-model failure (e.g. cyclic aggregation).
    Graph(GraphError),
    /// The views metadata file was malformed.
    ViewsMeta(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Store(e) => write!(f, "storage: {e}"),
            DiskError::Universe(e) => write!(f, "universe: {e}"),
            DiskError::Graph(e) => write!(f, "query: {e}"),
            DiskError::ViewsMeta(what) => write!(f, "views metadata: {what}"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<StoreError> for DiskError {
    fn from(e: StoreError) -> Self {
        DiskError::Store(e)
    }
}
impl From<UniverseIoError> for DiskError {
    fn from(e: UniverseIoError) -> Self {
        DiskError::Universe(e)
    }
}
impl From<GraphError> for DiskError {
    fn from(e: GraphError) -> Self {
        DiskError::Graph(e)
    }
}

/// Writes a complete database directory: relation, universe and view
/// definitions. [`DiskGraphStore::open`] (and the in-memory
/// [`persist::load`] path) read it back. Returns bytes written.
pub fn save_store(store: &GraphStore, dir: &Path) -> Result<u64, DiskError> {
    std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
    let mut total = persist::save(store.relation(), dir)?;
    store.universe().save(&dir.join("universe.txt"))?;
    // View definitions: the relation holds only the columns; the defs that
    // map them back to edge sets live in a text sidecar.
    let mut meta = String::new();
    for v in store.graph_views() {
        meta.push('g');
        for e in &v.edges {
            meta.push_str(&format!(" {}", e.0));
        }
        meta.push('\n');
    }
    for v in store.agg_views() {
        meta.push_str(&format!("a {}", v.func.name()));
        for e in &v.edges {
            meta.push_str(&format!(" {}", e.0));
        }
        meta.push('\n');
    }
    std::fs::write(dir.join("views_meta.txt"), &meta).map_err(StoreError::Io)?;
    total += meta.len() as u64;
    Ok(total)
}

/// Loads a database directory fully into memory, *reattaching* the
/// materialized views (unlike [`GraphStore::from_relation`], which must
/// drop them for lack of definitions).
pub fn load_store(dir: &Path) -> Result<GraphStore, DiskError> {
    let universe = Universe::load(&dir.join("universe.txt"))?;
    let relation = persist::load(dir)?;
    let mut store = GraphStore::from_relation_keeping_views(universe, relation);
    let meta_path = dir.join("views_meta.txt");
    if meta_path.exists() {
        let meta = std::fs::read_to_string(&meta_path).map_err(StoreError::Io)?;
        let mut graph_idx = 0u32;
        let mut agg_idx = 0u32;
        for line in meta.lines().filter(|l| !l.is_empty()) {
            let mut parts = line.split(' ');
            match parts.next() {
                Some("g") => {
                    store.attach_graph_view(parse_edges(parts)?, graph_idx);
                    graph_idx += 1;
                }
                Some("a") => {
                    let func = match parts.next() {
                        Some("SUM") => AggFn::Sum,
                        Some("MIN") => AggFn::Min,
                        Some("MAX") => AggFn::Max,
                        Some("AVG") => AggFn::Avg,
                        Some("COUNT") => AggFn::Count,
                        _ => return Err(DiskError::ViewsMeta("unknown aggregate function")),
                    };
                    store.attach_agg_view(parse_edges(parts)?, func, agg_idx);
                    agg_idx += 1;
                }
                _ => return Err(DiskError::ViewsMeta("unknown view kind")),
            }
        }
        if graph_idx as usize != store.relation().view_count()
            || agg_idx as usize != store.relation().agg_view_count()
        {
            return Err(DiskError::ViewsMeta("definition/column count mismatch"));
        }
    } else if store.relation().view_count() > 0 || store.relation().agg_view_count() > 0 {
        return Err(DiskError::ViewsMeta(
            "missing views_meta.txt for stored views",
        ));
    }
    Ok(store)
}

/// A stored graph-view definition (disk side).
struct DiskGraphView {
    edges: Vec<EdgeId>,
}

/// A stored aggregate-view definition (disk side).
struct DiskAggView {
    edges: Vec<EdgeId>,
    kind: BaseKind,
}

/// A read-only, disk-resident graph store.
pub struct DiskGraphStore {
    universe: Universe,
    relation: DiskRelation,
    graph_views: Vec<DiskGraphView>,
    agg_views: Vec<DiskAggView>,
}

impl DiskGraphStore {
    /// Opens a database directory written by [`save_store`], with a column
    /// cache of `cache_bytes`.
    pub fn open(dir: &Path, cache_bytes: usize) -> Result<DiskGraphStore, DiskError> {
        let universe = Universe::load(&dir.join("universe.txt"))?;
        let relation = DiskRelation::open(dir, cache_bytes)?;
        let mut graph_views = Vec::new();
        let mut agg_views = Vec::new();
        let meta_path = dir.join("views_meta.txt");
        if meta_path.exists() {
            let meta = std::fs::read_to_string(&meta_path).map_err(StoreError::Io)?;
            for line in meta.lines().filter(|l| !l.is_empty()) {
                let mut parts = line.split(' ');
                match parts.next() {
                    Some("g") => {
                        let edges = parse_edges(parts)?;
                        graph_views.push(DiskGraphView { edges });
                    }
                    Some("a") => {
                        let func = match parts.next() {
                            Some("SUM") => AggFn::Sum,
                            Some("MIN") => AggFn::Min,
                            Some("MAX") => AggFn::Max,
                            Some("AVG") => AggFn::Avg,
                            Some("COUNT") => AggFn::Count,
                            _ => return Err(DiskError::ViewsMeta("unknown aggregate function")),
                        };
                        let edges = parse_edges(parts)?;
                        agg_views.push(DiskAggView {
                            edges,
                            kind: base_kind(func),
                        });
                    }
                    _ => return Err(DiskError::ViewsMeta("unknown view kind")),
                }
            }
        }
        if graph_views.len() != relation.view_count()
            || agg_views.len() != relation.agg_view_count()
        {
            return Err(DiskError::ViewsMeta("definition/column count mismatch"));
        }
        Ok(DiskGraphStore {
            universe,
            relation,
            graph_views,
            agg_views,
        })
    }

    /// The naming scheme.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The disk relation (cache stats, record counts).
    pub fn relation(&self) -> &DiskRelation {
        &self.relation
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.relation.record_count()
    }

    /// Parses a query in the paper's bracket notation against this store's
    /// universe (see [`crate::ql`]); aggregation prefixes are rejected —
    /// use [`DiskGraphStore::path_aggregate`] with the parsed pattern.
    pub fn parse_query(&self, text: &str) -> Result<GraphQuery, crate::ql::QlError> {
        let tokens = crate::ql::lex(text).map_err(crate::ql::QlError::Lex)?;
        let statement = crate::ql::parse(&tokens).map_err(crate::ql::QlError::Parse)?;
        match crate::ql::resolve(&statement, &self.universe).map_err(crate::ql::QlError::Resolve)? {
            crate::ql::Resolved::Expr(graphbi_graph::QueryExpr::Atom(q)) => Ok(q),
            crate::ql::Resolved::Agg(paq) => Ok(paq.query),
            _ => Err(crate::ql::QlError::Resolve(
                crate::ql::ResolveError::AggregateOverLogic,
            )),
        }
    }

    /// Structural phase: records containing the query graph, rewritten over
    /// the stored graph views.
    pub fn match_records(
        &self,
        query: &GraphQuery,
        stats: &mut IoStats,
    ) -> Result<Bitmap, DiskError> {
        self.match_records_with(query, crate::EvalOptions::default(), stats)
    }

    /// [`DiskGraphStore::match_records`] under explicit [`crate::EvalOptions`];
    /// `oblivious()` ANDs raw edge bitmaps without consulting the views.
    pub fn match_records_with(
        &self,
        query: &GraphQuery,
        opts: crate::EvalOptions,
        stats: &mut IoStats,
    ) -> Result<Bitmap, DiskError> {
        if query.is_empty() {
            return Ok(Bitmap::from_range(
                0..u32::try_from(self.relation.record_count()).expect("record count fits u32"),
            ));
        }
        if !opts.use_views || self.graph_views.is_empty() {
            let mut edge_refs = Vec::with_capacity(query.len());
            for &e in query.edges() {
                edge_refs.push(self.relation.edge_bitmap(e, stats)?);
            }
            self.relation.note_partitions(query.edges(), stats);
            let raw: Vec<&Bitmap> = edge_refs.iter().map(|r| &**r).collect();
            return Ok(Bitmap::and_many(raw));
        }
        let views: Vec<Vec<EdgeId>> = self.graph_views.iter().map(|v| v.edges.clone()).collect();
        let plan = rewrite_query(query, &views);
        // Hold every fetched bitmap handle, then AND through the derefs.
        let mut view_refs = Vec::with_capacity(plan.views.len());
        for &vi in &plan.views {
            view_refs.push(
                self.relation
                    .view_bitmap(u32::try_from(vi).expect("view index fits u32"), stats)?,
            );
        }
        let mut edge_refs = Vec::with_capacity(plan.residual_edges.len());
        for &e in &plan.residual_edges {
            edge_refs.push(self.relation.edge_bitmap(e, stats)?);
        }
        if !plan.residual_edges.is_empty() {
            self.relation.note_partitions(&plan.residual_edges, stats);
        }
        let all: Vec<&Bitmap> = view_refs
            .iter()
            .map(|r| &**r)
            .chain(edge_refs.iter().map(|r| &**r))
            .collect();
        Ok(Bitmap::and_many(all))
    }

    /// Full graph-query evaluation.
    pub fn evaluate(&self, query: &GraphQuery) -> Result<(QueryResult, IoStats), DiskError> {
        self.evaluate_with(query, crate::EvalOptions::default())
    }

    /// [`DiskGraphStore::evaluate`] under explicit [`crate::EvalOptions`].
    pub fn evaluate_with(
        &self,
        query: &GraphQuery,
        opts: crate::EvalOptions,
    ) -> Result<(QueryResult, IoStats), DiskError> {
        let mut stats = IoStats::new();
        let ids = self.match_records_with(query, opts, &mut stats)?;
        let edges = query.edges().to_vec();
        let n = usize::try_from(ids.len()).expect("result fits usize");
        let w = edges.len();
        let mut measures = vec![0.0f64; n * w];
        if n > 0 && w > 0 {
            self.relation.note_partitions(&edges, &mut stats);
            for (j, &e) in edges.iter().enumerate() {
                let col = self.relation.edge_measures(e, &mut stats)?;
                for (i, v) in col.gather(&ids).into_iter().enumerate() {
                    measures[i * w + j] = v;
                }
            }
            stats.values_fetched += (n * w) as u64;
        }
        Ok((
            QueryResult {
                records: ids.to_vec(),
                edges,
                measures,
            },
            stats,
        ))
    }

    /// Path aggregation, composing stored aggregate views.
    pub fn path_aggregate(
        &self,
        paq: &PathAggQuery,
    ) -> Result<(PathAggResult, IoStats), DiskError> {
        self.path_aggregate_with(paq, crate::EvalOptions::default())
    }

    /// [`DiskGraphStore::path_aggregate`] under explicit
    /// [`crate::EvalOptions`]; `oblivious()` aggregates from base measure
    /// columns only.
    pub fn path_aggregate_with(
        &self,
        paq: &PathAggQuery,
        opts: crate::EvalOptions,
    ) -> Result<(PathAggResult, IoStats), DiskError> {
        let mut stats = IoStats::new();
        let paths = paq.query.maximal_paths(&self.universe)?;
        let ids = self.match_records_with(&paq.query, opts, &mut stats)?;
        let n = usize::try_from(ids.len()).expect("result fits usize");
        let path_count = paths.len();
        let mut values = vec![f64::NAN; n * path_count];

        // Aggregate views compatible with the query's function.
        let mut avail_idx = Vec::new();
        let mut avail_seqs = Vec::new();
        if opts.use_views {
            for (i, v) in self.agg_views.iter().enumerate() {
                if compatible(v.kind, paq.func) {
                    avail_idx.push(i);
                    avail_seqs.push(v.edges.clone());
                }
            }
        }

        for (pi, path) in paths.iter().enumerate() {
            let cons: Vec<EdgeId> = path
                .nodes()
                .windows(2)
                .map(|w| {
                    self.universe
                        .find_edge(w[0], w[1])
                        .expect("maximal path edges exist")
                })
                .collect();
            let extras: Vec<EdgeId> = path
                .elements(&self.universe)?
                .into_iter()
                .filter(|e| !cons.contains(e))
                .collect();
            let mut states = vec![AggState::empty(); n];
            let cover = cover_path(&cons, &avail_seqs);
            for seg in &cover.segments {
                match *seg {
                    PathSegment::View { view, .. } => {
                        let def = &self.agg_views[avail_idx[view]];
                        let col = self.relation.agg_view(
                            u32::try_from(avail_idx[view]).expect("agg index fits u32"),
                            &mut stats,
                        )?;
                        for (i, v) in col.gather(&ids).into_iter().enumerate() {
                            let mut s = AggState::empty();
                            s.count = def.edges.len() as u64;
                            match def.kind {
                                BaseKind::Sum => s.sum = v,
                                BaseKind::Min => s.min = v,
                                BaseKind::Max => s.max = v,
                            }
                            states[i].merge(&s);
                        }
                        stats.values_fetched += n as u64;
                    }
                    PathSegment::Edge(e) => {
                        let col = self.relation.edge_measures(e, &mut stats)?;
                        for (i, v) in col.gather(&ids).into_iter().enumerate() {
                            states[i].push(v);
                        }
                        stats.values_fetched += n as u64;
                    }
                }
            }
            for &e in &extras {
                let col = self.relation.edge_measures(e, &mut stats)?;
                for (i, v) in col.gather(&ids).into_iter().enumerate() {
                    states[i].push(v);
                }
                stats.values_fetched += n as u64;
            }
            for (i, s) in states.iter().enumerate() {
                values[i * path_count + pi] = s.finalize(paq.func).unwrap_or(f64::NAN);
            }
        }
        Ok((
            PathAggResult {
                records: ids.to_vec(),
                path_count,
                values,
            },
            stats,
        ))
    }
}

fn parse_edges<'a, I: Iterator<Item = &'a str>>(parts: I) -> Result<Vec<EdgeId>, DiskError> {
    parts
        .map(|p| {
            p.parse::<u32>()
                .map(EdgeId)
                .map_err(|_| DiskError::ViewsMeta("edge id not a number"))
        })
        .collect()
}
