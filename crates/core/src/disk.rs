//! The disk-resident store: the paper's actual operating regime.
//!
//! [`GraphStore`] keeps every column in memory; the paper instead ran
//! hundreds of gigabytes off one HDD, where the cost of a query *is* the
//! columns it reads. [`DiskGraphStore`] reproduces that: it opens a saved
//! database directory, pulls bitmap/measure columns from disk on demand
//! through a byte-budgeted cache, and answers the same queries with the
//! same results (asserted by the disk_store integration tests). Under a
//! cold cache, `IoStats::disk_reads` *is* the paper's cost model.
//!
//! ```no_run
//! # use graphbi::disk::DiskGraphStore;
//! let store = DiskGraphStore::open("db/ny".as_ref(), 64 << 20)?;
//! let q = store.parse_query("[A,D,E,G,I]")?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::path::Path;

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::{
    os_vfs, persist, BitmapRef, ColumnRef, DiskRelation, IoStats, StoreError, Verify, Vfs,
    VfsHandle,
};
use graphbi_graph::{
    AggFn, AggState, EdgeId, GraphError, GraphQuery, PathAggQuery, PathAggResult, QueryExpr,
    QueryResult, Universe, UniverseIoError,
};
use graphbi_views::{cover_path, rewrite_query_ranked, PathSegment};

use crate::engine;
use crate::session::{dedup_requests, QueryRequest, RequestKind, Response, Session, SessionError};
use crate::viewmgr::{base_kind, compatible, BaseKind};
use crate::GraphStore;

/// Errors from the disk store.
#[derive(Debug)]
pub enum DiskError {
    /// Storage-layer failure.
    Store(StoreError),
    /// Universe file failure.
    Universe(UniverseIoError),
    /// Query-model failure (e.g. cyclic aggregation).
    Graph(GraphError),
    /// The views metadata file was malformed.
    ViewsMeta(&'static str),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Store(e) => write!(f, "storage: {e}"),
            DiskError::Universe(e) => write!(f, "universe: {e}"),
            DiskError::Graph(e) => write!(f, "query: {e}"),
            DiskError::ViewsMeta(what) => write!(f, "views metadata: {what}"),
        }
    }
}

impl DiskError {
    /// True when the error reports damaged or partial on-disk state (a
    /// failed checksum, truncated file, or malformed metadata) rather than
    /// an environmental failure or a query-model error.
    pub fn is_corruption(&self) -> bool {
        match self {
            DiskError::Store(e) => e.is_corruption(),
            DiskError::Universe(e) => matches!(e, UniverseIoError::Format { .. }),
            DiskError::ViewsMeta(_) => true,
            DiskError::Graph(_) => false,
        }
    }
}

impl std::error::Error for DiskError {}

impl From<StoreError> for DiskError {
    fn from(e: StoreError) -> Self {
        DiskError::Store(e)
    }
}
impl From<UniverseIoError> for DiskError {
    fn from(e: UniverseIoError) -> Self {
        DiskError::Universe(e)
    }
}
impl From<GraphError> for DiskError {
    fn from(e: GraphError) -> Self {
        DiskError::Graph(e)
    }
}

/// Sidecar name of the universe payload within a store directory.
const UNIVERSE_SIDECAR: &str = "universe.txt";
/// Sidecar name of the view-definition payload.
const VIEWS_META_SIDECAR: &str = "views_meta.txt";

/// Writes a complete database directory: relation, universe and view
/// definitions. [`DiskGraphStore::open`] (and the in-memory
/// [`load_store`] path) read it back. Returns bytes written.
pub fn save_store(store: &GraphStore, dir: &Path) -> Result<u64, DiskError> {
    save_store_with(os_vfs().as_ref(), store, dir)
}

/// [`save_store`] through an injectable [`Vfs`].
///
/// The universe and view definitions travel as sidecar blobs inside the
/// relation's save, so the *whole* store — columns, naming scheme, view
/// metadata — is published atomically by the manifest rename: a crash at
/// any point leaves a directory that opens as either the complete old
/// database or the complete new one.
pub fn save_store_with(vfs: &dyn Vfs, store: &GraphStore, dir: &Path) -> Result<u64, DiskError> {
    save_store_with_opts(vfs, store, dir, &[], &[])
}

/// [`save_store_with`], extended for the MVCC compaction path: publishes
/// `extra_sidecars` (e.g. the WAL fold watermark) atomically with the
/// relation, and spares the `keep` generations — those still pinned by
/// live snapshots — from the post-publish garbage collection.
pub fn save_store_with_opts(
    vfs: &dyn Vfs,
    store: &GraphStore,
    dir: &Path,
    extra_sidecars: &[(&str, &[u8])],
    keep: &[u64],
) -> Result<u64, DiskError> {
    save_store_with_format(
        vfs,
        store,
        dir,
        extra_sidecars,
        keep,
        graphbi_columnstore::FormatVersion::default(),
    )
}

/// [`save_store_with_opts`] with an explicit on-disk format version. The
/// differential matrix uses this to write legacy (v2, raw-payload) stores
/// and prove the reader handles both formats — and mixed generations —
/// identically.
pub fn save_store_with_format(
    vfs: &dyn Vfs,
    store: &GraphStore,
    dir: &Path,
    extra_sidecars: &[(&str, &[u8])],
    keep: &[u64],
    format: graphbi_columnstore::FormatVersion,
) -> Result<u64, DiskError> {
    // View definitions: the relation holds only the columns; the defs that
    // map them back to edge sets live in a text sidecar.
    let mut meta = String::new();
    for v in store.graph_views() {
        meta.push('g');
        for e in &v.edges {
            meta.push_str(&format!(" {}", e.0));
        }
        meta.push('\n');
    }
    for v in store.agg_views() {
        meta.push_str(&format!("a {}", v.func.name()));
        for e in &v.edges {
            meta.push_str(&format!(" {}", e.0));
        }
        meta.push('\n');
    }
    let universe = store.universe().to_text();
    let mut sidecars: Vec<(&str, &[u8])> = vec![
        (UNIVERSE_SIDECAR, universe.as_bytes()),
        (VIEWS_META_SIDECAR, meta.as_bytes()),
    ];
    sidecars.extend_from_slice(extra_sidecars);
    Ok(persist::save_with_keep_format(
        vfs,
        store.relation(),
        &sidecars,
        dir,
        keep,
        format,
    )?)
}

/// Loads a database directory fully into memory, *reattaching* the
/// materialized views (unlike [`GraphStore::from_relation`], which must
/// drop them for lack of definitions).
pub fn load_store(dir: &Path) -> Result<GraphStore, DiskError> {
    load_store_with(os_vfs().as_ref(), dir, Verify::Checksums)
}

/// [`load_store`] through an injectable [`Vfs`], optionally skipping
/// payload checksum verification (see [`Verify`]).
pub fn load_store_with(vfs: &dyn Vfs, dir: &Path, verify: Verify) -> Result<GraphStore, DiskError> {
    let universe_bytes = persist::read_sidecar(vfs, dir, UNIVERSE_SIDECAR)?;
    let universe = Universe::parse_text(
        std::str::from_utf8(&universe_bytes)
            .map_err(|_| DiskError::ViewsMeta("universe sidecar not utf-8"))?,
    )?;
    let relation = persist::load_with(vfs, dir, verify)?;
    let mut store = GraphStore::from_relation_keeping_views(universe, relation);
    let meta_bytes = persist::read_sidecar(vfs, dir, VIEWS_META_SIDECAR)?;
    let meta = std::str::from_utf8(&meta_bytes)
        .map_err(|_| DiskError::ViewsMeta("views sidecar not utf-8"))?;
    let mut graph_idx = 0u32;
    let mut agg_idx = 0u32;
    for line in meta.lines().filter(|l| !l.is_empty()) {
        let mut parts = line.split(' ');
        match parts.next() {
            Some("g") => {
                store.attach_graph_view(parse_edges(parts)?, graph_idx);
                graph_idx += 1;
            }
            Some("a") => {
                let func = parse_agg_fn(parts.next())?;
                store.attach_agg_view(parse_edges(parts)?, func, agg_idx);
                agg_idx += 1;
            }
            _ => return Err(DiskError::ViewsMeta("unknown view kind")),
        }
    }
    if graph_idx as usize != store.relation().view_count()
        || agg_idx as usize != store.relation().agg_view_count()
    {
        return Err(DiskError::ViewsMeta("definition/column count mismatch"));
    }
    Ok(store)
}

fn parse_agg_fn(token: Option<&str>) -> Result<AggFn, DiskError> {
    match token {
        Some("SUM") => Ok(AggFn::Sum),
        Some("MIN") => Ok(AggFn::Min),
        Some("MAX") => Ok(AggFn::Max),
        Some("AVG") => Ok(AggFn::Avg),
        Some("COUNT") => Ok(AggFn::Count),
        _ => Err(DiskError::ViewsMeta("unknown aggregate function")),
    }
}

/// A stored graph-view definition (disk side).
struct DiskGraphView {
    edges: Vec<EdgeId>,
}

/// A stored aggregate-view definition (disk side).
struct DiskAggView {
    edges: Vec<EdgeId>,
    kind: BaseKind,
}

/// A read-only, disk-resident graph store.
pub struct DiskGraphStore {
    universe: Universe,
    relation: DiskRelation,
    graph_views: Vec<DiskGraphView>,
    agg_views: Vec<DiskAggView>,
}

impl DiskGraphStore {
    /// Opens a database directory written by [`save_store`], with a column
    /// cache of `cache_bytes`.
    pub fn open(dir: &Path, cache_bytes: usize) -> Result<DiskGraphStore, DiskError> {
        DiskGraphStore::open_with(dir, cache_bytes, os_vfs(), Verify::Checksums)
    }

    /// [`DiskGraphStore::open`] through an injectable [`Vfs`]. Partial or
    /// damaged state (from a crash mid-save, a flipped bit at rest, …) is
    /// reported as a typed [`DiskError`] whose
    /// [`is_corruption`](DiskError::is_corruption) holds — never a panic.
    /// `verify` governs payload checksum verification on every later
    /// column fetch ([`Verify::TrustDisk`] exists for the fuzzer's
    /// teeth test only).
    pub fn open_with(
        dir: &Path,
        cache_bytes: usize,
        vfs: VfsHandle,
        verify: Verify,
    ) -> Result<DiskGraphStore, DiskError> {
        let relation = DiskRelation::open_with(dir, cache_bytes, vfs, verify)?;
        let universe_bytes = relation.sidecar(UNIVERSE_SIDECAR)?;
        let universe = Universe::parse_text(
            std::str::from_utf8(&universe_bytes)
                .map_err(|_| DiskError::ViewsMeta("universe sidecar not utf-8"))?,
        )?;
        let mut graph_views = Vec::new();
        let mut agg_views = Vec::new();
        let meta_bytes = relation.sidecar(VIEWS_META_SIDECAR)?;
        let meta = std::str::from_utf8(&meta_bytes)
            .map_err(|_| DiskError::ViewsMeta("views sidecar not utf-8"))?;
        for line in meta.lines().filter(|l| !l.is_empty()) {
            let mut parts = line.split(' ');
            match parts.next() {
                Some("g") => {
                    let edges = parse_edges(parts)?;
                    graph_views.push(DiskGraphView { edges });
                }
                Some("a") => {
                    let func = parse_agg_fn(parts.next())?;
                    let edges = parse_edges(parts)?;
                    agg_views.push(DiskAggView {
                        edges,
                        kind: base_kind(func),
                    });
                }
                _ => return Err(DiskError::ViewsMeta("unknown view kind")),
            }
        }
        if graph_views.len() != relation.view_count()
            || agg_views.len() != relation.agg_view_count()
        {
            return Err(DiskError::ViewsMeta("definition/column count mismatch"));
        }
        Ok(DiskGraphStore {
            universe,
            relation,
            graph_views,
            agg_views,
        })
    }

    /// The naming scheme.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The disk relation (cache stats, record counts).
    pub fn relation(&self) -> &DiskRelation {
        &self.relation
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.relation.record_count()
    }

    /// Parses a query in the paper's bracket notation against this store's
    /// universe (see [`crate::ql`]); aggregation prefixes are rejected —
    /// use [`DiskGraphStore::path_aggregate`] with the parsed pattern.
    pub fn parse_query(&self, text: &str) -> Result<GraphQuery, crate::ql::QlError> {
        let tokens = crate::ql::lex(text).map_err(crate::ql::QlError::Lex)?;
        let statement = crate::ql::parse(&tokens).map_err(crate::ql::QlError::Parse)?;
        match crate::ql::resolve(&statement, &self.universe).map_err(crate::ql::QlError::Resolve)? {
            crate::ql::Resolved::Expr(graphbi_graph::QueryExpr::Atom(q)) => Ok(q),
            crate::ql::Resolved::Agg(paq) => Ok(paq.query),
            _ => Err(crate::ql::QlError::Resolve(
                crate::ql::ResolveError::AggregateOverLogic,
            )),
        }
    }

    /// Structural phase: records containing the query graph, rewritten over
    /// the stored graph views.
    pub fn match_records(
        &self,
        query: &GraphQuery,
        stats: &mut IoStats,
    ) -> Result<Bitmap, DiskError> {
        self.match_records_inner(
            query,
            crate::EvalOptions::default(),
            1,
            &self.direct(),
            stats,
        )
    }

    /// Full graph-query evaluation.
    pub fn evaluate(&self, query: &GraphQuery) -> Result<(QueryResult, IoStats), DiskError> {
        self.evaluate_inner(query, crate::EvalOptions::default(), 1, &self.direct())
    }

    /// Path aggregation, composing stored aggregate views.
    pub fn path_aggregate(
        &self,
        paq: &PathAggQuery,
    ) -> Result<(PathAggResult, IoStats), DiskError> {
        self.path_aggregate_inner(paq, crate::EvalOptions::default(), 1, &self.direct())
    }

    /// Column access with no batch pin map: every fetch goes straight to
    /// the relation's LRU cache, exactly the pre-batching behaviour.
    fn direct(&self) -> Cols<'_> {
        Cols {
            relation: &self.relation,
            pins: None,
        }
    }

    fn match_records_inner(
        &self,
        query: &GraphQuery,
        opts: crate::EvalOptions,
        shards: usize,
        cols: &Cols<'_>,
        stats: &mut IoStats,
    ) -> Result<Bitmap, DiskError> {
        if query.is_empty() {
            let mut sp = graphbi_obs::span("phase.plan");
            sp.attr("estimated_matches", self.relation.record_count());
            return Ok(Bitmap::from_range(
                0..u32::try_from(self.relation.record_count()).expect("record count fits u32"),
            ));
        }
        let mut sp = graphbi_obs::span("phase.plan");
        let before = (stats.bitmap_columns, stats.view_bitmap_columns);
        // Hold every fetched bitmap handle, then AND through the derefs.
        let mut refs: Vec<BitmapRef> = Vec::with_capacity(query.len());
        if !opts.use_views || self.graph_views.is_empty() {
            for &e in query.edges() {
                refs.push(cols.edge_bitmap(e, stats)?);
            }
            self.relation.note_partitions(query.edges(), stats);
        } else {
            let views: Vec<Vec<EdgeId>> =
                self.graph_views.iter().map(|v| v.edges.clone()).collect();
            // Coverage ties go to the view with the shortest encoded bitmap
            // — a cardinality proxy read from the in-memory directory, so
            // ranking costs no disk read and no counted fetch.
            let plan = rewrite_query_ranked(query, &views, |vi| {
                self.relation
                    .view_bitmap_hint(u32::try_from(vi).expect("view index fits u32"))
            });
            for &vi in &plan.views {
                refs.push(
                    cols.view_bitmap(u32::try_from(vi).expect("view index fits u32"), stats)?,
                );
            }
            for &e in &plan.residual_edges {
                refs.push(cols.edge_bitmap(e, stats)?);
            }
            if !plan.residual_edges.is_empty() {
                self.relation.note_partitions(&plan.residual_edges, stats);
            }
        }
        if sp.is_live() {
            sp.attr("bitmap_columns", stats.bitmap_columns - before.0);
            sp.attr("view_bitmap_columns", stats.view_bitmap_columns - before.1);
            // Same estimate the in-memory planner reports: the rarest
            // operand bounds the intersection.
            sp.attr(
                "estimated_matches",
                refs.iter().map(|r| r.cardinality_hint()).min().unwrap_or(0),
            );
        }
        drop(sp);
        let raw: Vec<&Bitmap> = refs.iter().map(|r| &**r).collect();
        Ok(engine::and_many_sharded(
            &raw,
            self.relation.record_count(),
            shards,
        ))
    }

    /// Logical combination of graph queries as bitmap algebra — the disk
    /// counterpart of [`GraphStore::evaluate_expr`], reachable through
    /// [`Session::execute`] with [`QueryRequest::expr`].
    fn eval_expr_inner(
        &self,
        expr: &QueryExpr,
        opts: crate::EvalOptions,
        shards: usize,
        cols: &Cols<'_>,
        stats: &mut IoStats,
    ) -> Result<Bitmap, DiskError> {
        Ok(match expr {
            QueryExpr::Atom(q) => self.match_records_inner(q, opts, shards, cols, stats)?,
            QueryExpr::And(a, b) => self
                .eval_expr_inner(a, opts, shards, cols, stats)?
                .and(&self.eval_expr_inner(b, opts, shards, cols, stats)?),
            QueryExpr::Or(a, b) => self
                .eval_expr_inner(a, opts, shards, cols, stats)?
                .or(&self.eval_expr_inner(b, opts, shards, cols, stats)?),
            QueryExpr::AndNot(a, b) => self
                .eval_expr_inner(a, opts, shards, cols, stats)?
                .and_not(&self.eval_expr_inner(b, opts, shards, cols, stats)?),
        })
    }

    fn evaluate_inner(
        &self,
        query: &GraphQuery,
        opts: crate::EvalOptions,
        shards: usize,
        cols: &Cols<'_>,
    ) -> Result<(QueryResult, IoStats), DiskError> {
        let mut stats = IoStats::new();
        let ids = self.match_records_inner(query, opts, shards, cols, &mut stats)?;
        let edges = query.edges().to_vec();
        let n = usize::try_from(ids.len()).expect("result fits usize");
        let w = edges.len();
        let mut measures = Vec::new();
        let mut sp = graphbi_obs::span("phase.measure");
        if n == 0 {
            // Provably-empty result: the measure fetches (and their pins)
            // are skipped outright — same counting rule as the in-memory
            // engine, so the two stores' stats reconcile exactly.
            stats.fetches_skipped += w as u64;
            sp.attr("fetches_skipped", w as u64);
        }
        if n > 0 && w > 0 {
            self.relation.note_partitions(&edges, &mut stats);
            let mut crefs: Vec<ColumnRef> = Vec::with_capacity(w);
            for &e in &edges {
                crefs.push(cols.edge_measures(e, &mut stats)?);
            }
            stats.values_fetched += (n * w) as u64;
            if sp.is_live() {
                sp.attr("measure_columns", w as u64);
                sp.attr("values_fetched", (n * w) as u64);
            }
            let gather_block = |sub: &Bitmap| -> Vec<f64> {
                let sn = usize::try_from(sub.len()).expect("result fits usize");
                let mut block = vec![0.0f64; sn * w];
                for (j, col) in crefs.iter().enumerate() {
                    // Fused gather-transpose straight into the record-major
                    // block, no per-column value vector.
                    let mut i = 0;
                    col.fold_over(sub, |v| {
                        block[i * w + j] = v;
                        i += 1;
                    });
                }
                block
            };
            measures = if shards <= 1 {
                gather_block(&ids)
            } else {
                // Disjoint, ordered record ranges: the record-major shard
                // blocks concatenate into the serial matrix.
                let ranges = self.relation.shard_ranges(shards);
                let blocks = crate::parallel::run_indexed(ranges.len(), shards, |s| {
                    let mut shard_sp = graphbi_obs::span("shard.measure");
                    shard_sp.attr("shard", s as u64);
                    gather_block(&ids.slice(ranges[s].clone()))
                });
                drop(sp);
                let mut msp = graphbi_obs::span("phase.merge");
                msp.attr("parts", blocks.len() as u64);
                blocks.into_iter().flatten().collect()
            };
        }
        Ok((
            QueryResult {
                records: ids.to_vec(),
                edges,
                measures,
            },
            stats,
        ))
    }

    fn path_aggregate_inner(
        &self,
        paq: &PathAggQuery,
        opts: crate::EvalOptions,
        shards: usize,
        cols: &Cols<'_>,
    ) -> Result<(PathAggResult, IoStats), DiskError> {
        let mut stats = IoStats::new();
        let paths = paq.query.maximal_paths(&self.universe)?;
        let ids = self.match_records_inner(&paq.query, opts, shards, cols, &mut stats)?;
        let n = usize::try_from(ids.len()).expect("result fits usize");
        let path_count = paths.len();

        // Aggregate views compatible with the query's function.
        let mut avail_idx = Vec::new();
        let mut avail_seqs = Vec::new();
        if opts.use_views {
            for (i, v) in self.agg_views.iter().enumerate() {
                if compatible(v.kind, paq.func) {
                    avail_idx.push(i);
                    avail_seqs.push(v.edges.clone());
                }
            }
        }

        // One measure source per fetched column, in the order the serial
        // engine folds them into the per-record state.
        enum Source {
            View {
                count: u64,
                kind: BaseKind,
                col: ColumnRef,
            },
            Edge(ColumnRef),
        }

        // Plan phase: resolve every path's sources once, counting every
        // fetch exactly as the serial engine does.
        let mut sp = graphbi_obs::span("phase.plan");
        let before = (
            stats.measure_columns,
            stats.agg_view_columns,
            stats.fetches_skipped,
        );
        let mut plans: Vec<Vec<Source>> = Vec::with_capacity(path_count);
        for path in &paths {
            let cons: Vec<EdgeId> = path
                .nodes()
                .windows(2)
                .map(|w| {
                    self.universe
                        .find_edge(w[0], w[1])
                        .expect("maximal path edges exist")
                })
                .collect();
            let extras: Vec<EdgeId> = path
                .elements(&self.universe)?
                .into_iter()
                .filter(|e| !cons.contains(e))
                .collect();
            let cover = cover_path(&cons, &avail_seqs);
            if n == 0 {
                // Nothing matched: skip (and count) every source fetch this
                // path would have made — mirrors the in-memory engine.
                stats.fetches_skipped += (cover.segments.len() + extras.len()) as u64;
                plans.push(Vec::new());
                continue;
            }
            let mut sources: Vec<Source> = Vec::new();
            for seg in &cover.segments {
                match *seg {
                    PathSegment::View { view, .. } => {
                        let def = &self.agg_views[avail_idx[view]];
                        sources.push(Source::View {
                            count: def.edges.len() as u64,
                            kind: def.kind,
                            col: cols.agg_view(
                                u32::try_from(avail_idx[view]).expect("agg index fits u32"),
                                &mut stats,
                            )?,
                        });
                    }
                    PathSegment::Edge(e) => {
                        sources.push(Source::Edge(cols.edge_measures(e, &mut stats)?));
                    }
                }
            }
            for &e in &extras {
                sources.push(Source::Edge(cols.edge_measures(e, &mut stats)?));
            }
            stats.values_fetched += (n * sources.len()) as u64;
            plans.push(sources);
        }
        if sp.is_live() {
            sp.attr("measure_columns", stats.measure_columns - before.0);
            sp.attr("agg_view_columns", stats.agg_view_columns - before.1);
            sp.attr("fetches_skipped", stats.fetches_skipped - before.2);
        }
        drop(sp);

        // Compute phase: per-record folds are independent, so shards over
        // disjoint record ranges replay the serial operation order exactly.
        let compute = |sub: &Bitmap| -> Vec<f64> {
            let sn = usize::try_from(sub.len()).expect("result fits usize");
            let mut values = vec![f64::NAN; sn * path_count];
            for (pi, sources) in plans.iter().enumerate() {
                let mut states = vec![AggState::empty(); sn];
                for source in sources {
                    // Fused gather-aggregate: values stream from the pinned
                    // column straight into the per-record states.
                    match source {
                        Source::View { count, kind, col } => {
                            let mut i = 0;
                            col.fold_over(sub, |v| {
                                let mut s = AggState::empty();
                                s.count = *count;
                                match kind {
                                    BaseKind::Sum => s.sum = v,
                                    BaseKind::Min => s.min = v,
                                    BaseKind::Max => s.max = v,
                                }
                                states[i].merge(&s);
                                i += 1;
                            });
                        }
                        Source::Edge(col) => {
                            let mut i = 0;
                            col.fold_over(sub, |v| {
                                states[i].push(v);
                                i += 1;
                            });
                        }
                    }
                }
                for (i, s) in states.iter().enumerate() {
                    values[i * path_count + pi] = s.finalize(paq.func).unwrap_or(f64::NAN);
                }
            }
            values
        };

        let sp = graphbi_obs::span("phase.measure");
        let values = if shards <= 1 {
            compute(&ids)
        } else {
            let ranges = self.relation.shard_ranges(shards);
            let blocks = crate::parallel::run_indexed(ranges.len(), shards, |s| {
                let mut shard_sp = graphbi_obs::span("shard.measure");
                shard_sp.attr("shard", s as u64);
                compute(&ids.slice(ranges[s].clone()))
            });
            drop(sp);
            let mut msp = graphbi_obs::span("phase.merge");
            msp.attr("parts", blocks.len() as u64);
            blocks.into_iter().flatten().collect()
        };

        Ok((
            PathAggResult {
                records: ids.to_vec(),
                path_count,
                values,
            },
            stats,
        ))
    }

    fn execute_cols(
        &self,
        request: &QueryRequest,
        cols: &Cols<'_>,
    ) -> Result<(Response, IoStats), SessionError> {
        match &request.kind {
            RequestKind::Graph(q) => {
                let (r, stats) = self.evaluate_inner(q, request.options, request.shards, cols)?;
                Ok((Response::Records(r), stats))
            }
            RequestKind::Expr(e) => {
                let mut stats = IoStats::new();
                let b =
                    self.eval_expr_inner(e, request.options, request.shards, cols, &mut stats)?;
                Ok((Response::Matches(b), stats))
            }
            RequestKind::Aggregate(p) => {
                let (r, stats) =
                    self.path_aggregate_inner(p, request.options, request.shards, cols)?;
                Ok((Response::Aggregates(r), stats))
            }
        }
    }
}

impl Session for DiskGraphStore {
    /// `EXPLAIN ANALYZE` for the disk engine; additionally reports the
    /// column cache's hit/miss/eviction deltas over the request.
    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        crate::explain::profile_request(self, "disk", Some(self.relation()), request)
    }

    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        self.execute_cols(request, &self.direct())
    }

    /// Batched evaluation with column-fetch sharing: one pin map holds
    /// every column any request touched alive for the whole batch, so a
    /// column is read from disk (and decoded) at most once per batch even
    /// when the LRU cache is smaller than the working set. Duplicate
    /// requests are answered once; each request's stats still count its
    /// own logical fetches, while `disk_reads`/`disk_bytes` land on the
    /// request that first pulled the column.
    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        let pins = Pins::default();
        let (firsts, assign) = dedup_requests(requests);
        let threads = requests.iter().map(|r| r.shards).max().unwrap_or(1);
        let distinct = crate::parallel::run_indexed(firsts.len(), threads, |i| {
            let mut sp = graphbi_obs::span("request");
            sp.attr("request", firsts[i] as u64);
            let mut req = requests[firsts[i]].clone();
            if firsts.len() > 1 {
                // Workload-level parallelism owns the pool (see the
                // GraphStore impl); answers are shard-count independent.
                req.shards = 1;
            }
            self.execute_cols(
                &req,
                &Cols {
                    relation: &self.relation,
                    pins: Some(&pins),
                },
            )
        });
        let distinct: Vec<(Response, IoStats)> = distinct.into_iter().collect::<Result<_, _>>()?;
        Ok(assign.iter().map(|&a| distinct[a].clone()).collect())
    }
}

/// Batch-wide column pins: fetched handles keyed by column id. A hit hands
/// out a clone of the held `Arc` handle — no LRU traffic, no disk read —
/// and still counts the logical column fetch on the caller's stats.
#[derive(Default)]
struct Pins {
    bitmaps: parking_lot::Mutex<HashMap<u32, BitmapRef>>,
    views: parking_lot::Mutex<HashMap<u32, BitmapRef>>,
    measures: parking_lot::Mutex<HashMap<u32, ColumnRef>>,
    aggs: parking_lot::Mutex<HashMap<u32, ColumnRef>>,
}

/// Column access for one evaluation: straight through the relation's LRU
/// cache, or additionally pinned in a batch-wide map.
struct Cols<'a> {
    relation: &'a DiskRelation,
    pins: Option<&'a Pins>,
}

impl Cols<'_> {
    fn edge_bitmap(&self, e: EdgeId, stats: &mut IoStats) -> Result<BitmapRef, DiskError> {
        match self.pins {
            None => Ok(self.relation.edge_bitmap(e, stats)?),
            Some(p) => {
                let mut map = p.bitmaps.lock();
                if let Some(r) = map.get(&e.0) {
                    stats.bitmap_columns += 1;
                    return Ok(r.clone());
                }
                let r = self.relation.edge_bitmap(e, stats)?;
                map.insert(e.0, r.clone());
                Ok(r)
            }
        }
    }

    fn view_bitmap(&self, v: u32, stats: &mut IoStats) -> Result<BitmapRef, DiskError> {
        match self.pins {
            None => Ok(self.relation.view_bitmap(v, stats)?),
            Some(p) => {
                let mut map = p.views.lock();
                if let Some(r) = map.get(&v) {
                    stats.view_bitmap_columns += 1;
                    return Ok(r.clone());
                }
                let r = self.relation.view_bitmap(v, stats)?;
                map.insert(v, r.clone());
                Ok(r)
            }
        }
    }

    fn edge_measures(&self, e: EdgeId, stats: &mut IoStats) -> Result<ColumnRef, DiskError> {
        match self.pins {
            None => Ok(self.relation.edge_measures(e, stats)?),
            Some(p) => {
                let mut map = p.measures.lock();
                if let Some(r) = map.get(&e.0) {
                    stats.measure_columns += 1;
                    return Ok(r.clone());
                }
                let r = self.relation.edge_measures(e, stats)?;
                map.insert(e.0, r.clone());
                Ok(r)
            }
        }
    }

    fn agg_view(&self, a: u32, stats: &mut IoStats) -> Result<ColumnRef, DiskError> {
        match self.pins {
            None => Ok(self.relation.agg_view(a, stats)?),
            Some(p) => {
                let mut map = p.aggs.lock();
                if let Some(r) = map.get(&a) {
                    stats.agg_view_columns += 1;
                    return Ok(r.clone());
                }
                let r = self.relation.agg_view(a, stats)?;
                map.insert(a, r.clone());
                Ok(r)
            }
        }
    }
}

fn parse_edges<'a, I: Iterator<Item = &'a str>>(parts: I) -> Result<Vec<EdgeId>, DiskError> {
    parts
        .map(|p| {
            p.parse::<u32>()
                .map(EdgeId)
                .map_err(|_| DiskError::ViewsMeta("edge id not a number"))
        })
        .collect()
}
