//! Stable error codes: one numeric + symbolic vocabulary for every error
//! the system can produce, in-process and on the wire.
//!
//! Before this module, retryability and corruption detection were ad-hoc
//! `match`es scattered per error enum (`DiskError::is_corruption`,
//! `StoreError::is_corruption`, …). An [`ErrorCode`] names each failure
//! once and groups it into a *class* by its hundreds digit, so the
//! predicates become class checks that hold by construction for every
//! error — including ones added later:
//!
//! | class | meaning                        | retry?          |
//! |-------|--------------------------------|-----------------|
//! | 1xx   | invalid request                | no — fix the request |
//! | 2xx   | transient / environmental      | yes             |
//! | 3xx   | corruption (damaged state)     | no — restore    |
//! | 5xx   | internal                       | no — report     |
//!
//! The wire protocol (`graphbi-serve`) sends `ERR <code> <SYMBOL> <msg>`,
//! so a remote client classifies failures with the same
//! [`ErrorCode::is_transient`] / [`ErrorCode::is_corruption`] predicates a
//! local caller uses. The [`Coded`] trait maps every error enum in the
//! workspace onto its code.

use graphbi_columnstore::StoreError;
use graphbi_graph::{GraphError, UniverseIoError};

use crate::disk::DiskError;
use crate::session::SessionError;

/// A stable numeric + symbolic error code. Codes never change meaning
/// once released; new failures get new codes within their class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    // -- 1xx: the request itself is invalid; retrying cannot help. -------
    /// A node name was not present in the universe.
    UnknownNode = 100,
    /// A query referenced an edge absent from the universe.
    UnknownEdge = 101,
    /// Path aggregation over a cyclic query graph.
    CyclicQuery = 102,
    /// A path with fewer than one node.
    EmptyPath = 103,
    /// A request or frame that did not parse (wire grammar, protocol).
    Malformed = 110,
    /// The operation is not supported by this backend or protocol version.
    Unsupported = 111,
    /// The named entity does not exist (e.g. a `TRACE` request id that was
    /// never captured or has been overwritten in the flight ring).
    NotFound = 112,

    // -- 2xx: transient / environmental; the same request may succeed
    //    later without modification. -------------------------------------
    /// Filesystem or network failure.
    Io = 200,
    /// The write-ahead log is poisoned; commits fail until compaction.
    WalPoisoned = 201,
    /// The server's admission queue was full for the whole timeout.
    Busy = 210,
    /// The operation timed out.
    Timeout = 211,

    // -- 3xx: damaged or partial persistent state. -----------------------
    /// A store file failed integrity verification.
    Corrupt = 300,
    /// On-disk bytes did not decode.
    Decode = 301,
    /// A store file's layout was malformed.
    BadFormat = 302,
    /// The universe sidecar was malformed.
    UniverseFormat = 303,
    /// The views metadata sidecar was malformed.
    ViewsMeta = 304,

    // -- 5xx: internal. ---------------------------------------------------
    /// An invariant the server relies on failed (e.g. a worker vanished
    /// mid-request). Never expected; always a bug.
    Internal = 500,
}

impl ErrorCode {
    /// Every code, in numeric order (drives exhaustive round-trip tests).
    pub const ALL: [ErrorCode; 16] = [
        ErrorCode::UnknownNode,
        ErrorCode::UnknownEdge,
        ErrorCode::CyclicQuery,
        ErrorCode::EmptyPath,
        ErrorCode::Malformed,
        ErrorCode::Unsupported,
        ErrorCode::NotFound,
        ErrorCode::Io,
        ErrorCode::WalPoisoned,
        ErrorCode::Busy,
        ErrorCode::Timeout,
        ErrorCode::Corrupt,
        ErrorCode::Decode,
        ErrorCode::BadFormat,
        ErrorCode::UniverseFormat,
        ErrorCode::ViewsMeta,
    ];

    /// The stable numeric value (wire representation).
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// The code for a numeric value, if any is defined. `Internal` is
    /// resolvable too, so a client can round-trip every code a server
    /// may send.
    pub fn from_u16(n: u16) -> Option<ErrorCode> {
        if n == 500 {
            return Some(ErrorCode::Internal);
        }
        ErrorCode::ALL.iter().copied().find(|c| c.as_u16() == n)
    }

    /// The stable symbolic name (wire representation, `SCREAMING_CASE`).
    pub fn symbol(self) -> &'static str {
        match self {
            ErrorCode::UnknownNode => "UNKNOWN_NODE",
            ErrorCode::UnknownEdge => "UNKNOWN_EDGE",
            ErrorCode::CyclicQuery => "CYCLIC_QUERY",
            ErrorCode::EmptyPath => "EMPTY_PATH",
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::Unsupported => "UNSUPPORTED",
            ErrorCode::NotFound => "NOT_FOUND",
            ErrorCode::Io => "IO",
            ErrorCode::WalPoisoned => "WAL_POISONED",
            ErrorCode::Busy => "BUSY",
            ErrorCode::Timeout => "TIMEOUT",
            ErrorCode::Corrupt => "CORRUPT",
            ErrorCode::Decode => "DECODE",
            ErrorCode::BadFormat => "BAD_FORMAT",
            ErrorCode::UniverseFormat => "UNIVERSE_FORMAT",
            ErrorCode::ViewsMeta => "VIEWS_META",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// True for the 1xx class: the request is at fault and retrying the
    /// identical request cannot succeed.
    pub fn is_invalid_request(self) -> bool {
        (100..200).contains(&self.as_u16())
    }

    /// True for the 2xx class: environmental; the same request may
    /// succeed on retry (possibly after backoff or compaction).
    pub fn is_transient(self) -> bool {
        (200..300).contains(&self.as_u16())
    }

    /// True for the 3xx class: persistent state is damaged or partial.
    pub fn is_corruption(self) -> bool {
        (300..400).contains(&self.as_u16())
    }

    /// The class name (stable, lowercase) — used to key per-class metric
    /// families like `graphbi_compaction_failures_<class>_total`.
    pub fn class_name(self) -> &'static str {
        if self.is_invalid_request() {
            "invalid"
        } else if self.is_transient() {
            "transient"
        } else if self.is_corruption() {
            "corruption"
        } else {
            "internal"
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.as_u16(), self.symbol())
    }
}

/// An error that maps onto the stable [`ErrorCode`] vocabulary.
///
/// Implemented for every error enum in the workspace; predicates like
/// `is_corruption` delegate to the code's class, so a new variant is
/// classified correctly the moment it is assigned a code.
pub trait Coded {
    /// The stable code classifying this error.
    fn code(&self) -> ErrorCode;
}

impl Coded for GraphError {
    fn code(&self) -> ErrorCode {
        match self {
            GraphError::UnknownNode(_) => ErrorCode::UnknownNode,
            GraphError::UnknownEdge { .. } => ErrorCode::UnknownEdge,
            GraphError::CyclicQuery => ErrorCode::CyclicQuery,
            GraphError::EmptyPath => ErrorCode::EmptyPath,
        }
    }
}

impl Coded for StoreError {
    fn code(&self) -> ErrorCode {
        match self {
            StoreError::Io(_) => ErrorCode::Io,
            StoreError::Decode(_) => ErrorCode::Decode,
            StoreError::Format(_) => ErrorCode::BadFormat,
            StoreError::Corrupt { .. } => ErrorCode::Corrupt,
        }
    }
}

impl Coded for UniverseIoError {
    fn code(&self) -> ErrorCode {
        match self {
            UniverseIoError::Io(_) => ErrorCode::Io,
            UniverseIoError::Format { .. } => ErrorCode::UniverseFormat,
        }
    }
}

impl Coded for DiskError {
    fn code(&self) -> ErrorCode {
        match self {
            DiskError::Store(e) => e.code(),
            DiskError::Universe(e) => e.code(),
            DiskError::Graph(e) => e.code(),
            DiskError::ViewsMeta(_) => ErrorCode::ViewsMeta,
        }
    }
}

impl Coded for SessionError {
    fn code(&self) -> ErrorCode {
        match self {
            SessionError::Graph(e) => e.code(),
            SessionError::Disk(e) => e.code(),
            SessionError::Unsupported(_) => ErrorCode::Unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_numerically() {
        for c in ErrorCode::ALL.into_iter().chain([ErrorCode::Internal]) {
            assert_eq!(ErrorCode::from_u16(c.as_u16()), Some(c), "{c}");
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn classes_partition_by_hundreds() {
        for c in ErrorCode::ALL.into_iter().chain([ErrorCode::Internal]) {
            let classes = [c.is_invalid_request(), c.is_transient(), c.is_corruption()];
            let n = classes.iter().filter(|&&b| b).count();
            assert!(n <= 1, "{c} is in {n} classes");
            if c == ErrorCode::Internal {
                assert_eq!(n, 0);
            } else {
                assert_eq!(n, 1, "{c} belongs to no class");
            }
        }
    }

    #[test]
    fn predicates_match_legacy_semantics() {
        // The class predicates must agree with the hand-written matches
        // they replaced.
        let cases: Vec<(Box<dyn Coded>, bool, bool)> = vec![
            // (error, was is_corruption, is transient)
            (
                Box::new(StoreError::Format("x")) as Box<dyn Coded>,
                true,
                false,
            ),
            (
                Box::new(StoreError::Corrupt {
                    file: "f".into(),
                    what: "w",
                }),
                true,
                false,
            ),
            (
                Box::new(StoreError::Io(std::io::Error::other("x"))),
                false,
                true,
            ),
            (Box::new(DiskError::ViewsMeta("bad")), true, false),
            (
                Box::new(DiskError::Universe(UniverseIoError::Format {
                    line: 1,
                    what: "w",
                })),
                true,
                false,
            ),
            (
                Box::new(DiskError::Graph(GraphError::CyclicQuery)),
                false,
                false,
            ),
            (
                Box::new(SessionError::Graph(GraphError::EmptyPath)),
                false,
                false,
            ),
        ];
        for (e, corrupt, transient) in cases {
            assert_eq!(e.code().is_corruption(), corrupt, "{:?}", e.code());
            assert_eq!(e.code().is_transient(), transient, "{:?}", e.code());
        }
    }

    #[test]
    fn symbols_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in ErrorCode::ALL.into_iter().chain([ErrorCode::Internal]) {
            assert!(seen.insert(c.symbol()), "duplicate symbol {}", c.symbol());
        }
        assert_eq!(ErrorCode::Busy.to_string(), "210 BUSY");
    }
}
