//! The public store API.

use graphbi_bitmap::Bitmap;
use graphbi_columnstore::{IoStats, MasterRelation, RelationBuilder, DEFAULT_PARTITION_WIDTH};
use graphbi_graph::{
    AggFn, EdgeId, GraphError, GraphQuery, GraphRecord, PathAggQuery, PathAggResult, QueryExpr,
    QueryResult, Universe,
};
use graphbi_views as views;

use crate::engine::{self, EvalOptions};
use crate::session::{dedup_requests, QueryRequest, RequestKind, Response, Session, SessionError};
use crate::viewmgr::{self, AggViewDef, GraphViewDef, ViewCatalog};

/// A queryable collection of graph records: the paper's full stack — flat
/// columnar storage, bitmap indexing and materialized graph views — behind
/// one handle.
pub struct GraphStore {
    universe: Universe,
    relation: MasterRelation,
    catalog: ViewCatalog,
}

impl GraphStore {
    /// Loads records with the default vertical partition width (1000
    /// columns, §6.1).
    pub fn load(universe: Universe, records: &[GraphRecord]) -> GraphStore {
        GraphStore::load_with_width(universe, records, DEFAULT_PARTITION_WIDTH)
    }

    /// Loads records with an explicit partition width (the Figure 5
    /// sensitivity knob).
    pub fn load_with_width(
        universe: Universe,
        records: &[GraphRecord],
        partition_width: usize,
    ) -> GraphStore {
        let mut builder = RelationBuilder::new(universe.edge_count());
        for r in records {
            builder.add_record(r.edges());
        }
        GraphStore {
            universe,
            relation: builder.finish_with_width(partition_width),
            catalog: ViewCatalog::default(),
        }
    }

    /// Wraps an already-built relation (e.g. one loaded from disk via
    /// [`graphbi_columnstore::persist`]). Views stored in the relation are
    /// not self-describing, so the catalog starts empty; use
    /// [`crate::disk::load_store`] to reload a database *with* its views.
    pub fn from_relation(universe: Universe, mut relation: MasterRelation) -> GraphStore {
        relation.clear_views();
        GraphStore {
            universe,
            relation,
            catalog: ViewCatalog::default(),
        }
    }

    /// Wraps a relation keeping its stored view columns; the caller must
    /// attach the matching definitions (see [`crate::disk::load_store`]).
    pub(crate) fn from_relation_keeping_views(
        universe: Universe,
        relation: MasterRelation,
    ) -> GraphStore {
        GraphStore {
            universe,
            relation,
            catalog: ViewCatalog::default(),
        }
    }

    /// Reattaches a graph-view definition to the already-stored column
    /// `index` (load path only).
    pub(crate) fn attach_graph_view(&mut self, edges: Vec<EdgeId>, index: u32) {
        self.catalog.graph_views.push(GraphViewDef {
            edges,
            id: graphbi_columnstore::ViewId(index),
        });
    }

    /// Reattaches an aggregate-view definition (load path only).
    pub(crate) fn attach_agg_view(&mut self, edges: Vec<EdgeId>, func: AggFn, index: u32) {
        self.catalog.agg_views.push(AggViewDef {
            edges,
            func,
            kind: viewmgr::base_kind(func),
            id: graphbi_columnstore::AggViewId(index),
        });
    }

    /// The shared naming scheme.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Mutable universe access (interning new query nodes/edges).
    pub fn universe_mut(&mut self) -> &mut Universe {
        &mut self.universe
    }

    /// The underlying master relation.
    pub fn relation(&self) -> &MasterRelation {
        &self.relation
    }

    pub(crate) fn catalog(&self) -> &ViewCatalog {
        &self.catalog
    }

    /// Number of records loaded.
    pub fn record_count(&self) -> u64 {
        self.relation.record_count()
    }

    /// Resident bytes of base columns plus views.
    pub fn size_in_bytes(&self) -> usize {
        self.relation.size_in_bytes()
    }

    /// Appends one record to the store — the continuous-ingest path of the
    /// paper's applications (§6.1: the schema expands on demand when the
    /// record references edges newer than any column). All materialized
    /// views are maintained incrementally, so query answers stay exact.
    pub fn append_record(
        &mut self,
        record: &graphbi_graph::GraphRecord,
    ) -> graphbi_bitmap::RecordId {
        let rid = self.relation.append_record(record.edges());
        for v in &self.catalog.graph_views {
            if record.contains_all(&v.edges) {
                self.relation.view_bitmap_mut(v.id).insert(rid);
            }
        }
        for v in &self.catalog.agg_views {
            if record.contains_all(&v.edges) {
                let state = graphbi_graph::AggState::from_measures(
                    v.edges
                        .iter()
                        .map(|&e| record.measure(e).expect("contains_all checked")),
                );
                let value = viewmgr::stored_value(v.kind, &state);
                self.relation.agg_view_mut(v.id).append(rid, value);
            }
        }
        rid
    }

    // ------------------------------------------------------------------
    // Query evaluation
    // ------------------------------------------------------------------

    /// The records containing the query graph, as a bitmap — the structural
    /// half of evaluation, using materialized views when possible.
    pub fn match_records(&self, query: &GraphQuery, stats: &mut IoStats) -> Bitmap {
        engine::structural(
            &self.relation,
            &self.catalog,
            query,
            EvalOptions::default(),
            1,
            stats,
        )
    }

    /// Full graph-query evaluation: matching records plus the measures of
    /// the query's edges (§4.2's SELECT).
    pub fn evaluate(&self, query: &GraphQuery) -> (QueryResult, IoStats) {
        self.eval_graph(query, EvalOptions::default(), 1)
    }

    /// Graph-query evaluation under explicit options and shard count — the
    /// one implementation behind [`GraphStore::evaluate`] and the
    /// [`Session`] impl.
    fn eval_graph(
        &self,
        query: &GraphQuery,
        opts: EvalOptions,
        shards: usize,
    ) -> (QueryResult, IoStats) {
        let mut stats = IoStats::new();
        let ids = engine::structural(
            &self.relation,
            &self.catalog,
            query,
            opts,
            shards,
            &mut stats,
        );
        let edges = query.edges().to_vec();
        let measures =
            engine::fetch_measure_matrix(&self.relation, &edges, &ids, shards, &mut stats);
        (
            QueryResult {
                records: ids.to_vec(),
                edges,
                measures,
            },
            stats,
        )
    }

    /// Measure-fetch phase in isolation: the record-major measure matrix of
    /// `edges` over the records in `ids`. Exposed so harnesses can time the
    /// two evaluation phases separately (the paper's Figures 6–7 break query
    /// time into "fetch measures" and "rest of query").
    pub fn fetch_measures(&self, edges: &[EdgeId], ids: &Bitmap, stats: &mut IoStats) -> Vec<f64> {
        engine::fetch_measure_matrix(&self.relation, edges, ids, 1, stats)
    }

    /// Evaluates a logical combination of graph queries (§3.2) to the
    /// matching record set.
    pub fn evaluate_expr(&self, expr: &QueryExpr, stats: &mut IoStats) -> Bitmap {
        engine::eval_expr(
            &self.relation,
            &self.catalog,
            expr,
            EvalOptions::default(),
            1,
            stats,
        )
    }

    /// Streaming evaluation: calls `f(record, measure_row)` for every match,
    /// in ascending record order, materializing at most `chunk` rows at a
    /// time. The paper's result sets reach tens of millions of records ×
    /// dozens of measures; this keeps the peak footprint bounded.
    pub fn for_each_match<F: FnMut(graphbi_bitmap::RecordId, &[f64])>(
        &self,
        query: &GraphQuery,
        chunk: usize,
        mut f: F,
    ) -> IoStats {
        let chunk = chunk.max(1);
        let mut stats = IoStats::new();
        let ids = engine::structural(
            &self.relation,
            &self.catalog,
            query,
            EvalOptions::default(),
            1,
            &mut stats,
        );
        let edges = query.edges();
        let mut pending: Vec<graphbi_bitmap::RecordId> = Vec::with_capacity(chunk);
        let mut flush = |pending: &mut Vec<graphbi_bitmap::RecordId>, stats: &mut IoStats| {
            if pending.is_empty() {
                return;
            }
            let mut b = graphbi_bitmap::Bitmap::new();
            b.extend(pending.iter().copied());
            let rows = engine::fetch_measure_matrix(&self.relation, edges, &b, 1, stats);
            let w = edges.len();
            for (i, &rid) in pending.iter().enumerate() {
                f(rid, &rows[i * w..(i + 1) * w]);
            }
            pending.clear();
        };
        for rid in ids.iter() {
            pending.push(rid);
            if pending.len() == chunk {
                flush(&mut pending, &mut stats);
            }
        }
        flush(&mut pending, &mut stats);
        if ids.is_empty() {
            // The materialized path skips (and counts) every measure fetch
            // for a provably-empty result; the chunked path never reached
            // them — count the same skips so the two cost models agree.
            stats.fetches_skipped += edges.len() as u64;
            return stats;
        }
        // Column-fetch accounting: the chunked gathers re-count measure
        // columns and partition touches per chunk; normalize both to the
        // logical cost so the model matches the non-streaming path.
        stats.measure_columns = edges.len() as u64;
        let mut parts = IoStats::new();
        self.relation.note_partitions(edges, &mut parts);
        stats.partitions_touched = parts.partitions_touched;
        stats
    }

    /// Re-encodes every presence bitmap in its smallest representation —
    /// worthwhile after a burst of [`GraphStore::append_record`] calls,
    /// which grow containers without re-optimizing them.
    pub fn optimize(&mut self) {
        self.relation.optimize_columns();
    }

    /// Path-aggregation query (§3.4): per matching record, the aggregate
    /// along each maximal path of the query graph.
    ///
    /// Fails with [`GraphError::CyclicQuery`] when the query graph has a
    /// cycle — flatten records/queries first (§6.2).
    pub fn path_aggregate(
        &self,
        query: &PathAggQuery,
    ) -> Result<(PathAggResult, IoStats), GraphError> {
        self.eval_agg(query, EvalOptions::default(), 1)
    }

    /// Path aggregation under explicit options and shard count — the one
    /// implementation behind [`GraphStore::path_aggregate`] and the
    /// [`Session`] impl.
    fn eval_agg(
        &self,
        query: &PathAggQuery,
        opts: EvalOptions,
        shards: usize,
    ) -> Result<(PathAggResult, IoStats), GraphError> {
        let mut stats = IoStats::new();
        let result = engine::path_aggregate(
            &self.universe,
            &self.relation,
            &self.catalog,
            query,
            opts,
            shards,
            &mut stats,
        )?;
        Ok((result, stats))
    }

    // ------------------------------------------------------------------
    // View management
    // ------------------------------------------------------------------

    /// Materializes a graph view for an explicit edge set; returns its index
    /// in [`GraphStore::graph_views`].
    pub fn materialize_graph_view(&mut self, mut edges: Vec<EdgeId>) -> usize {
        edges.sort_unstable();
        edges.dedup();
        let id = viewmgr::build_graph_view(&mut self.relation, &edges);
        self.catalog.graph_views.push(GraphViewDef { edges, id });
        self.catalog.graph_views.len() - 1
    }

    /// Materializes an aggregate graph view for `func` along the ordered
    /// path `edges`; returns its index in [`GraphStore::agg_views`].
    pub fn materialize_agg_view(&mut self, edges: Vec<EdgeId>, func: AggFn) -> usize {
        let (id, kind) = viewmgr::build_agg_view(&mut self.relation, &edges, func);
        self.catalog.agg_views.push(AggViewDef {
            edges,
            func,
            kind,
            id,
        });
        self.catalog.agg_views.len() - 1
    }

    /// Runs the paper's graph-view selection (§5.2) for a workload under a
    /// budget of `budget` views and materializes the winners. Returns the
    /// number of views created.
    pub fn advise_views(&mut self, workload: &[GraphQuery], budget: usize) -> usize {
        let candidates = views::generate_candidates(workload);
        let chosen = views::select_views(workload, &candidates, budget);
        let count = chosen.len();
        for idx in chosen {
            self.materialize_graph_view(candidates[idx].edges.clone());
        }
        count
    }

    /// Runs aggregate-view selection (§5.4) for a path-aggregation workload
    /// and materializes the winners for `func`. Returns the number of views
    /// created.
    pub fn advise_agg_views(
        &mut self,
        workload: &[GraphQuery],
        func: AggFn,
        budget: usize,
    ) -> Result<usize, GraphError> {
        let candidates = views::agg_candidates(workload, &self.universe)?;
        let chosen = views::select_agg_views(workload, &self.universe, &candidates, budget)?;
        let count = chosen.len();
        for idx in chosen {
            self.materialize_agg_view(candidates[idx].edges.clone(), func);
        }
        Ok(count)
    }

    /// The materialized graph views.
    pub fn graph_views(&self) -> &[GraphViewDef] {
        &self.catalog.graph_views
    }

    /// The materialized aggregate graph views.
    pub fn agg_views(&self) -> &[AggViewDef] {
        &self.catalog.agg_views
    }

    /// Drops all materialized views (budget sweeps).
    pub fn clear_views(&mut self) {
        self.relation.clear_views();
        self.catalog = ViewCatalog::default();
    }
}

impl Session for GraphStore {
    /// `EXPLAIN ANALYZE` for the in-memory engine.
    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        crate::explain::profile_request(self, "memory", None, request)
    }

    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        match &request.kind {
            RequestKind::Graph(q) => {
                let (r, stats) = self.eval_graph(q, request.options, request.shards);
                Ok((Response::Records(r), stats))
            }
            RequestKind::Expr(e) => {
                let mut stats = IoStats::new();
                let b = engine::eval_expr(
                    &self.relation,
                    &self.catalog,
                    e,
                    request.options,
                    request.shards,
                    &mut stats,
                );
                Ok((Response::Matches(b), stats))
            }
            RequestKind::Aggregate(p) => {
                let (r, stats) = self.eval_agg(p, request.options, request.shards)?;
                Ok((Response::Aggregates(r), stats))
            }
        }
    }

    /// Batched evaluation: duplicate requests (common under Zipf-skewed
    /// workloads) are answered once, and the distinct requests run on a
    /// worker pool sized by the batch's largest shard knob. Each duplicate
    /// reports the stats of its first occurrence — the batch's summed cost
    /// reflects the work actually done.
    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        let (firsts, assign) = dedup_requests(requests);
        let threads = requests.iter().map(|r| r.shards).max().unwrap_or(1);
        let distinct = crate::parallel::run_indexed(firsts.len(), threads, |i| {
            let mut sp = graphbi_obs::span("request");
            sp.attr("request", firsts[i] as u64);
            let mut req = requests[firsts[i]].clone();
            if firsts.len() > 1 {
                // Workload-level parallelism owns the pool; nested
                // per-request sharding would oversubscribe it. Answers and
                // stats are shard-count independent, so this is pure
                // scheduling.
                req.shards = 1;
            }
            self.execute(&req)
        });
        let distinct: Vec<(Response, IoStats)> = distinct.into_iter().collect::<Result<_, _>>()?;
        Ok(assign.iter().map(|&a| distinct[a].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::RecordBuilder;

    /// The three records of the paper's Figure 2 / Table 1.
    ///
    /// Edge ids follow the figure: 1:(A,B) 2:(A,C) 3:(B,C)? — the exact
    /// pairs don't matter for storage; we reuse the table's columns:
    /// r1 has e1..e5, r2 has e2..e7, r3 has e4..e7.
    fn table1_store() -> (GraphStore, Vec<EdgeId>) {
        let mut u = Universe::new();
        // A chain A→B→…→H gives 7 distinct edges with ids 0..7.
        let names = ["A", "B", "C", "D", "E", "F", "G", "H"];
        let edges: Vec<EdgeId> = names
            .windows(2)
            .map(|w| u.edge_by_names(w[0], w[1]))
            .collect();
        let mk = |pairs: &[(usize, f64)]| {
            let mut b = RecordBuilder::new();
            for &(i, m) in pairs {
                b.add(edges[i], m);
            }
            b.build()
        };
        let records = vec![
            mk(&[(0, 3.0), (1, 4.0), (2, 2.0), (3, 1.0), (4, 2.0)]),
            mk(&[(1, 1.0), (2, 2.0), (3, 2.0), (4, 1.0), (5, 4.0), (6, 1.0)]),
            mk(&[(3, 5.0), (4, 4.0), (5, 3.0), (6, 1.0)]),
        ];
        (GraphStore::load(u, &records), edges)
    }

    #[test]
    fn table1_graph_query() {
        let (store, e) = table1_store();
        let q = GraphQuery::from_edges(vec![e[3], e[4]]);
        let (r, stats) = store.evaluate(&q);
        assert_eq!(r.records, vec![0, 1, 2]);
        assert_eq!(r.row(2), &[5.0, 4.0]);
        assert_eq!(stats.bitmap_columns, 2);
        assert_eq!(stats.measure_columns, 2);
        assert_eq!(stats.values_fetched, 6);
    }

    #[test]
    fn table1_view_bv1_filters_like_paper() {
        // bv1 indexes the subgraph {e1..e4} (our e[0..=3]): only r1.
        let (mut store, e) = table1_store();
        store.materialize_graph_view(vec![e[0], e[1], e[2], e[3]]);
        let q = GraphQuery::from_edges(vec![e[0], e[1], e[2], e[3]]);
        let mut stats = IoStats::new();
        let ids = store.match_records(&q, &mut stats);
        assert_eq!(ids.to_vec(), vec![0]);
        // One view bitmap instead of four edge bitmaps.
        assert_eq!(stats.view_bitmap_columns, 1);
        assert_eq!(stats.bitmap_columns, 0);
    }

    #[test]
    fn table1_aggregate_view_mp1() {
        // mp1 = SUM over path [e6, e7] (our e[5], e[6]): r2 → 5, r3 → 4.
        let (mut store, e) = table1_store();
        store.materialize_agg_view(vec![e[5], e[6]], AggFn::Sum);
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![e[5], e[6]]), AggFn::Sum);
        let (r, stats) = store.path_aggregate(&paq).unwrap();
        assert_eq!(r.records, vec![1, 2]);
        assert_eq!(r.row(0), &[5.0]);
        assert_eq!(r.row(1), &[4.0]);
        // The pre-aggregated column replaced both measure columns.
        assert_eq!(stats.agg_view_columns, 1);
        assert_eq!(stats.measure_columns, 0);
    }

    #[test]
    fn oblivious_matches_view_assisted_results() {
        let (mut store, e) = table1_store();
        let q = GraphQuery::from_edges(vec![e[1], e[2], e[3]]);
        let (before, _) = store.evaluate(&q);
        store.materialize_graph_view(vec![e[1], e[2], e[3]]);
        let (with_views, s1) = store.evaluate(&q);
        let (resp, s2) = store
            .execute(&QueryRequest::new(q.clone()).oblivious())
            .unwrap();
        let oblivious = resp.into_records().unwrap();
        assert_eq!(before, with_views);
        assert_eq!(with_views, oblivious);
        assert!(s1.structural_columns() < s2.structural_columns());
    }

    #[test]
    fn logical_combinators_match_set_algebra() {
        let (store, e) = table1_store();
        let a = GraphQuery::from_edges(vec![e[0]]); // r1 only
        let b = GraphQuery::from_edges(vec![e[5]]); // r2, r3
        let mut stats = IoStats::new();
        let or = store.evaluate_expr(
            &QueryExpr::or(a.clone().into(), b.clone().into()),
            &mut stats,
        );
        assert_eq!(or.to_vec(), vec![0, 1, 2]);
        let and = store.evaluate_expr(
            &QueryExpr::and(a.clone().into(), b.clone().into()),
            &mut stats,
        );
        assert!(and.is_empty());
        let not = store.evaluate_expr(&QueryExpr::and_not(b.into(), a.into()), &mut stats);
        assert_eq!(not.to_vec(), vec![1, 2]);
    }

    #[test]
    fn empty_query_matches_everything() {
        let (store, _) = table1_store();
        let (r, _) = store.evaluate(&GraphQuery::from_edges(vec![]));
        assert_eq!(r.records, vec![0, 1, 2]);
        assert!(r.measures.is_empty());
    }

    #[test]
    fn path_aggregate_all_functions() {
        let (store, e) = table1_store();
        // Path e[3], e[4] on r3: measures 5.0 and 4.0.
        let q = GraphQuery::from_edges(vec![e[3], e[4]]);
        for (f, expect) in [
            (AggFn::Sum, 9.0),
            (AggFn::Min, 4.0),
            (AggFn::Max, 5.0),
            (AggFn::Count, 2.0),
            (AggFn::Avg, 4.5),
        ] {
            let (r, _) = store
                .path_aggregate(&PathAggQuery::new(q.clone(), f))
                .unwrap();
            let i = r.records.iter().position(|&x| x == 2).unwrap();
            assert_eq!(r.row(i), &[expect], "{f}");
        }
    }

    #[test]
    fn agg_views_compose_within_longer_paths() {
        let (mut store, e) = table1_store();
        // Materialize SUM view over [e3,e4]; query the longer path e2..e5.
        store.materialize_agg_view(vec![e[3], e[4]], AggFn::Sum);
        let q = GraphQuery::from_edges(vec![e[2], e[3], e[4], e[5]]);
        let paq = PathAggQuery::new(q, AggFn::Sum);
        let (with, s_with) = store.path_aggregate(&paq).unwrap();
        let (resp, s_without) = store
            .execute(&QueryRequest::aggregate(paq.clone()).oblivious())
            .unwrap();
        let without = resp.into_aggregates().unwrap();
        assert_eq!(with, without);
        assert!(s_with.measure_columns < s_without.measure_columns);
        // r2 contains e2..e6: 2+2+1+4 = 9.
        assert_eq!(with.records, vec![1]);
        assert_eq!(with.row(0), &[9.0]);
    }

    #[test]
    fn advisor_materializes_within_budget() {
        let (mut store, e) = table1_store();
        let workload = vec![
            GraphQuery::from_edges(vec![e[1], e[2], e[3]]),
            GraphQuery::from_edges(vec![e[1], e[2], e[4]]),
            GraphQuery::from_edges(vec![e[5], e[6]]),
        ];
        let n = store.advise_views(&workload, 2);
        assert!(n <= 2 && n > 0);
        assert_eq!(store.graph_views().len(), n);
        // Results unchanged, cost reduced.
        for q in &workload {
            let (r1, s1) = store.evaluate(q);
            let (resp, s2) = store
                .execute(&QueryRequest::new(q.clone()).oblivious())
                .unwrap();
            assert_eq!(r1, resp.into_records().unwrap());
            assert!(s1.structural_columns() <= s2.structural_columns());
        }
    }

    #[test]
    fn clear_views_restores_oblivious_behaviour() {
        let (mut store, e) = table1_store();
        store.materialize_graph_view(vec![e[3], e[4]]);
        store.materialize_agg_view(vec![e[3], e[4]], AggFn::Sum);
        assert_eq!(store.graph_views().len(), 1);
        store.clear_views();
        assert!(store.graph_views().is_empty());
        assert!(store.agg_views().is_empty());
        let q = GraphQuery::from_edges(vec![e[3], e[4]]);
        let (_, stats) = store.evaluate(&q);
        assert_eq!(stats.view_bitmap_columns, 0);
        assert_eq!(stats.bitmap_columns, 2);
    }

    #[test]
    fn streaming_matches_materialized_evaluation() {
        let (store, e) = table1_store();
        let q = GraphQuery::from_edges(vec![e[3], e[4]]);
        let (expect, _) = store.evaluate(&q);
        for chunk in [1usize, 2, 100] {
            let mut got: Vec<(u32, Vec<f64>)> = Vec::new();
            let stats = store.for_each_match(&q, chunk, |rid, row| {
                got.push((rid, row.to_vec()));
            });
            assert_eq!(
                got.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
                expect.records,
                "chunk {chunk}"
            );
            for (i, (_, row)) in got.iter().enumerate() {
                assert_eq!(row.as_slice(), expect.row(i));
            }
            assert_eq!(stats.measure_columns, 2);
            assert_eq!(stats.partitions_touched, 1, "chunking must not inflate");
        }
    }

    #[test]
    fn optimize_after_appends_keeps_answers() {
        let (mut store, e) = table1_store();
        for i in 0..50u32 {
            let mut b = RecordBuilder::new();
            b.add(e[0], f64::from(i)).add(e[1], 1.0);
            store.append_record(&b.build());
        }
        let q = GraphQuery::from_edges(vec![e[0], e[1]]);
        let (before, _) = store.evaluate(&q);
        let bytes_before = store.size_in_bytes();
        store.optimize();
        let (after, _) = store.evaluate(&q);
        assert_eq!(before, after);
        assert!(store.size_in_bytes() <= bytes_before);
    }

    #[test]
    fn append_maintains_base_and_views() {
        let (mut store, e) = table1_store();
        store.materialize_graph_view(vec![e[3], e[4]]);
        store.materialize_agg_view(vec![e[5], e[6]], AggFn::Sum);
        // New record r4 containing e3,e4 (view) and e5,e6 (agg view).
        let mut b = RecordBuilder::new();
        b.add(e[3], 10.0)
            .add(e[4], 20.0)
            .add(e[5], 1.0)
            .add(e[6], 2.0);
        let rid = store.append_record(&b.build());
        assert_eq!(rid, 3);
        assert_eq!(store.record_count(), 4);

        // Structural query through the graph view finds the new record.
        let q = GraphQuery::from_edges(vec![e[3], e[4]]);
        let mut stats = IoStats::new();
        let ids = store.match_records(&q, &mut stats);
        assert!(ids.contains(rid));
        assert_eq!(stats.view_bitmap_columns, 1);

        // Aggregate query through the agg view includes the new record.
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![e[5], e[6]]), AggFn::Sum);
        let (agg, s) = store.path_aggregate(&paq).unwrap();
        assert_eq!(s.agg_view_columns, 1);
        let i = agg.records.iter().position(|&r| r == rid).unwrap();
        assert_eq!(agg.row(i), &[3.0]);
    }

    #[test]
    fn append_expands_schema_on_demand() {
        let (mut store, e) = table1_store();
        let before = store.relation().edge_count();
        let new_edge = {
            let u = store.universe_mut();
            let x = u.node("X");
            let y = u.node("Y");
            u.edge(x, y)
        };
        assert_eq!(new_edge.index(), before);
        let mut b = RecordBuilder::new();
        b.add(e[0], 1.0).add(new_edge, 9.0);
        let rid = store.append_record(&b.build());
        assert_eq!(store.relation().edge_count(), before + 1);
        let (r, _) = store.evaluate(&GraphQuery::from_edges(vec![new_edge]));
        assert_eq!(r.records, vec![rid]);
        assert_eq!(r.row(0), &[9.0]);
    }

    #[test]
    fn sharded_execution_matches_serial_bit_for_bit() {
        let (mut store, e) = table1_store();
        // Enough records that shard boundaries fall strictly inside the set.
        for i in 0..500u32 {
            let mut b = RecordBuilder::new();
            b.add(e[3], f64::from(i) * 0.125 + 0.1)
                .add(e[4], f64::from(i % 7));
            if i % 3 == 0 {
                b.add(e[5], 2.5);
            }
            store.append_record(&b.build());
        }
        store.materialize_graph_view(vec![e[3], e[4]]);
        store.materialize_agg_view(vec![e[3], e[4]], AggFn::Avg);

        let q = GraphQuery::from_edges(vec![e[3], e[4]]);
        let paq = PathAggQuery::new(q.clone(), AggFn::Avg);
        for shards in [2usize, 3, 8, 1000] {
            let (serial, s_stats) = store.execute(&QueryRequest::new(q.clone())).unwrap();
            let (sharded, p_stats) = store
                .execute(&QueryRequest::new(q.clone()).shards(shards))
                .unwrap();
            assert_eq!(serial, sharded, "graph query, {shards} shards");
            assert_eq!(s_stats, p_stats, "stats must not depend on shards");

            let (serial, _) = store
                .execute(&QueryRequest::aggregate(paq.clone()))
                .unwrap();
            let (sharded, _) = store
                .execute(&QueryRequest::aggregate(paq.clone()).shards(shards))
                .unwrap();
            // PathAggResult equality is exact f64 equality: the sharded
            // fold must replay the serial per-record operation order.
            assert_eq!(serial, sharded, "aggregation, {shards} shards");
        }
    }

    #[test]
    fn batched_evaluation_answers_duplicates_once() {
        let (store, e) = table1_store();
        let a = QueryRequest::new(GraphQuery::from_edges(vec![e[3], e[4]]));
        let b = QueryRequest::expr(QueryExpr::or(
            GraphQuery::from_edges(vec![e[0]]).into(),
            GraphQuery::from_edges(vec![e[5]]).into(),
        ));
        let batch = vec![a.clone(), b.clone(), a.clone(), a.clone().shards(2)];
        let got = store.evaluate_many(&batch).unwrap();
        assert_eq!(got.len(), 4);
        // Every occurrence answers exactly like a lone execute.
        for (req, (resp, _)) in batch.iter().zip(&got) {
            let (lone, _) = store.execute(req).unwrap();
            assert_eq!(resp, &lone);
        }
        assert_eq!(
            got[0].1, got[2].1,
            "duplicate reports first occurrence's stats"
        );
    }

    #[test]
    fn cyclic_path_aggregation_is_rejected() {
        let mut u = Universe::new();
        let ab = u.edge_by_names("A", "B");
        let ba = u.edge_by_names("B", "A");
        let mut b = RecordBuilder::new();
        b.add(ab, 1.0).add(ba, 2.0);
        let store = GraphStore::load(u, &[b.build()]);
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![ab, ba]), AggFn::Sum);
        assert!(matches!(
            store.path_aggregate(&paq),
            Err(GraphError::CyclicQuery)
        ));
    }
}
