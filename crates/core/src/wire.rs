//! Canonical text serialization of the session API, mirroring
//! [`Universe::to_text`](graphbi_graph::Universe::to_text)'s line-oriented
//! style: [`QueryRequest`] and [`Response`] gain `to_text`/`parse_text`,
//! and this one grammar is shared by the CLI, the `graphbi-serve` wire
//! protocol, the testkit oracle and the docs.
//!
//! Round-trip is lossless *by construction*: the emitters print only
//! canonical forms ([`GraphQuery`] edge lists are already sorted and
//! deduplicated; floats print in Rust's shortest exact representation,
//! which `f64::from_str` reads back bit-identically, `NaN`/`inf`
//! included), so `parse_text(to_text(x))` rebuilds `x` without a
//! normalization pass.
//!
//! # Grammar
//!
//! A request is one line:
//!
//! ```text
//! graph views=<0|1> shards=<n> : <edge-id>*
//! expr  views=<0|1> shards=<n> : <rpn-token>+
//! agg <FUNC> views=<0|1> shards=<n> : <edge-id>*
//! ```
//!
//! Expression payloads are postfix (RPN): an atom token is the atom's
//! edge-id list joined by `,` (`_` for the empty atom); `AND`, `OR` and
//! `ANDNOT` pop two operands. A response is a block of lines:
//!
//! ```text
//! records n=<rows> edges <edge-id>*      matches n=<bits>     aggregates n=<rows> paths=<p>
//! r <rid> <measure>*                     m <rid>*             r <rid> <value>*
//! ```
//!
//! Blocks are self-delimiting (`n=` announces the row count), so several
//! responses concatenate into one stream — how `BATCH` answers travel.

use std::str::FromStr;

use graphbi_bitmap::Bitmap;
use graphbi_graph::{
    AggFn, EdgeId, GraphQuery, PathAggQuery, PathAggResult, QueryExpr, QueryResult,
};

use crate::engine::EvalOptions;
use crate::session::{QueryRequest, RequestKind, Response};

/// Match-id chunking: `matches` blocks print at most this many record ids
/// per `m` line, keeping lines short for log-friendliness.
const MATCH_CHUNK: usize = 512;

/// A wire-grammar violation: which line failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Offending line number within the parsed text (1-based).
    pub line: usize,
    /// What was wrong.
    pub what: String,
}

impl WireError {
    fn new(line: usize, what: impl Into<String>) -> WireError {
        WireError {
            line,
            what: what.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for WireError {}

/// Formats a measure so that parsing it back is bit-identical: Rust's
/// shortest-exact float formatting, with `NaN`/`inf`/`-inf` spelled the
/// way [`f64::from_str`] accepts.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

fn parse_f64(tok: &str, line: usize) -> Result<f64, WireError> {
    f64::from_str(tok).map_err(|_| WireError::new(line, format!("bad float {tok:?}")))
}

fn parse_edge(tok: &str, line: usize) -> Result<EdgeId, WireError> {
    tok.parse::<u32>()
        .map(EdgeId)
        .map_err(|_| WireError::new(line, format!("bad edge id {tok:?}")))
}

/// Parses a `key=value` token, insisting on the expected key — the
/// grammar is canonical, so field order is fixed and every field present.
fn parse_kv<'a>(tok: Option<&'a str>, key: &str, line: usize) -> Result<&'a str, WireError> {
    let tok = tok.ok_or_else(|| WireError::new(line, format!("missing {key}=")))?;
    tok.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| WireError::new(line, format!("expected {key}=…, got {tok:?}")))
}

fn parse_usize(tok: &str, line: usize) -> Result<usize, WireError> {
    tok.parse::<usize>()
        .map_err(|_| WireError::new(line, format!("bad count {tok:?}")))
}

fn atom_token(q: &GraphQuery) -> String {
    if q.edges().is_empty() {
        "_".to_owned()
    } else {
        let ids: Vec<String> = q.edges().iter().map(|e| e.0.to_string()).collect();
        ids.join(",")
    }
}

fn parse_atom(tok: &str, line: usize) -> Result<GraphQuery, WireError> {
    if tok == "_" {
        return Ok(GraphQuery::from_edges(vec![]));
    }
    let mut edges = Vec::new();
    for part in tok.split(',') {
        edges.push(parse_edge(part, line)?);
    }
    Ok(GraphQuery::from_edges(edges))
}

fn expr_rpn(e: &QueryExpr, out: &mut Vec<String>) {
    match e {
        QueryExpr::Atom(q) => out.push(atom_token(q)),
        QueryExpr::And(a, b) => {
            expr_rpn(a, out);
            expr_rpn(b, out);
            out.push("AND".to_owned());
        }
        QueryExpr::Or(a, b) => {
            expr_rpn(a, out);
            expr_rpn(b, out);
            out.push("OR".to_owned());
        }
        QueryExpr::AndNot(a, b) => {
            expr_rpn(a, out);
            expr_rpn(b, out);
            out.push("ANDNOT".to_owned());
        }
    }
}

fn parse_rpn<'a>(
    tokens: impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<QueryExpr, WireError> {
    let mut stack: Vec<QueryExpr> = Vec::new();
    for tok in tokens {
        match tok {
            "AND" | "OR" | "ANDNOT" => {
                let b = stack
                    .pop()
                    .ok_or_else(|| WireError::new(line, format!("{tok} needs two operands")))?;
                let a = stack
                    .pop()
                    .ok_or_else(|| WireError::new(line, format!("{tok} needs two operands")))?;
                stack.push(match tok {
                    "AND" => QueryExpr::and(a, b),
                    "OR" => QueryExpr::or(a, b),
                    _ => QueryExpr::and_not(a, b),
                });
            }
            atom => stack.push(QueryExpr::Atom(parse_atom(atom, line)?)),
        }
    }
    match (stack.pop(), stack.is_empty()) {
        (Some(e), true) => Ok(e),
        (Some(_), false) => Err(WireError::new(line, "unused expression operands")),
        (None, _) => Err(WireError::new(line, "empty expression")),
    }
}

fn parse_agg_fn(tok: &str, line: usize) -> Result<AggFn, WireError> {
    match tok {
        "SUM" => Ok(AggFn::Sum),
        "MIN" => Ok(AggFn::Min),
        "MAX" => Ok(AggFn::Max),
        "COUNT" => Ok(AggFn::Count),
        "AVG" => Ok(AggFn::Avg),
        _ => Err(WireError::new(line, format!("unknown aggregate {tok:?}"))),
    }
}

impl QueryRequest {
    /// Renders the request as one canonical grammar line (no newline).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let knobs = format!(
            "views={} shards={}",
            u8::from(self.options.use_views),
            self.shards
        );
        let mut out = String::new();
        match &self.kind {
            RequestKind::Graph(q) => {
                let _ = write!(out, "graph {knobs} :");
                for e in q.edges() {
                    let _ = write!(out, " {}", e.0);
                }
            }
            RequestKind::Expr(e) => {
                let mut tokens = Vec::new();
                expr_rpn(e, &mut tokens);
                let _ = write!(out, "expr {knobs} : {}", tokens.join(" "));
            }
            RequestKind::Aggregate(p) => {
                let _ = write!(out, "agg {} {knobs} :", p.func.name());
                for e in p.query.edges() {
                    let _ = write!(out, " {}", e.0);
                }
            }
        }
        out
    }

    /// Parses one grammar line back into a request.
    pub fn parse_text(text: &str) -> Result<QueryRequest, WireError> {
        let line = 1;
        let mut toks = text.split_whitespace();
        let verb = toks
            .next()
            .ok_or_else(|| WireError::new(line, "empty request"))?;
        let func = if verb == "agg" {
            Some(parse_agg_fn(
                toks.next()
                    .ok_or_else(|| WireError::new(line, "agg needs a function"))?,
                line,
            )?)
        } else {
            None
        };
        let views = match parse_kv(toks.next(), "views", line)? {
            "0" => false,
            "1" => true,
            other => {
                return Err(WireError::new(
                    line,
                    format!("views must be 0|1, got {other:?}"),
                ))
            }
        };
        let shards = parse_usize(parse_kv(toks.next(), "shards", line)?, line)?;
        match toks.next() {
            Some(":") => {}
            other => return Err(WireError::new(line, format!("expected ':', got {other:?}"))),
        }
        let kind = match verb {
            "graph" => {
                let mut edges = Vec::new();
                for tok in toks {
                    edges.push(parse_edge(tok, line)?);
                }
                RequestKind::Graph(GraphQuery::from_edges(edges))
            }
            "expr" => RequestKind::Expr(parse_rpn(toks, line)?),
            "agg" => {
                let mut edges = Vec::new();
                for tok in toks {
                    edges.push(parse_edge(tok, line)?);
                }
                RequestKind::Aggregate(PathAggQuery::new(
                    GraphQuery::from_edges(edges),
                    func.expect("agg verb parsed a function"),
                ))
            }
            other => return Err(WireError::new(line, format!("unknown verb {other:?}"))),
        };
        let options = if views {
            EvalOptions::default()
        } else {
            EvalOptions::oblivious()
        };
        Ok(QueryRequest::of(kind).opts(options).shards(shards))
    }
}

impl Response {
    /// Renders the response as a self-delimiting block of grammar lines
    /// (trailing newline included).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self {
            Response::Records(r) => {
                let _ = write!(out, "records n={} edges", r.records.len());
                for e in &r.edges {
                    let _ = write!(out, " {}", e.0);
                }
                out.push('\n');
                for (i, &rid) in r.records.iter().enumerate() {
                    let _ = write!(out, "r {rid}");
                    for v in r.row(i) {
                        let _ = write!(out, " {}", fmt_f64(*v));
                    }
                    out.push('\n');
                }
            }
            Response::Matches(b) => {
                let _ = writeln!(out, "matches n={}", b.len());
                let ids: Vec<u32> = b.iter().collect();
                for chunk in ids.chunks(MATCH_CHUNK) {
                    out.push('m');
                    for id in chunk {
                        let _ = write!(out, " {id}");
                    }
                    out.push('\n');
                }
            }
            Response::Aggregates(r) => {
                let _ = writeln!(
                    out,
                    "aggregates n={} paths={}",
                    r.records.len(),
                    r.path_count
                );
                for (i, &rid) in r.records.iter().enumerate() {
                    let _ = write!(out, "r {rid}");
                    for v in r.row(i) {
                        let _ = write!(out, " {}", fmt_f64(*v));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Number of grammar lines [`Response::to_text`] produces — what a
    /// framed protocol announces before the block.
    pub fn line_count(&self) -> usize {
        match self {
            Response::Records(r) => 1 + r.records.len(),
            Response::Matches(b) => {
                1 + (usize::try_from(b.len()).unwrap_or(usize::MAX)).div_ceil(MATCH_CHUNK)
            }
            Response::Aggregates(r) => 1 + r.records.len(),
        }
    }

    /// Parses exactly one response block; the text must contain nothing
    /// else.
    pub fn parse_text(text: &str) -> Result<Response, WireError> {
        let mut lines = text.lines();
        let mut lineno = 0usize;
        let resp = Response::read_block(&mut lines, &mut lineno)?;
        match lines.next() {
            None => Ok(resp),
            Some(extra) => Err(WireError::new(
                lineno + 1,
                format!("trailing content {extra:?}"),
            )),
        }
    }

    /// Reads one self-delimiting response block from a line stream,
    /// leaving the stream positioned after it — `BATCH` answers are
    /// parsed by calling this once per request. `lineno` counts consumed
    /// lines for error reporting.
    pub fn read_block<'a, I>(lines: &mut I, lineno: &mut usize) -> Result<Response, WireError>
    where
        I: Iterator<Item = &'a str>,
    {
        let head = next_line(lines, lineno, "expected response header")?;
        let head_no = *lineno;
        let mut toks = head.split_whitespace();
        let verb = toks
            .next()
            .ok_or_else(|| WireError::new(head_no, "empty response header"))?;
        match verb {
            "records" => {
                let n = parse_usize(parse_kv(toks.next(), "n", head_no)?, head_no)?;
                match toks.next() {
                    Some("edges") => {}
                    other => {
                        return Err(WireError::new(
                            head_no,
                            format!("expected 'edges', got {other:?}"),
                        ))
                    }
                }
                let mut edges = Vec::new();
                for tok in toks {
                    edges.push(parse_edge(tok, head_no)?);
                }
                let mut records = Vec::with_capacity(n);
                let mut measures = Vec::with_capacity(n * edges.len());
                for _ in 0..n {
                    let row = next_line(lines, lineno, "expected 'r' row")?;
                    let rid = parse_row(row, "r", 1 + edges.len(), *lineno, &mut measures)?;
                    records.push(rid);
                }
                Ok(Response::Records(QueryResult {
                    records,
                    edges,
                    measures,
                }))
            }
            "matches" => {
                let n = parse_usize(parse_kv(toks.next(), "n", head_no)?, head_no)?;
                if let Some(extra) = toks.next() {
                    return Err(WireError::new(head_no, format!("trailing token {extra:?}")));
                }
                let mut ids: Vec<u32> = Vec::with_capacity(n);
                while ids.len() < n {
                    let row = next_line(lines, lineno, "expected 'm' row")?;
                    let mut row_toks = row.split_whitespace();
                    if row_toks.next() != Some("m") {
                        return Err(WireError::new(*lineno, "expected 'm' row"));
                    }
                    let before = ids.len();
                    for tok in row_toks {
                        ids.push(tok.parse::<u32>().map_err(|_| {
                            WireError::new(*lineno, format!("bad record id {tok:?}"))
                        })?);
                    }
                    if ids.len() == before || ids.len() - before > MATCH_CHUNK {
                        return Err(WireError::new(*lineno, "bad 'm' chunk size"));
                    }
                }
                if ids.len() != n {
                    return Err(WireError::new(
                        *lineno,
                        format!("match count mismatch: {} != {n}", ids.len()),
                    ));
                }
                Ok(Response::Matches(ids.into_iter().collect::<Bitmap>()))
            }
            "aggregates" => {
                let n = parse_usize(parse_kv(toks.next(), "n", head_no)?, head_no)?;
                let paths = parse_usize(parse_kv(toks.next(), "paths", head_no)?, head_no)?;
                if let Some(extra) = toks.next() {
                    return Err(WireError::new(head_no, format!("trailing token {extra:?}")));
                }
                let mut records = Vec::with_capacity(n);
                let mut values = Vec::with_capacity(n * paths);
                for _ in 0..n {
                    let row = next_line(lines, lineno, "expected 'r' row")?;
                    let rid = parse_row(row, "r", 1 + paths, *lineno, &mut values)?;
                    records.push(rid);
                }
                Ok(Response::Aggregates(PathAggResult {
                    records,
                    path_count: paths,
                    values,
                }))
            }
            other => Err(WireError::new(
                head_no,
                format!("unknown response header {other:?}"),
            )),
        }
    }
}

/// Consumes one line from the stream, bumping the line counter.
fn next_line<'a, I>(lines: &mut I, lineno: &mut usize, what: &str) -> Result<&'a str, WireError>
where
    I: Iterator<Item = &'a str>,
{
    *lineno += 1;
    lines
        .next()
        .ok_or_else(|| WireError::new(*lineno, format!("unexpected end of block: {what}")))
}

/// Parses one `r <rid> <float>*` row with an exact token count, pushing
/// the floats onto `out` and returning the record id.
fn parse_row(
    row: &str,
    tag: &str,
    width: usize,
    lineno: usize,
    out: &mut Vec<f64>,
) -> Result<u32, WireError> {
    let mut toks = row.split_whitespace();
    if toks.next() != Some(tag) {
        return Err(WireError::new(lineno, format!("expected {tag:?} row")));
    }
    let rid = toks
        .next()
        .ok_or_else(|| WireError::new(lineno, "row missing record id"))?
        .parse::<u32>()
        .map_err(|_| WireError::new(lineno, "bad record id"))?;
    let mut got = 1usize;
    for tok in toks {
        out.push(parse_f64(tok, lineno)?);
        got += 1;
    }
    if got != width {
        return Err(WireError::new(
            lineno,
            format!("row width {got} != {width}"),
        ));
    }
    Ok(rid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::QueryRequest;

    fn q(ids: &[u32]) -> GraphQuery {
        GraphQuery::from_edges(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn request_round_trips_every_kind() {
        let reqs = vec![
            QueryRequest::new(q(&[3, 1, 2])),
            QueryRequest::new(q(&[])).oblivious().shards(8),
            QueryRequest::expr(QueryExpr::and_not(
                QueryExpr::or(QueryExpr::Atom(q(&[1, 2])), QueryExpr::Atom(q(&[]))),
                QueryExpr::Atom(q(&[7])),
            ))
            .shards(4),
            QueryRequest::aggregate(PathAggQuery::new(q(&[5, 6]), AggFn::Avg)).oblivious(),
        ];
        for r in reqs {
            let text = r.to_text();
            let back = QueryRequest::parse_text(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, r, "{text}");
            assert_eq!(back.to_text(), text, "re-render must be stable");
        }
    }

    #[test]
    fn request_grammar_examples_are_stable() {
        assert_eq!(
            QueryRequest::new(q(&[2, 1])).to_text(),
            "graph views=1 shards=1 : 1 2"
        );
        assert_eq!(
            QueryRequest::expr(QueryExpr::Atom(q(&[]))).to_text(),
            "expr views=1 shards=1 : _"
        );
        assert_eq!(
            QueryRequest::aggregate(PathAggQuery::new(q(&[1]), AggFn::Sum))
                .oblivious()
                .shards(2)
                .to_text(),
            "agg SUM views=0 shards=2 : 1"
        );
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "",
            "graph",
            "graph views=2 shards=1 :",
            "graph views=1 shards=x :",
            "graph views=1 shards=1",
            "graph views=1 shards=1 : nope",
            "expr views=1 shards=1 :",
            "expr views=1 shards=1 : 1 2 AND AND",
            "expr views=1 shards=1 : 1 2",
            "agg FROB views=1 shards=1 : 1",
            "frob views=1 shards=1 :",
        ] {
            assert!(QueryRequest::parse_text(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn response_round_trips_including_nan_and_inf() {
        let resps = vec![
            Response::Records(QueryResult {
                records: vec![0, 3],
                edges: vec![EdgeId(1), EdgeId(4)],
                measures: vec![1.5, f64::NAN, f64::INFINITY, -0.0],
            }),
            Response::Records(QueryResult {
                records: vec![],
                edges: vec![],
                measures: vec![],
            }),
            Response::Matches((0..1300u32).collect()),
            Response::Matches(Bitmap::new()),
            Response::Aggregates(PathAggResult {
                records: vec![7],
                path_count: 2,
                values: vec![f64::NEG_INFINITY, 1e300],
            }),
        ];
        for r in resps {
            let text = r.to_text();
            assert_eq!(text.lines().count(), r.line_count(), "{text}");
            let back = Response::parse_text(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            // NaN breaks value equality; canonical text equality is the
            // lossless-by-construction check.
            assert_eq!(back.to_text(), text);
        }
    }

    #[test]
    fn response_blocks_self_delimit() {
        let a = Response::Matches((0..5u32).collect());
        let b = Response::Records(QueryResult {
            records: vec![1],
            edges: vec![EdgeId(0)],
            measures: vec![2.25],
        });
        let stream = format!("{}{}", a.to_text(), b.to_text());
        let mut lines = stream.lines();
        let mut lineno = 0;
        let got_a = Response::read_block(&mut lines, &mut lineno).unwrap();
        let got_b = Response::read_block(&mut lines, &mut lineno).unwrap();
        assert_eq!(got_a.to_text(), a.to_text());
        assert_eq!(got_b.to_text(), b.to_text());
        assert!(lines.next().is_none());
    }

    #[test]
    fn malformed_responses_are_typed_errors() {
        for bad in [
            "",
            "records n=1 edges 0\n",
            "records n=1 edges 0\nr 1\n",
            "records n=1 edges 0\nr 1 2.0 3.0\n",
            "matches n=3\nm 1 2\n",
            "matches n=1\nz 1\n",
            "aggregates n=1 paths=1\nr x 1.0\n",
            "records n=0 edges\nextra\n",
        ] {
            assert!(Response::parse_text(bad).is_err(), "{bad:?}");
        }
    }
}
