//! Plan inspection: what a query will fetch, before running it.

use graphbi_views::rewrite_query;

use crate::viewmgr::ViewCatalog;
use crate::GraphStore;
use graphbi_graph::{EdgeId, GraphQuery};

/// The physical plan of a graph query, as chosen by the rewriter.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Graph views the structural phase will AND (catalog indices).
    pub views: Vec<usize>,
    /// Base edge bitmaps still fetched.
    pub residual_edges: Vec<EdgeId>,
    /// Bitmap columns fetched in total (the paper's structural cost).
    pub bitmap_cost: usize,
    /// The oblivious plan's cost, for comparison.
    pub oblivious_cost: usize,
    /// Upper bound on matching records: the smallest cardinality among the
    /// bitmaps the plan touches.
    pub estimated_matches: u64,
    /// Vertical sub-relations the measure fetch will touch.
    pub partitions: usize,
}

impl Plan {
    /// Renders the plan in a compact `EXPLAIN`-style block.
    pub fn render(&self, store: &GraphStore) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "structural: {} bitmap column(s) (oblivious: {})",
            self.bitmap_cost, self.oblivious_cost
        );
        for &v in &self.views {
            let labels: Vec<String> = store.graph_views()[v]
                .edges
                .iter()
                .map(|&e| store.universe().edge_label(e))
                .collect();
            let _ = writeln!(out, "  view #{v}: {}", labels.join(" "));
        }
        if !self.residual_edges.is_empty() {
            let labels: Vec<String> = self
                .residual_edges
                .iter()
                .map(|&e| store.universe().edge_label(e))
                .collect();
            let _ = writeln!(out, "  edges: {}", labels.join(" "));
        }
        let _ = writeln!(out, "estimated matches ≤ {}", self.estimated_matches);
        let _ = write!(out, "measure fetch: {} partition(s)", self.partitions);
        out
    }
}

impl GraphStore {
    /// Computes the plan the engine would use for `query`, without
    /// executing it. Cost-free except for reading bitmap cardinalities.
    pub fn explain(&self, query: &GraphQuery) -> Plan {
        let catalog: &ViewCatalog = self.catalog();
        let rewrite = rewrite_query(query, &catalog.graph_view_edges());
        let mut estimated = if query.is_empty() {
            self.record_count()
        } else {
            u64::MAX
        };
        let mut scratch = graphbi_columnstore::IoStats::new();
        for &v in &rewrite.views {
            let b = self
                .relation()
                .view_bitmap(catalog.graph_views[v].id, &mut scratch);
            estimated = estimated.min(b.len());
        }
        for &e in &rewrite.residual_edges {
            let b = self.relation().edge_bitmap(e, &mut scratch);
            estimated = estimated.min(b.len());
        }
        let mut parts = std::collections::BTreeSet::new();
        for &e in query.edges() {
            parts.insert(self.relation().partition_of(e));
        }
        Plan {
            bitmap_cost: rewrite.bitmap_cost(),
            oblivious_cost: query.len(),
            views: rewrite.views,
            residual_edges: rewrite.residual_edges,
            estimated_matches: if estimated == u64::MAX { 0 } else { estimated },
            partitions: parts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{RecordBuilder, Universe};

    fn store() -> (GraphStore, Vec<EdgeId>) {
        let mut u = Universe::new();
        let edges: Vec<EdgeId> = (0..6)
            .map(|i| u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1)))
            .collect();
        let mut records = Vec::new();
        for r in 0..100u32 {
            let mut b = RecordBuilder::new();
            for (i, &e) in edges.iter().enumerate() {
                if (r as usize).is_multiple_of(i + 2) {
                    b.add(e, 1.0);
                }
            }
            records.push(b.build());
        }
        (GraphStore::load(u, &records), edges)
    }

    #[test]
    fn oblivious_plan_fetches_every_edge() {
        let (store, e) = store();
        let q = GraphQuery::from_edges(vec![e[0], e[1], e[2]]);
        let plan = store.explain(&q);
        assert!(plan.views.is_empty());
        assert_eq!(plan.bitmap_cost, 3);
        assert_eq!(plan.oblivious_cost, 3);
        assert_eq!(plan.partitions, 1);
        // Estimate is the rarest edge's cardinality and bounds the answer.
        let (result, _) = store.evaluate(&q);
        assert!(result.len() as u64 <= plan.estimated_matches);
    }

    #[test]
    fn views_shrink_the_plan() {
        let (mut store, e) = store();
        let q = GraphQuery::from_edges(vec![e[0], e[1], e[2]]);
        store.materialize_graph_view(vec![e[0], e[1], e[2]]);
        let plan = store.explain(&q);
        assert_eq!(plan.views, vec![0]);
        assert!(plan.residual_edges.is_empty());
        assert_eq!(plan.bitmap_cost, 1);
        assert!(plan.estimated_matches <= store.record_count());
        let rendered = plan.render(&store);
        assert!(rendered.contains("view #0"), "{rendered}");
        assert!(rendered.contains("oblivious: 3"), "{rendered}");
    }

    #[test]
    fn empty_query_estimates_everything() {
        let (store, _) = store();
        let plan = store.explain(&GraphQuery::from_edges(vec![]));
        assert_eq!(plan.estimated_matches, store.record_count());
        assert_eq!(plan.bitmap_cost, 0);
    }
}
