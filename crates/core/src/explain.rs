//! Plan inspection and profiling: what a query will fetch (`EXPLAIN`),
//! and what it actually did (`EXPLAIN ANALYZE` — [`Profile`]).

use std::sync::Arc;

use graphbi_columnstore::{DiskRelation, IoStats};
use graphbi_views::rewrite_query;

use crate::session::{QueryRequest, Response, Session, SessionError};
use crate::viewmgr::ViewCatalog;
use crate::GraphStore;
use graphbi_graph::{EdgeId, GraphQuery};

/// The physical plan of a graph query, as chosen by the rewriter.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Graph views the structural phase will AND (catalog indices).
    pub views: Vec<usize>,
    /// Base edge bitmaps still fetched.
    pub residual_edges: Vec<EdgeId>,
    /// Bitmap columns fetched in total (the paper's structural cost).
    pub bitmap_cost: usize,
    /// The oblivious plan's cost, for comparison.
    pub oblivious_cost: usize,
    /// Upper bound on matching records: the smallest cardinality among the
    /// bitmaps the plan touches.
    pub estimated_matches: u64,
    /// Vertical sub-relations the measure fetch will touch.
    pub partitions: usize,
}

impl Plan {
    /// Renders the plan in a compact `EXPLAIN`-style block.
    pub fn render(&self, store: &GraphStore) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "structural: {} bitmap column(s) (oblivious: {})",
            self.bitmap_cost, self.oblivious_cost
        );
        for &v in &self.views {
            let labels: Vec<String> = store.graph_views()[v]
                .edges
                .iter()
                .map(|&e| store.universe().edge_label(e))
                .collect();
            let _ = writeln!(out, "  view #{v}: {}", labels.join(" "));
        }
        if !self.residual_edges.is_empty() {
            let labels: Vec<String> = self
                .residual_edges
                .iter()
                .map(|&e| store.universe().edge_label(e))
                .collect();
            let _ = writeln!(out, "  edges: {}", labels.join(" "));
        }
        let _ = writeln!(out, "estimated matches ≤ {}", self.estimated_matches);
        let _ = write!(out, "measure fetch: {} partition(s)", self.partitions);
        out
    }
}

/// The canonical query-lifecycle phases every [`Profile`] reports, in
/// execution order. A phase that never ran (e.g. `merge` at one shard)
/// still appears with zero time so downstream parsers — the CI smoke job
/// among them — can rely on the shape.
pub const PHASE_NAMES: [&str; 4] = ["plan", "structural", "measure", "merge"];

/// Wall-clock and span count of one lifecycle phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (one of [`PHASE_NAMES`]).
    pub name: &'static str,
    /// Summed wall-clock of the phase's spans, in nanoseconds.
    pub wall_ns: u64,
    /// Number of spans recorded for the phase.
    pub spans: u64,
}

/// `EXPLAIN ANALYZE`: what one executed request actually did.
///
/// Produced by [`Session::profile`], which runs the request under a
/// private span collector; each backend's override reports its own
/// backend label. Tracing never changes answers or logical [`IoStats`] —
/// the testkit oracle re-checks that on every run.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Which engine ran the request (`"memory"` or `"disk"`).
    pub backend: &'static str,
    /// Rows in the answer (matching records).
    pub matches: u64,
    /// The planner's pre-execution bound on `matches` (rarest operand).
    pub estimated_matches: u64,
    /// End-to-end wall-clock of the request, in nanoseconds.
    pub total_ns: u64,
    /// The canonical four phases, always in [`PHASE_NAMES`] order.
    pub phases: Vec<PhaseStat>,
    /// Per-shard spans observed (0 when the request ran serially).
    pub shard_spans: u64,
    /// The request's logical I/O cost — identical to an untraced run.
    pub stats: IoStats,
    /// Views the rewriter chose (summed over rewrite events).
    pub views_used: u64,
    /// Base edges left uncovered by the chosen views.
    pub residual_edges: u64,
    /// Coverage ties the selectivity hint broke.
    pub rewrite_ties: u64,
    /// Column-cache hits during this request (disk backend; 0 in memory).
    pub cache_hits: u64,
    /// Column-cache misses during this request.
    pub cache_misses: u64,
    /// Column-cache evictions during this request.
    pub cache_evictions: u64,
    /// Which kernel path served the request (`"scalar"` or `"simd"`).
    pub kernel_path: &'static str,
}

fn response_rows(resp: &Response) -> u64 {
    match resp {
        Response::Records(r) => r.records.len() as u64,
        Response::Matches(b) => b.len(),
        Response::Aggregates(r) => r.records.len() as u64,
    }
}

/// Executes `request` under a fresh span collector and distills the trace.
pub(crate) fn profile_request<S: Session + ?Sized>(
    session: &S,
    backend: &'static str,
    relation: Option<&DiskRelation>,
    request: &QueryRequest,
) -> Result<(Response, Profile), SessionError> {
    let cache_before = relation.map(|r| {
        let (h, m) = r.cache_stats();
        (h, m, r.cache_evictions())
    });
    let collector = Arc::new(graphbi_obs::Collector::new());
    let started = std::time::Instant::now();
    let (resp, stats) = {
        let _tracing = graphbi_obs::install(&collector);
        session.execute(request)?
    };
    let total_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let trace = collector.trace();
    let (cache_hits, cache_misses, cache_evictions) = match (relation, cache_before) {
        (Some(r), Some((h0, m0, e0))) => {
            let (h1, m1) = r.cache_stats();
            (h1 - h0, m1 - m0, r.cache_evictions() - e0)
        }
        _ => (0, 0, 0),
    };
    let phases = PHASE_NAMES
        .iter()
        .map(|&name| {
            let span = match name {
                "plan" => "phase.plan",
                "structural" => "phase.structural",
                "measure" => "phase.measure",
                _ => "phase.merge",
            };
            PhaseStat {
                name,
                wall_ns: trace.sum_ns(span),
                spans: trace.count(span),
            }
        })
        .collect();
    let profile = Profile {
        backend,
        matches: response_rows(&resp),
        estimated_matches: trace
            .min_attr("phase.plan", "estimated_matches")
            .unwrap_or(0),
        total_ns,
        phases,
        shard_spans: trace.count("shard.structural") + trace.count("shard.measure"),
        stats,
        views_used: trace.sum_event_attr("rewrite.cover", "views"),
        residual_edges: trace.sum_event_attr("rewrite.cover", "residual_edges"),
        rewrite_ties: trace.sum_event_attr("rewrite.cover", "ties"),
        cache_hits,
        cache_misses,
        cache_evictions,
        kernel_path: graphbi_bitmap::kernels::path_name(),
    };
    Ok((resp, profile))
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

impl Profile {
    /// Renders the profile as a compact `EXPLAIN ANALYZE` block.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ANALYZE ({} backend)", self.backend);
        let _ = writeln!(
            out,
            "matches: {} actual, ≤ {} estimated",
            self.matches, self.estimated_matches
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<11} {:>12}  ({} span(s))",
                p.name,
                fmt_ms(p.wall_ns),
                p.spans
            );
        }
        let _ = writeln!(
            out,
            "total: {} ({} shard span(s))",
            fmt_ms(self.total_ns),
            self.shard_spans
        );
        let _ = writeln!(
            out,
            "rewrite: {} view(s) + {} residual edge(s), {} tie(s) broken",
            self.views_used, self.residual_edges, self.rewrite_ties
        );
        let s = &self.stats;
        let _ = writeln!(
            out,
            "bitmaps: {} fetched ({} base + {} view), {} fetch(es) skipped",
            s.bitmap_columns + s.view_bitmap_columns,
            s.bitmap_columns,
            s.view_bitmap_columns,
            s.fetches_skipped
        );
        let _ = writeln!(
            out,
            "measures: {} column(s) (+{} agg view(s)), {} value(s), {} partition(s), {} join row(s)",
            s.measure_columns, s.agg_view_columns, s.values_fetched, s.partitions_touched, s.join_rows
        );
        let _ = writeln!(
            out,
            "disk: {} read(s), {:.1} KiB",
            s.disk_reads,
            s.disk_bytes as f64 / 1024.0
        );
        let looked = self.cache_hits + self.cache_misses;
        let rate = if looked == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / looked as f64
        };
        let _ = writeln!(
            out,
            "cache: {} hit(s) / {} miss(es) ({rate:.1}% hit rate), {} eviction(s)",
            self.cache_hits, self.cache_misses, self.cache_evictions
        );
        let _ = write!(out, "kernels: {}", self.kernel_path);
        out
    }

    /// Renders the profile as a single JSON object — the same document the
    /// CI profile-smoke job parses back with [`graphbi_obs::json::parse`].
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"backend\":{},\"matches\":{},\"estimated_matches\":{},\"total_ns\":{}",
            graphbi_obs::json::quote(self.backend),
            self.matches,
            self.estimated_matches,
            self.total_ns
        );
        out.push_str(",\"phases\":{");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"wall_ns\":{},\"spans\":{}}}",
                graphbi_obs::json::quote(p.name),
                p.wall_ns,
                p.spans
            );
        }
        let _ = write!(out, "}},\"shard_spans\":{}", self.shard_spans);
        let _ = write!(
            out,
            ",\"rewrite\":{{\"views\":{},\"residual_edges\":{},\"ties\":{}}}",
            self.views_used, self.residual_edges, self.rewrite_ties
        );
        let s = &self.stats;
        let _ = write!(
            out,
            ",\"io\":{{\"bitmap_columns\":{},\"view_bitmap_columns\":{},\"measure_columns\":{},\
             \"agg_view_columns\":{},\"values_fetched\":{},\"partitions_touched\":{},\
             \"join_rows\":{},\"disk_reads\":{},\"disk_bytes\":{},\"fetches_skipped\":{}}}",
            s.bitmap_columns,
            s.view_bitmap_columns,
            s.measure_columns,
            s.agg_view_columns,
            s.values_fetched,
            s.partitions_touched,
            s.join_rows,
            s.disk_reads,
            s.disk_bytes,
            s.fetches_skipped
        );
        let _ = write!(
            out,
            ",\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
            self.cache_hits, self.cache_misses, self.cache_evictions
        );
        let _ = write!(
            out,
            ",\"kernels\":{}}}",
            graphbi_obs::json::quote(self.kernel_path)
        );
        out
    }
}

impl GraphStore {
    /// Computes the plan the engine would use for `query`, without
    /// executing it. Cost-free except for reading bitmap cardinalities.
    pub fn explain(&self, query: &GraphQuery) -> Plan {
        let catalog: &ViewCatalog = self.catalog();
        let rewrite = rewrite_query(query, &catalog.graph_view_edges());
        let mut estimated = if query.is_empty() {
            self.record_count()
        } else {
            u64::MAX
        };
        let mut scratch = graphbi_columnstore::IoStats::new();
        for &v in &rewrite.views {
            let b = self
                .relation()
                .view_bitmap(catalog.graph_views[v].id, &mut scratch);
            estimated = estimated.min(b.len());
        }
        for &e in &rewrite.residual_edges {
            let b = self.relation().edge_bitmap(e, &mut scratch);
            estimated = estimated.min(b.len());
        }
        let mut parts = std::collections::BTreeSet::new();
        for &e in query.edges() {
            parts.insert(self.relation().partition_of(e));
        }
        Plan {
            bitmap_cost: rewrite.bitmap_cost(),
            oblivious_cost: query.len(),
            views: rewrite.views,
            residual_edges: rewrite.residual_edges,
            estimated_matches: if estimated == u64::MAX { 0 } else { estimated },
            partitions: parts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{RecordBuilder, Universe};

    fn store() -> (GraphStore, Vec<EdgeId>) {
        let mut u = Universe::new();
        let edges: Vec<EdgeId> = (0..6)
            .map(|i| u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1)))
            .collect();
        let mut records = Vec::new();
        for r in 0..100u32 {
            let mut b = RecordBuilder::new();
            for (i, &e) in edges.iter().enumerate() {
                if (r as usize).is_multiple_of(i + 2) {
                    b.add(e, 1.0);
                }
            }
            records.push(b.build());
        }
        (GraphStore::load(u, &records), edges)
    }

    #[test]
    fn oblivious_plan_fetches_every_edge() {
        let (store, e) = store();
        let q = GraphQuery::from_edges(vec![e[0], e[1], e[2]]);
        let plan = store.explain(&q);
        assert!(plan.views.is_empty());
        assert_eq!(plan.bitmap_cost, 3);
        assert_eq!(plan.oblivious_cost, 3);
        assert_eq!(plan.partitions, 1);
        // Estimate is the rarest edge's cardinality and bounds the answer.
        let (result, _) = store.evaluate(&q);
        assert!(result.len() as u64 <= plan.estimated_matches);
    }

    #[test]
    fn views_shrink_the_plan() {
        let (mut store, e) = store();
        let q = GraphQuery::from_edges(vec![e[0], e[1], e[2]]);
        store.materialize_graph_view(vec![e[0], e[1], e[2]]);
        let plan = store.explain(&q);
        assert_eq!(plan.views, vec![0]);
        assert!(plan.residual_edges.is_empty());
        assert_eq!(plan.bitmap_cost, 1);
        assert!(plan.estimated_matches <= store.record_count());
        let rendered = plan.render(&store);
        assert!(rendered.contains("view #0"), "{rendered}");
        assert!(rendered.contains("oblivious: 3"), "{rendered}");
    }

    #[test]
    fn empty_query_estimates_everything() {
        let (store, _) = store();
        let plan = store.explain(&GraphQuery::from_edges(vec![]));
        assert_eq!(plan.estimated_matches, store.record_count());
        assert_eq!(plan.bitmap_cost, 0);
    }

    #[test]
    fn profile_matches_untraced_run_and_has_all_phases() {
        let (store, e) = store();
        let q = GraphQuery::from_edges(vec![e[0], e[1], e[2]]);
        let (plain, plain_stats) = store.evaluate(&q);
        let req = crate::session::QueryRequest::new(q);
        let (resp, profile) = store.profile(&req).unwrap();
        match resp {
            crate::session::Response::Records(r) => assert_eq!(r, plain),
            other => panic!("unexpected response: {other:?}"),
        }
        assert_eq!(profile.stats, plain_stats, "tracing must not change stats");
        assert_eq!(profile.matches, plain.records.len() as u64);
        assert!(profile.matches <= profile.estimated_matches);
        assert_eq!(profile.backend, "memory");
        let names: Vec<&str> = profile.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, PHASE_NAMES);
        // plan/structural/measure all ran at least once.
        assert!(profile.phases[0].spans >= 1);
        assert!(profile.phases[1].spans >= 1);
        assert!(profile.phases[2].spans >= 1);
        assert!(profile.total_ns > 0);
    }

    #[test]
    fn profile_json_round_trips_through_own_parser() {
        let (store, e) = store();
        let req =
            crate::session::QueryRequest::new(GraphQuery::from_edges(vec![e[0], e[1]])).shards(3);
        let (_, profile) = store.profile(&req).unwrap();
        let doc = graphbi_obs::json::parse(&profile.render_json()).unwrap();
        assert_eq!(
            doc.get("backend").and_then(graphbi_obs::json::Json::as_str),
            Some("memory")
        );
        assert_eq!(
            doc.get("matches").and_then(graphbi_obs::json::Json::as_u64),
            Some(profile.matches)
        );
        let phases = doc.get("phases").expect("phases object");
        for name in PHASE_NAMES {
            let p = phases.get(name).unwrap_or_else(|| panic!("phase {name}"));
            assert_eq!(
                p.get("wall_ns").and_then(graphbi_obs::json::Json::as_u64),
                Some(
                    profile
                        .phases
                        .iter()
                        .find(|x| x.name == name)
                        .unwrap()
                        .wall_ns
                )
            );
        }
        assert_eq!(
            doc.get("io")
                .and_then(|io| io.get("bitmap_columns"))
                .and_then(graphbi_obs::json::Json::as_u64),
            Some(profile.stats.bitmap_columns)
        );
        // Sharded run recorded per-shard spans and a merge phase.
        assert!(profile.shard_spans > 0, "sharded profile sees shard spans");
        let rendered = profile.render();
        assert!(rendered.contains("EXPLAIN ANALYZE"), "{rendered}");
        assert!(rendered.contains("estimated"), "{rendered}");
    }
}
