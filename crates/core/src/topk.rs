//! Top-k consolidation of path aggregates.
//!
//! The paper's Q3 — "compute the longest delay for delivering an article" —
//! is a consolidation over the per-record aggregates: rank records by their
//! aggregate and keep the extremes. §3.4 notes such consolidation "is
//! performed on the flat data returned from the underlying graphs"; this
//! helper does it without materializing and sorting the full result.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use graphbi_bitmap::RecordId;
use graphbi_graph::{GraphError, PathAggQuery};

use crate::GraphStore;

/// A record with its ranking aggregate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedRecord {
    /// The record.
    pub record: RecordId,
    /// Its aggregate (the maximum across the query's maximal paths).
    pub value: f64,
}

/// Min-heap entry (reversed ordering) for top-k selection.
struct HeapEntry(RankedRecord);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.value == other.0.value && self.0.record == other.0.record
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on value so the heap's max (the eviction candidate) is the
        // smallest value; on ties evict the *largest* record id, keeping the
        // earliest records deterministically.
        other
            .0
            .value
            .total_cmp(&self.0.value)
            .then(self.0.record.cmp(&other.0.record))
    }
}

impl GraphStore {
    /// The `k` records with the largest aggregates under `query` (each
    /// record ranked by the maximum across its maximal-path aggregates;
    /// NaN rows — unmeasured paths — are skipped). Descending by value,
    /// ties by ascending record id.
    pub fn top_k_aggregates(
        &self,
        query: &PathAggQuery,
        k: usize,
    ) -> Result<Vec<RankedRecord>, GraphError> {
        let (result, _) = self.path_aggregate(query)?;
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for (i, &record) in result.records.iter().enumerate() {
            let value = result
                .row(i)
                .iter()
                .copied()
                .filter(|v| !v.is_nan())
                .fold(f64::NEG_INFINITY, f64::max);
            if value == f64::NEG_INFINITY {
                continue;
            }
            heap.push(HeapEntry(RankedRecord { record, value }));
            if heap.len() > k {
                heap.pop(); // drop the current smallest
            }
        }
        let mut out: Vec<RankedRecord> = heap.into_iter().map(|e| e.0).collect();
        out.sort_by(|a, b| b.value.total_cmp(&a.value).then(a.record.cmp(&b.record)));
        Ok(out)
    }

    /// The single worst record — Q3's "longest delay".
    pub fn max_aggregate(&self, query: &PathAggQuery) -> Result<Option<RankedRecord>, GraphError> {
        Ok(self.top_k_aggregates(query, 1)?.into_iter().next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{AggFn, EdgeId, GraphQuery, RecordBuilder, Universe};

    fn store() -> (GraphStore, Vec<EdgeId>) {
        let mut u = Universe::new();
        let e0 = u.edge_by_names("A", "B");
        let e1 = u.edge_by_names("B", "C");
        let mut records = Vec::new();
        for i in 0..20u32 {
            let mut b = RecordBuilder::new();
            b.add(e0, f64::from(i)).add(e1, 1.0);
            records.push(b.build());
        }
        (GraphStore::load(u, &records), vec![e0, e1])
    }

    #[test]
    fn top_k_returns_largest_sums_descending() {
        let (store, e) = store();
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![e[0], e[1]]), AggFn::Sum);
        let top = store.top_k_aggregates(&paq, 3).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].record, 19);
        assert_eq!(top[0].value, 20.0);
        assert_eq!(top[1].record, 18);
        assert_eq!(top[2].record, 17);
    }

    #[test]
    fn k_larger_than_result_returns_all() {
        let (store, e) = store();
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![e[0]]), AggFn::Max);
        let top = store.top_k_aggregates(&paq, 100).unwrap();
        assert_eq!(top.len(), 20);
        assert!(top.windows(2).all(|w| w[0].value >= w[1].value));
    }

    #[test]
    fn max_aggregate_is_q3() {
        let (store, e) = store();
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![e[0], e[1]]), AggFn::Max);
        let worst = store.max_aggregate(&paq).unwrap().unwrap();
        assert_eq!(worst.record, 19);
        assert_eq!(worst.value, 19.0);
    }

    #[test]
    fn empty_result_yields_nothing() {
        let (store, _) = store();
        let mut u2 = Universe::new();
        u2.edge_by_names("A", "B");
        u2.edge_by_names("B", "C");
        let missing = u2.edge_by_names("X", "Y");
        // Edge id 2 is outside every record (but inside the relation? It is
        // not — so use an edge both records lack).
        let _ = missing;
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![]), AggFn::Sum);
        // Empty query matches everything but has no paths → no values.
        let top = store.top_k_aggregates(&paq, 5).unwrap();
        assert!(top.is_empty());
    }

    #[test]
    fn ties_break_by_record_id() {
        let mut u = Universe::new();
        let e0 = u.edge_by_names("A", "B");
        let mut records = Vec::new();
        for _ in 0..5 {
            let mut b = RecordBuilder::new();
            b.add(e0, 7.0);
            records.push(b.build());
        }
        let store = GraphStore::load(u, &records);
        let paq = PathAggQuery::new(GraphQuery::from_edges(vec![e0]), AggFn::Sum);
        let top = store.top_k_aggregates(&paq, 3).unwrap();
        assert_eq!(
            top.iter().map(|r| r.record).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
