//! Logical units spanning multiple records (§3.1).
//!
//! "A collection of graph records may refer to the same logical unit, as in
//! the case where an order is broken into multiple sub-orders that are
//! processed independently. This is … handled easily in our framework by
//! using metadata information … via the use of unique record-ids that join
//! these sub-orders." A [`GroupIndex`] holds that metadata: it maps group
//! ids to their member records and answers queries at the *unit* level — a
//! unit matches a graph query when the union of its members' edges contains
//! the query graph.

use std::collections::HashMap;

use graphbi_bitmap::{Bitmap, RecordId};
use graphbi_columnstore::IoStats;
use graphbi_graph::{GraphQuery, GraphRecord};

use crate::GraphStore;

/// Metadata index over record groups.
#[derive(Clone, Debug, Default)]
pub struct GroupIndex {
    /// group id → member record ids (ascending).
    members: HashMap<u64, Vec<RecordId>>,
    /// record id → group id, for mapping result bitmaps to groups.
    group_of: HashMap<RecordId, u64>,
}

impl GroupIndex {
    /// Builds the index from records in load order (record ids are the
    /// positions, matching [`GraphStore::load`]). Ungrouped records are not
    /// indexed.
    pub fn from_records<'a, I>(records: I) -> GroupIndex
    where
        I: IntoIterator<Item = &'a GraphRecord>,
    {
        let mut idx = GroupIndex::default();
        for (rid, rec) in records.into_iter().enumerate() {
            if let Some(g) = rec.group() {
                let rid = u32::try_from(rid).expect("record id fits u32");
                idx.members.entry(g).or_default().push(rid);
                idx.group_of.insert(rid, g);
            }
        }
        idx
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.members.len()
    }

    /// Member records of `group`.
    pub fn members(&self, group: u64) -> &[RecordId] {
        self.members.get(&group).map_or(&[], Vec::as_slice)
    }

    /// The group of `record`, if any.
    pub fn group_of(&self, record: RecordId) -> Option<u64> {
        self.group_of.get(&record).copied()
    }

    /// Groups whose *union of members* contains the query graph: for every
    /// query edge, at least one member record carries it (§3.1's sub-order
    /// semantics). Evaluated edge-by-edge on the store's bitmaps, then
    /// intersected at the group level.
    pub fn matching_groups(
        &self,
        store: &GraphStore,
        query: &GraphQuery,
        stats: &mut IoStats,
    ) -> Vec<u64> {
        if query.is_empty() {
            let mut all: Vec<u64> = self.members.keys().copied().collect();
            all.sort_unstable();
            return all;
        }
        let mut survivors: Option<Vec<u64>> = None;
        for &e in query.edges() {
            let bitmap: &Bitmap = store.relation().edge_bitmap(e, stats);
            let mut groups_with_edge: Vec<u64> =
                bitmap.iter().filter_map(|rid| self.group_of(rid)).collect();
            groups_with_edge.sort_unstable();
            groups_with_edge.dedup();
            survivors = Some(match survivors {
                None => groups_with_edge,
                Some(prev) => intersect(&prev, &groups_with_edge),
            });
            if survivors.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        survivors.unwrap_or_default()
    }
}

fn intersect(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::{EdgeId, RecordBuilder, Universe};

    /// Two sub-order groups: group 1 covers edges {0,1} across two records,
    /// group 2 covers only {0}; one ungrouped record covers {1}.
    fn setup() -> (GraphStore, GroupIndex, Vec<EdgeId>) {
        let mut u = Universe::new();
        let e0 = u.edge_by_names("A", "B");
        let e1 = u.edge_by_names("B", "C");
        let mk = |edges: &[(EdgeId, f64)], group: Option<u64>| {
            let mut b = RecordBuilder::new();
            for &(e, m) in edges {
                b.add(e, m);
            }
            if let Some(g) = group {
                b.group(g);
            }
            b.build()
        };
        let records = vec![
            mk(&[(e0, 1.0)], Some(1)),
            mk(&[(e1, 2.0)], Some(1)),
            mk(&[(e0, 3.0)], Some(2)),
            mk(&[(e1, 4.0)], None),
        ];
        let idx = GroupIndex::from_records(&records);
        (GraphStore::load(u, &records), idx, vec![e0, e1])
    }

    #[test]
    fn unit_level_matching_spans_sub_orders() {
        let (store, idx, e) = setup();
        let mut stats = IoStats::new();
        // No single record contains both edges, but group 1's union does.
        let q = GraphQuery::from_edges(vec![e[0], e[1]]);
        let (records, _) = store.evaluate(&q);
        assert!(records.is_empty());
        assert_eq!(idx.matching_groups(&store, &q, &mut stats), vec![1]);
    }

    #[test]
    fn single_edge_queries_list_all_covering_groups() {
        let (store, idx, e) = setup();
        let mut stats = IoStats::new();
        let q = GraphQuery::from_edges(vec![e[0]]);
        assert_eq!(idx.matching_groups(&store, &q, &mut stats), vec![1, 2]);
        // Ungrouped record 3 never surfaces as a group.
        let q1 = GraphQuery::from_edges(vec![e[1]]);
        assert_eq!(idx.matching_groups(&store, &q1, &mut stats), vec![1]);
    }

    #[test]
    fn index_bookkeeping() {
        let (_, idx, _) = setup();
        assert_eq!(idx.group_count(), 2);
        assert_eq!(idx.members(1), &[0, 1]);
        assert_eq!(idx.members(2), &[2]);
        assert_eq!(idx.members(9), &[] as &[u32]);
        assert_eq!(idx.group_of(0), Some(1));
        assert_eq!(idx.group_of(3), None);
    }

    #[test]
    fn empty_query_matches_every_group() {
        let (store, idx, _) = setup();
        let mut stats = IoStats::new();
        assert_eq!(
            idx.matching_groups(&store, &GraphQuery::from_edges(vec![]), &mut stats),
            vec![1, 2]
        );
    }
}
