//! The read-write path: MVCC snapshots over base generations plus an
//! in-memory delta, with WAL durability and fold-into-generation
//! compaction.
//!
//! An [`MvccStore`] wraps a base store — in-memory [`GraphStore`] or
//! disk-resident [`crate::disk::DiskGraphStore`] — and a shared
//! [`DeltaStore`] write buffer. Reads never lock writers out:
//! [`MvccStore::snapshot`] captures `(generation, delta Arc, epoch)`
//! under a brief read lock, and because the delta is append-only the
//! snapshot's epoch-filtered view stays bit-stable no matter how many
//! commits or compactions land afterwards.
//!
//! * **Commit** ([`MvccStore::commit`]): on a disk-backed store the batch
//!   is first appended to `wal.gbl` as one CRC32 frame and fsynced — the
//!   durability point — then applied to the delta at the next epoch.
//!   A WAL I/O failure *poisons* the log (the tail may be torn, so no
//!   further appends are allowed) without applying the batch: the commit
//!   is atomically absent. Compaction heals the poison.
//! * **Compaction** ([`MvccStore::compact`]): folds every committed epoch
//!   into a brand-new generation via the crash-safe manifest publish of
//!   [`graphbi_columnstore::persist`], records the fold watermark in a
//!   `wal_fold.txt` sidecar (atomic with the data), truncates the WAL,
//!   and swaps the in-memory state. Generations pinned by live snapshots
//!   are spared from garbage collection until [`MvccStore::gc`] runs
//!   after they unpin.
//! * **Reopen** ([`MvccStore::open_disk`]): loads the live generation,
//!   reads the fold watermark, and replays the WAL — frames at or below
//!   the watermark are folded already and skipped; a torn tail (only ever
//!   an unacknowledged suffix, by the append-only [`graphbi_columnstore::Vfs`]
//!   contract) stops replay cleanly.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use graphbi_bitmap::{Bitmap, RecordId};
use graphbi_columnstore::wal::{self, WAL_FILE};
use graphbi_columnstore::{
    persist, DeltaOp, DeltaStore, IoStats, MasterRelation, StoreError, Verify, VfsHandle,
};
use graphbi_graph::{
    EdgeId, GraphQuery, GraphRecord, PathAggQuery, PathAggResult, QueryExpr, QueryResult,
    RecordBuilder, Universe,
};
use parking_lot::{Mutex, RwLock};

use crate::disk::{self, DiskError, DiskGraphStore};
use crate::session::{QueryRequest, RequestKind, Response, Session, SessionError};
use crate::store::GraphStore;

/// Sidecar holding the decimal epoch up to which the WAL has been folded
/// into the live generation. Published atomically with the generation it
/// describes; absent means nothing was ever folded (watermark 0).
const WAL_FOLD_SIDECAR: &str = "wal_fold.txt";

/// Generation pin counts: `generation → live snapshot count`. Guards
/// superseded generation files from garbage collection.
type PinTable = Arc<Mutex<HashMap<u64, u64>>>;

struct GenPin {
    generation: u64,
    table: PinTable,
}

impl Drop for GenPin {
    fn drop(&mut self) {
        let mut t = self.table.lock();
        if let Some(n) = t.get_mut(&self.generation) {
            *n -= 1;
            if *n == 0 {
                t.remove(&self.generation);
            }
        }
    }
}

/// The immutable half of a snapshot: which base store answers it.
#[derive(Clone)]
enum BaseHandle {
    Mem(Arc<GraphStore>),
    Disk(Arc<DiskGraphStore>),
}

impl BaseHandle {
    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        match self {
            BaseHandle::Mem(s) => s.execute(request),
            BaseHandle::Disk(d) => d.execute(request),
        }
    }

    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        match self {
            BaseHandle::Mem(s) => s.evaluate_many(requests),
            BaseHandle::Disk(d) => d.evaluate_many(requests),
        }
    }

    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        match self {
            BaseHandle::Mem(s) => s.profile(request),
            BaseHandle::Disk(d) => d.profile(request),
        }
    }

    fn universe(&self) -> &Universe {
        match self {
            BaseHandle::Mem(s) => s.universe(),
            BaseHandle::Disk(d) => d.universe(),
        }
    }
}

struct MvccState {
    base: BaseHandle,
    delta: Arc<DeltaStore>,
    generation: u64,
}

struct DiskEnv {
    vfs: VfsHandle,
    dir: PathBuf,
    cache_bytes: usize,
    verify: Verify,
    /// Set when a WAL append failed: the log tail may be torn, so further
    /// appends are refused until compaction rewrites the log.
    wal_poisoned: AtomicBool,
}

fn wal_io(e: io::Error) -> DiskError {
    DiskError::from(StoreError::Io(e))
}

/// A streaming-ingest store: immutable base + delta write buffer, read
/// under snapshot isolation.
pub struct MvccStore {
    state: RwLock<MvccState>,
    /// Serializes commits and compactions against each other (readers are
    /// never blocked — they only take the brief `state` read lock).
    write_lock: Mutex<()>,
    disk: Option<DiskEnv>,
    pins: PinTable,
}

impl MvccStore {
    /// Wraps an in-memory base store. Commits are applied to the delta
    /// only (no WAL — memory flavor has no durability to protect);
    /// compaction folds them into a rebuilt base.
    pub fn new_mem(store: GraphStore) -> MvccStore {
        let count = store.record_count();
        MvccStore {
            state: RwLock::new(MvccState {
                base: BaseHandle::Mem(Arc::new(store)),
                delta: Arc::new(DeltaStore::new(count)),
                generation: 0,
            }),
            write_lock: Mutex::new(()),
            disk: None,
            pins: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Opens a disk-backed store and replays the WAL on top of it: frames
    /// at or below the fold watermark are skipped, a torn tail stops
    /// replay, and everything else is re-applied at its original epoch.
    pub fn open_disk(
        dir: &Path,
        cache_bytes: usize,
        vfs: VfsHandle,
        verify: Verify,
    ) -> Result<MvccStore, DiskError> {
        let base = DiskGraphStore::open_with(dir, cache_bytes, vfs.clone(), verify)?;
        let generation = persist::live_generation(vfs.as_ref(), dir)?;
        let folded = if persist::has_sidecar(vfs.as_ref(), dir, WAL_FOLD_SIDECAR) {
            let bytes = persist::read_sidecar(vfs.as_ref(), dir, WAL_FOLD_SIDECAR)?;
            std::str::from_utf8(&bytes)
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .ok_or(DiskError::ViewsMeta("wal fold sidecar malformed"))?
        } else {
            0
        };
        let delta = DeltaStore::with_epoch(base.record_count(), folded);
        let mut replayed = 0u64;
        for (epoch, ops) in wal::replay(vfs.as_ref(), &dir.join(WAL_FILE)).map_err(wal_io)? {
            if delta.apply_at(epoch, &ops) {
                replayed += 1;
            }
        }
        graphbi_obs::global()
            .counter("graphbi_wal_replayed_frames_total")
            .add(replayed);
        Ok(MvccStore {
            state: RwLock::new(MvccState {
                base: BaseHandle::Disk(Arc::new(base)),
                delta: Arc::new(delta),
                generation,
            }),
            write_lock: Mutex::new(()),
            disk: Some(DiskEnv {
                vfs,
                dir: dir.to_path_buf(),
                cache_bytes,
                verify,
                wal_poisoned: AtomicBool::new(false),
            }),
            pins: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Pins the current `(generation, delta epoch)` pair. Cheap: clones
    /// two `Arc`s under a read lock. The snapshot answers every query as
    /// of this instant, bit-identically, regardless of concurrent commits
    /// and compactions; on disk-backed stores it also pins the generation
    /// files against garbage collection.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.state.read();
        let pin = self.disk.as_ref().map(|_| {
            let mut pins = self.pins.lock();
            *pins.entry(state.generation).or_insert(0) += 1;
            Arc::new(GenPin {
                generation: state.generation,
                table: self.pins.clone(),
            })
        });
        Snapshot {
            base: state.base.clone(),
            delta: state.delta.clone(),
            epoch: state.delta.epoch(),
            generation: state.generation,
            _pin: pin,
        }
    }

    /// Commits one batch of writes at the next epoch and returns it.
    ///
    /// Disk flavor: the batch is WAL-appended and fsynced *before* it is
    /// applied — once this returns `Ok`, the commit survives any crash.
    /// If the append fails the commit is atomically absent and the WAL is
    /// poisoned (its tail may be torn); [`MvccStore::compact`] heals it.
    pub fn commit(&self, ops: &[DeltaOp]) -> Result<u64, DiskError> {
        let _w = self.write_lock.lock();
        let state = self.state.read();
        let epoch = state.delta.epoch() + 1;
        let mut sp = graphbi_obs::span("mvcc.commit");
        sp.attr("epoch", epoch);
        sp.attr("ops", ops.len() as u64);
        if let Some(env) = &self.disk {
            if env.wal_poisoned.load(Ordering::SeqCst) {
                return Err(wal_io(io::Error::other(
                    "wal poisoned by an earlier append failure; compact or reopen to recover",
                )));
            }
            let mut wal_sp = graphbi_obs::span("mvcc.wal_append");
            wal_sp.attr("epoch", epoch);
            wal_sp.attr("ops", ops.len() as u64);
            let bytes = wal::append_commit(env.vfs.as_ref(), &env.dir.join(WAL_FILE), epoch, ops)
                .map_err(|e| {
                env.wal_poisoned.store(true, Ordering::SeqCst);
                wal_io(e)
            })?;
            wal_sp.attr("bytes", bytes);
            let reg = graphbi_obs::global();
            reg.counter("graphbi_wal_commits_total").inc();
            reg.counter("graphbi_wal_bytes_total").add(bytes);
        }
        let applied = state.delta.apply(ops);
        debug_assert_eq!(applied, epoch);
        graphbi_obs::global()
            .counter("graphbi_mvcc_commits_total")
            .inc();
        Ok(epoch)
    }

    /// Folds every committed epoch into a fresh base and swaps it in;
    /// returns the folded epoch (the new delta resumes counting there).
    ///
    /// Disk flavor: publishes a new generation (crash-safe manifest
    /// rename) whose `wal_fold.txt` sidecar records the watermark, spares
    /// snapshot-pinned generations from collection, reopens the base from
    /// disk, and truncates the WAL. Pinned readers keep answering from
    /// their old generation + delta `Arc` throughout.
    pub fn compact(&self) -> Result<u64, DiskError> {
        self.compact_inner().inspect_err(|e| {
            // Typed failure counter, keyed by error class so dashboards
            // can separate transient I/O from real corruption.
            graphbi_obs::global()
                .counter(&format!(
                    "graphbi_compaction_failures_{}_total",
                    crate::Coded::code(e).class_name()
                ))
                .inc();
        })
    }

    fn compact_inner(&self) -> Result<u64, DiskError> {
        let _w = self.write_lock.lock();
        let mut state = self.state.write();
        let epoch = state.delta.epoch();
        let mut sp = graphbi_obs::span("mvcc.compact");
        sp.attr("epoch", epoch);
        let merged = match &state.base {
            BaseHandle::Mem(s) => rebuild(s, &state.delta, epoch),
            BaseHandle::Disk(_) => {
                let env = self.disk.as_ref().expect("disk base has a disk env");
                let loaded = disk::load_store_with(env.vfs.as_ref(), &env.dir, env.verify)?;
                rebuild(&loaded, &state.delta, epoch)
            }
        };
        let count = merged.record_count();
        sp.attr("records", count);
        if let Some(env) = &self.disk {
            let fold = epoch.to_string();
            let keep: Vec<u64> = self.pins.lock().keys().copied().collect();
            disk::save_store_with_opts(
                env.vfs.as_ref(),
                &merged,
                &env.dir,
                &[(WAL_FOLD_SIDECAR, fold.as_bytes())],
                &keep,
            )?;
            let reopened =
                DiskGraphStore::open_with(&env.dir, env.cache_bytes, env.vfs.clone(), env.verify)?;
            let generation = persist::live_generation(env.vfs.as_ref(), &env.dir)?;
            // The fold sidecar already neutralizes every frame in the log
            // (replay skips epochs ≤ watermark), so a failed truncation
            // costs nothing but space — yet the file tail is then suspect,
            // so appends stay blocked until a truncation succeeds.
            let healed = wal::truncate(env.vfs.as_ref(), &env.dir.join(WAL_FILE)).is_ok();
            env.wal_poisoned.store(!healed, Ordering::SeqCst);
            *state = MvccState {
                base: BaseHandle::Disk(Arc::new(reopened)),
                delta: Arc::new(DeltaStore::with_epoch(count, epoch)),
                generation,
            };
        } else {
            let generation = state.generation;
            *state = MvccState {
                base: BaseHandle::Mem(Arc::new(merged)),
                delta: Arc::new(DeltaStore::with_epoch(count, epoch)),
                generation,
            };
        }
        graphbi_obs::global()
            .counter("graphbi_compactions_total")
            .inc();
        Ok(epoch)
    }

    /// Collects generation files that are neither live nor pinned by a
    /// snapshot. No-op on memory-backed stores.
    pub fn gc(&self) -> Result<(), DiskError> {
        let Some(env) = &self.disk else {
            return Ok(());
        };
        // Shared lock: snapshots (which pin under the same lock) can
        // proceed, but a compaction's publish cannot interleave.
        let _state = self.state.read();
        let keep: Vec<u64> = self.pins.lock().keys().copied().collect();
        let mut sp = graphbi_obs::span("mvcc.gc");
        sp.attr("pinned", keep.len() as u64);
        persist::collect_garbage_keeping(env.vfs.as_ref(), &env.dir, &keep)?;
        graphbi_obs::global().counter("graphbi_mvcc_gc_total").inc();
        Ok(())
    }

    /// The last committed epoch.
    pub fn epoch(&self) -> u64 {
        self.state.read().delta.epoch()
    }

    /// The live base generation (0 for memory-backed stores).
    pub fn generation(&self) -> u64 {
        self.state.read().generation
    }

    /// Records visible to a snapshot taken now.
    pub fn record_count(&self) -> u64 {
        let state = self.state.read();
        state.delta.record_count_at(state.delta.epoch())
    }

    /// True when a WAL append failure blocked further commits.
    pub fn wal_poisoned(&self) -> bool {
        self.disk
            .as_ref()
            .is_some_and(|env| env.wal_poisoned.load(Ordering::SeqCst))
    }
}

impl Session for MvccStore {
    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        self.snapshot().execute(request)
    }

    /// One snapshot for the whole batch: every request answers as of the
    /// same `(generation, epoch)` even while a writer races the loop.
    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        self.snapshot().evaluate_many(requests)
    }

    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        self.snapshot().profile(request)
    }
}

/// Extracts the full record list back out of a master relation — the
/// inverse of [`GraphStore::load`], used to merge base and delta into a
/// compacted store.
fn extract_records(relation: &MasterRelation, edge_count: usize, count: u64) -> Vec<GraphRecord> {
    let mut builders: Vec<RecordBuilder> = (0..count).map(|_| RecordBuilder::new()).collect();
    for e in 0..u32::try_from(edge_count).expect("edge count fits u32") {
        for (rid, m) in relation.edge_column_uncounted(EdgeId(e)).iter() {
            builders[rid as usize].add(EdgeId(e), m);
        }
    }
    builders.into_iter().map(RecordBuilder::build).collect()
}

/// Base + delta at `epoch`, rebuilt as a fresh in-memory store carrying
/// the same materialized-view definitions (recomputed over the merged
/// data).
fn rebuild(base: &GraphStore, delta: &DeltaStore, epoch: u64) -> GraphStore {
    let universe = base.universe().clone();
    let mut records = extract_records(base.relation(), universe.edge_count(), base.record_count());
    delta.for_each_visible_at(epoch, |rid, rec| {
        let i = rid as usize;
        if i < records.len() {
            records[i] = rec.clone();
        } else {
            debug_assert_eq!(i, records.len(), "insert ids are contiguous");
            records.push(rec.clone());
        }
    });
    let mut store = GraphStore::load(universe, &records);
    for v in base.graph_views() {
        store.materialize_graph_view(v.edges.clone());
    }
    for v in base.agg_views() {
        store.materialize_agg_view(v.edges.clone(), v.func);
    }
    store
}

/// A pinned `(generation, delta epoch)` view of an [`MvccStore`].
///
/// Implements [`Session`] by answering from the base store and overlaying
/// the delta: records owned by the delta at the pinned epoch (updated base
/// rows and inserts) are evaluated from their buffered content, everything
/// else from the base — exactly the answer a store rebuilt from the merged
/// record list would give.
pub struct Snapshot {
    base: BaseHandle,
    delta: Arc<DeltaStore>,
    epoch: u64,
    generation: u64,
    _pin: Option<Arc<GenPin>>,
}

impl Snapshot {
    /// The pinned delta epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned base generation (0 for memory-backed stores).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records visible at this snapshot.
    pub fn record_count(&self) -> u64 {
        self.delta.record_count_at(self.epoch)
    }

    /// The universe shared by base and delta records.
    pub fn universe(&self) -> &Universe {
        self.base.universe()
    }

    /// Delta-visible records matching `query`, plus the retired-base mask
    /// — the two delta inputs of [`Bitmap::apply_delta`].
    fn delta_matches(&self, query: &GraphQuery) -> (Bitmap, Bitmap, Vec<(RecordId, GraphRecord)>) {
        let retired = self.delta.touched_base_at(self.epoch);
        let mut added = Bitmap::new();
        let mut rows = Vec::new();
        self.delta.for_each_visible_at(self.epoch, |rid, rec| {
            if rec.contains_all(query.edges()) {
                added.insert(rid);
                rows.push((rid, rec.clone()));
            }
        });
        (retired, added, rows)
    }

    fn merged_graph(
        &self,
        query: &GraphQuery,
        request: &QueryRequest,
    ) -> Result<(Response, IoStats), SessionError> {
        let (resp, stats) = self.base.execute(request)?;
        let base_res = resp.into_records().expect("graph request answers records");
        let (retired, added, delta_rows) = self.delta_matches(query);
        let mut base_bm = Bitmap::new();
        for &rid in &base_res.records {
            base_bm.insert(rid);
        }
        let merged = base_bm.apply_delta(&retired, &added);
        let edges = query.edges().to_vec();
        let records = merged.to_vec();
        let mut measures = Vec::with_capacity(records.len() * edges.len());
        let mut di = 0usize;
        for &rid in &records {
            if di < delta_rows.len() && delta_rows[di].0 == rid {
                let rec = &delta_rows[di].1;
                for &e in &edges {
                    measures.push(rec.measure(e).expect("delta match holds the edge"));
                }
                di += 1;
            } else {
                let bi = base_res
                    .records
                    .binary_search(&rid)
                    .expect("non-delta merged record comes from the base");
                measures.extend_from_slice(base_res.row(bi));
            }
        }
        Ok((
            Response::Records(QueryResult {
                records,
                edges,
                measures,
            }),
            stats,
        ))
    }

    /// Merged match set of one expression. Delta overlay and set algebra
    /// commute only when applied per atom (an `AndNot` of merged sets is
    /// not the merge of `AndNot`s), so the walk happens here rather than
    /// in the base engine.
    fn merged_expr(
        &self,
        expr: &QueryExpr,
        request: &QueryRequest,
        stats: &mut IoStats,
    ) -> Result<Bitmap, SessionError> {
        match expr {
            QueryExpr::Atom(q) => {
                let atom = QueryRequest::expr(QueryExpr::Atom(q.clone()))
                    .opts(request.options)
                    .shards(request.shards);
                let (resp, s) = self.base.execute(&atom)?;
                stats.merge(&s);
                let base_bm = resp.into_matches().expect("expr request answers matches");
                let (retired, added, _) = self.delta_matches(q);
                Ok(base_bm.apply_delta(&retired, &added))
            }
            QueryExpr::And(a, b) => {
                let a = self.merged_expr(a, request, stats)?;
                let b = self.merged_expr(b, request, stats)?;
                Ok(a.and(&b))
            }
            QueryExpr::Or(a, b) => {
                let a = self.merged_expr(a, request, stats)?;
                let b = self.merged_expr(b, request, stats)?;
                Ok(a.or(&b))
            }
            QueryExpr::AndNot(a, b) => {
                let a = self.merged_expr(a, request, stats)?;
                let b = self.merged_expr(b, request, stats)?;
                Ok(a.and_not(&b))
            }
        }
    }

    fn merged_aggregate(
        &self,
        paq: &PathAggQuery,
        request: &QueryRequest,
    ) -> Result<(Response, IoStats), SessionError> {
        let (resp, stats) = self.base.execute(request)?;
        let base_res = resp
            .into_aggregates()
            .expect("aggregate request answers aggregates");
        let universe = self.base.universe();
        let paths = paq.query.maximal_paths(universe)?;
        let elements: Vec<Vec<EdgeId>> = paths
            .iter()
            .map(|p| p.elements(universe))
            .collect::<Result<_, _>>()?;
        let path_count = paths.len();
        debug_assert_eq!(path_count, base_res.path_count);
        let (retired, added, delta_rows) = self.delta_matches(&paq.query);
        let mut base_bm = Bitmap::new();
        for &rid in &base_res.records {
            base_bm.insert(rid);
        }
        let merged = base_bm.apply_delta(&retired, &added);
        let records = merged.to_vec();
        let mut values = Vec::with_capacity(records.len() * path_count);
        let mut di = 0usize;
        for &rid in &records {
            if di < delta_rows.len() && delta_rows[di].0 == rid {
                let rec = &delta_rows[di].1;
                for elems in &elements {
                    let mut state = graphbi_graph::AggState::empty();
                    for &e in elems {
                        state.push(rec.measure(e).expect("delta match holds the edge"));
                    }
                    values.push(state.finalize(paq.func).unwrap_or(f64::NAN));
                }
                di += 1;
            } else {
                let bi = base_res
                    .records
                    .binary_search(&rid)
                    .expect("non-delta merged record comes from the base");
                values.extend_from_slice(base_res.row(bi));
            }
        }
        Ok((
            Response::Aggregates(PathAggResult {
                records,
                path_count,
                values,
            }),
            stats,
        ))
    }
}

impl Session for Snapshot {
    fn execute(&self, request: &QueryRequest) -> Result<(Response, IoStats), SessionError> {
        if self.delta.is_empty_at(self.epoch) {
            return self.base.execute(request);
        }
        match &request.kind {
            RequestKind::Graph(q) => self.merged_graph(q, request),
            RequestKind::Expr(e) => {
                let mut stats = IoStats::new();
                let bm = self.merged_expr(e, request, &mut stats)?;
                Ok((Response::Matches(bm), stats))
            }
            RequestKind::Aggregate(paq) => self.merged_aggregate(paq, request),
        }
    }

    /// Batched evaluation: with no delta visible at the pinned epoch the
    /// whole batch takes the base store's batched path (duplicate
    /// elimination, shared column fetches) — this is what lets the serve
    /// layer coalesce requests from many connections pinned to the same
    /// `(generation, epoch)` into one `evaluate_many` call. With a live
    /// delta, requests run serially over the merged view.
    fn evaluate_many(
        &self,
        requests: &[QueryRequest],
    ) -> Result<Vec<(Response, IoStats)>, SessionError> {
        if self.delta.is_empty_at(self.epoch) {
            return self.base.evaluate_many(requests);
        }
        requests.iter().map(|r| self.execute(r)).collect()
    }

    /// Profiles against the pinned state; with no delta visible the base
    /// backend's own profiler (and label) answers.
    fn profile(&self, request: &QueryRequest) -> Result<(Response, crate::Profile), SessionError> {
        if self.delta.is_empty_at(self.epoch) {
            return self.base.profile(request);
        }
        crate::explain::profile_request(self, "mvcc", None, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::AggFn;

    fn chain_universe(n: u32) -> Universe {
        let mut u = Universe::new();
        for i in 0..n {
            u.edge_by_names(&format!("n{i}"), &format!("n{}", i + 1));
        }
        u
    }

    fn rec(pairs: &[(u32, f64)]) -> GraphRecord {
        let mut b = RecordBuilder::new();
        for &(e, m) in pairs {
            b.add(EdgeId(e), m);
        }
        b.build()
    }

    fn base_store() -> GraphStore {
        let u = chain_universe(6);
        let records = vec![
            rec(&[(0, 1.0), (1, 2.0)]),
            rec(&[(0, 3.0)]),
            rec(&[(1, 4.0), (2, 5.0)]),
        ];
        GraphStore::load(u, &records)
    }

    fn query(ids: &[u32]) -> GraphQuery {
        GraphQuery::from_edges(ids.iter().map(|&i| EdgeId(i)).collect())
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let store = MvccStore::new_mem(base_store());
        let before = store.snapshot();
        store
            .commit(&[DeltaOp::Insert(rec(&[(0, 9.0), (1, 9.5)]))])
            .unwrap();
        let after = store.snapshot();
        let req = QueryRequest::new(query(&[0, 1]));
        let old = before.execute(&req).unwrap().0.into_records().unwrap();
        let new = after.execute(&req).unwrap().0.into_records().unwrap();
        assert_eq!(old.records, vec![0]);
        assert_eq!(new.records, vec![0, 3]);
        assert_eq!(new.row(1), &[9.0, 9.5]);
        // The old snapshot still answers identically post-commit.
        let again = before.execute(&req).unwrap().0.into_records().unwrap();
        assert_eq!(again, old);
    }

    #[test]
    fn updates_retire_base_rows_in_every_request_kind() {
        let store = MvccStore::new_mem(base_store());
        store
            .commit(&[DeltaOp::Update(0, rec(&[(2, 7.0)]))])
            .unwrap();
        let snap = store.snapshot();
        let got = snap
            .execute(&QueryRequest::new(query(&[0, 1])))
            .unwrap()
            .0
            .into_records()
            .unwrap();
        assert_eq!(got.records, Vec::<RecordId>::new());
        let expr = QueryExpr::and_not(QueryExpr::Atom(query(&[2])), QueryExpr::Atom(query(&[1])));
        let matches = snap
            .execute(&QueryRequest::expr(expr))
            .unwrap()
            .0
            .into_matches()
            .unwrap();
        assert_eq!(matches.to_vec(), vec![0]); // record 0 now has e2 but not e1
        let agg = snap
            .execute(&QueryRequest::aggregate(PathAggQuery::new(
                query(&[2]),
                AggFn::Sum,
            )))
            .unwrap()
            .0
            .into_aggregates()
            .unwrap();
        assert_eq!(agg.records, vec![0, 2]);
        assert_eq!(agg.row(0), &[7.0]);
        assert_eq!(agg.row(1), &[5.0]);
    }

    #[test]
    fn compaction_preserves_answers_and_resumes_epochs() {
        let store = MvccStore::new_mem(base_store());
        store.commit(&[DeltaOp::Insert(rec(&[(1, 6.0)]))]).unwrap();
        store
            .commit(&[DeltaOp::Update(1, rec(&[(0, 3.5), (1, 3.6)]))])
            .unwrap();
        let req = QueryRequest::new(query(&[1]));
        let before = store.execute(&req).unwrap().0;
        let folded = store.compact().unwrap();
        assert_eq!(folded, 2);
        assert_eq!(store.epoch(), 2);
        let after = store.execute(&req).unwrap().0;
        assert_eq!(before, after);
        let e3 = store.commit(&[DeltaOp::Insert(rec(&[(1, 8.0)]))]).unwrap();
        assert_eq!(e3, 3);
        assert_eq!(store.record_count(), 5);
    }

    #[test]
    fn batch_answers_as_of_one_snapshot() {
        let store = MvccStore::new_mem(base_store());
        let reqs = vec![
            QueryRequest::new(query(&[0])),
            QueryRequest::new(query(&[0])),
        ];
        let answers = store.evaluate_many(&reqs).unwrap();
        assert_eq!(answers[0].0, answers[1].0);
    }
}
