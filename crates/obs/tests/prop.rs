//! Property tests for the observability primitives: histogram algebra,
//! bucket monotonicity, counter saturation, and JSON round-trips.

use graphbi_obs::{
    bucket_bound, bucket_index, json, Counter, HistSnapshot, Histogram, Registry, Snapshot,
    HIST_BUCKETS,
};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..64)
}

/// Samples small enough that even a 64-element sum stays below 2^53, the
/// exact-integer limit of the JSON f64 number representation.
fn json_safe_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1 << 40), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(a in samples(), b in samples()) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&both));
    }

    #[test]
    fn every_sample_lands_in_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!(v <= bucket_bound(i), "{v} above its bucket bound");
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1), "{v} belongs in a lower bucket");
        }
    }

    #[test]
    fn counter_saturates_like_iostats_merge(a in any::<u64>(), b in any::<u64>()) {
        // IoStats::merge uses saturating addition; the registry counter
        // must agree so snapshot sums never wrap where stats don't.
        let c = Counter::new();
        c.add(a);
        c.add(b);
        prop_assert_eq!(c.get(), a.saturating_add(b));
    }

    #[test]
    fn snapshot_render_json_round_trips(
        counters in prop::collection::btree_map("[a-z_]{1,12}", 0u64..(1 << 50), 0..6),
        gauges in prop::collection::btree_map("[a-z_]{1,12}", -(1i64 << 40)..(1i64 << 40), 0..6),
        series in prop::collection::btree_map("[a-z_]{1,12}", json_safe_samples(), 0..4),
    ) {
        let reg = Registry::new();
        for (name, v) in &counters {
            reg.counter(name).add(*v);
        }
        for (name, v) in &gauges {
            reg.gauge(name).set(*v);
        }
        for (name, vs) in &series {
            let h = reg.histogram(name);
            for &v in vs {
                h.record(v);
            }
        }
        let snap = reg.snapshot();
        let parsed = Snapshot::from_json(&snap.render_json()).unwrap();
        prop_assert_eq!(parsed, snap);
    }

    #[test]
    fn snapshot_merge_is_commutative(
        a in prop::collection::btree_map("[a-z_]{1,8}", 0u64..(1 << 50), 0..5),
        b in prop::collection::btree_map("[a-z_]{1,8}", 0u64..(1 << 50), 0..5),
    ) {
        let of = |m: &std::collections::BTreeMap<String, u64>| {
            let reg = Registry::new();
            for (name, v) in m {
                reg.counter(name).add(*v);
            }
            reg.snapshot()
        };
        let (sa, sb) = (of(&a), of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }
}

#[test]
fn bucket_bounds_are_strictly_monotone() {
    for i in 1..HIST_BUCKETS {
        assert!(
            bucket_bound(i) > bucket_bound(i - 1),
            "bucket {i} bound not increasing"
        );
    }
    assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
}

#[test]
fn prometheus_text_lists_every_instrument() {
    let reg = Registry::new();
    reg.counter("requests_total").add(3);
    reg.gauge("inflight").set(-2);
    reg.histogram("latency_ns").record(1500);
    let text = reg.snapshot().render_text();
    assert!(text.contains("# TYPE requests_total counter"), "{text}");
    assert!(text.contains("requests_total 3"), "{text}");
    assert!(text.contains("inflight -2"), "{text}");
    assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
    assert!(text.contains("latency_ns_count 1"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");
}

#[test]
fn json_parser_accepts_bench_style_lines() {
    // The shape the bench harness emits as BENCH JSON.
    let line = r#"{"bench":"kernels","series":[{"name":"and","ms":[1.5,2.0]}],"ok":true}"#;
    let doc = json::parse(line).unwrap();
    assert_eq!(
        doc.get("bench").and_then(json::Json::as_str),
        Some("kernels")
    );
    assert_eq!(
        doc.get("series")
            .and_then(|s| s.item(0))
            .and_then(|s| s.get("ms"))
            .and_then(|m| m.item(1))
            .and_then(json::Json::as_f64),
        Some(2.0)
    );
}
