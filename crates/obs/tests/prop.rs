//! Property tests for the observability primitives: histogram algebra,
//! bucket monotonicity, counter saturation, and JSON round-trips.

use graphbi_obs::{
    bucket_bound, bucket_index, json, Counter, HistSnapshot, Histogram, Registry, Snapshot,
    HIST_BUCKETS,
};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..64)
}

/// Samples small enough that even a 64-element sum stays below 2^53, the
/// exact-integer limit of the JSON f64 number representation.
fn json_safe_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1 << 40), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(a in samples(), b in samples()) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&both));
    }

    #[test]
    fn every_sample_lands_in_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!(v <= bucket_bound(i), "{v} above its bucket bound");
        if i > 0 {
            prop_assert!(v > bucket_bound(i - 1), "{v} belongs in a lower bucket");
        }
    }

    /// The estimated quantile must land in the same power-of-two bucket
    /// as the exact quantile of the recorded samples — the histogram
    /// cannot resolve finer than its buckets, but it must never point at
    /// the wrong one.
    #[test]
    fn quantile_lands_in_the_exact_quantile_bucket(
        mut samples in prop::collection::vec(any::<u64>(), 1..64),
        q in 0.0f64..1.0,
    ) {
        let snap = hist_of(&samples);
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let est = snap.quantile(q);
        prop_assert_eq!(
            bucket_index(est),
            bucket_index(exact),
            "quantile({}) = {} not in the bucket of exact {}", q, est, exact
        );
    }

    /// Quantiles are monotone in q and bracketed by the extreme samples'
    /// bucket ranges.
    #[test]
    fn quantile_is_monotone_and_bracketed(
        samples in prop::collection::vec(any::<u64>(), 1..64),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let snap = hist_of(&samples);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(snap.quantile(lo) <= snap.quantile(hi));
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert!(snap.quantile(0.0) <= bucket_bound(bucket_index(min)));
        prop_assert!(snap.quantile(1.0) <= bucket_bound(bucket_index(max)));
        let max_floor = if bucket_index(max) == 0 { 0 } else { bucket_bound(bucket_index(max) - 1) };
        prop_assert!(snap.quantile(1.0) >= max_floor);
    }

    /// Out-of-range q clamps instead of panicking, and the empty
    /// histogram answers 0 for every q.
    #[test]
    fn quantile_clamps_and_handles_empty(q in -2.0f64..3.0) {
        prop_assert_eq!(HistSnapshot::default().quantile(q), 0);
        let snap = hist_of(&[7, 7, 7]);
        let clamped = snap.quantile(q.clamp(0.0, 1.0));
        prop_assert_eq!(snap.quantile(q), clamped);
    }

    #[test]
    fn counter_saturates_like_iostats_merge(a in any::<u64>(), b in any::<u64>()) {
        // IoStats::merge uses saturating addition; the registry counter
        // must agree so snapshot sums never wrap where stats don't.
        let c = Counter::new();
        c.add(a);
        c.add(b);
        prop_assert_eq!(c.get(), a.saturating_add(b));
    }

    #[test]
    fn snapshot_render_json_round_trips(
        counters in prop::collection::btree_map("[a-z_]{1,12}", 0u64..(1 << 50), 0..6),
        gauges in prop::collection::btree_map("[a-z_]{1,12}", -(1i64 << 40)..(1i64 << 40), 0..6),
        series in prop::collection::btree_map("[a-z_]{1,12}", json_safe_samples(), 0..4),
    ) {
        let reg = Registry::new();
        for (name, v) in &counters {
            reg.counter(name).add(*v);
        }
        for (name, v) in &gauges {
            reg.gauge(name).set(*v);
        }
        for (name, vs) in &series {
            let h = reg.histogram(name);
            for &v in vs {
                h.record(v);
            }
        }
        let snap = reg.snapshot();
        let parsed = Snapshot::from_json(&snap.render_json()).unwrap();
        prop_assert_eq!(parsed, snap);
    }

    #[test]
    fn snapshot_merge_is_commutative(
        a in prop::collection::btree_map("[a-z_]{1,8}", 0u64..(1 << 50), 0..5),
        b in prop::collection::btree_map("[a-z_]{1,8}", 0u64..(1 << 50), 0..5),
    ) {
        let of = |m: &std::collections::BTreeMap<String, u64>| {
            let reg = Registry::new();
            for (name, v) in m {
                reg.counter(name).add(*v);
            }
            reg.snapshot()
        };
        let (sa, sb) = (of(&a), of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }
}

#[test]
fn bucket_bounds_are_strictly_monotone() {
    for i in 1..HIST_BUCKETS {
        assert!(
            bucket_bound(i) > bucket_bound(i - 1),
            "bucket {i} bound not increasing"
        );
    }
    assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
}

#[test]
fn prometheus_text_lists_every_instrument() {
    let reg = Registry::new();
    reg.counter("requests_total").add(3);
    reg.gauge("inflight").set(-2);
    reg.histogram("latency_ns").record(1500);
    let text = reg.snapshot().render_text();
    assert!(text.contains("# TYPE requests_total counter"), "{text}");
    assert!(text.contains("requests_total 3"), "{text}");
    assert!(text.contains("inflight -2"), "{text}");
    assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
    assert!(text.contains("latency_ns_count 1"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");
}

#[test]
fn json_parser_accepts_bench_style_lines() {
    // The shape the bench harness emits as BENCH JSON.
    let line = r#"{"bench":"kernels","series":[{"name":"and","ms":[1.5,2.0]}],"ok":true}"#;
    let doc = json::parse(line).unwrap();
    assert_eq!(
        doc.get("bench").and_then(json::Json::as_str),
        Some("kernels")
    );
    assert_eq!(
        doc.get("series")
            .and_then(|s| s.item(0))
            .and_then(|s| s.get("ms"))
            .and_then(|m| m.item(1))
            .and_then(json::Json::as_f64),
        Some(2.0)
    );
}
