//! Property tests for the flight-recorder primitives: the bounded trace
//! ring (overwrite-oldest, concurrent writers) and the seeded head
//! sampler (deterministic, exact rate).

use std::sync::Arc;

use graphbi_obs::flight::{FlightRing, Sampler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any push sequence the ring holds exactly the newest
    /// `min(pushed, capacity)` entries, and `recent` walks them newest
    /// first.
    #[test]
    fn ring_keeps_the_newest_entries(capacity in 1usize..32, pushes in 0u64..100) {
        let ring = FlightRing::new(capacity);
        for id in 0..pushes {
            ring.push(id, id * 10);
        }
        let held = pushes.min(capacity as u64);
        let recent = ring.recent(capacity * 2);
        prop_assert_eq!(recent.len() as u64, held);
        for (i, (id, entry)) in recent.iter().enumerate() {
            let expect = pushes - 1 - i as u64;
            prop_assert_eq!(*id, expect, "recent()[{}] out of order", i);
            prop_assert_eq!(*entry, expect * 10);
        }
        // Lookup agrees: the newest `held` ids resolve, older ones are gone.
        for id in 0..pushes {
            let found = ring.get(id).is_some();
            prop_assert_eq!(found, id >= pushes - held, "id {} presence wrong", id);
        }
        let (pushed, overwritten) = (ring.pushed(), ring.overwritten());
        prop_assert_eq!(pushed, pushes);
        prop_assert_eq!(overwritten, pushes.saturating_sub(capacity as u64));
    }

    /// `recent(n)` truncates to n without changing order.
    #[test]
    fn recent_truncates_newest_first(capacity in 1usize..16, pushes in 0u64..40, n in 0usize..20) {
        let ring = FlightRing::new(capacity);
        for id in 0..pushes {
            ring.push(id, ());
        }
        let all = ring.recent(capacity);
        let some = ring.recent(n);
        prop_assert_eq!(&some[..], &all[..n.min(all.len())]);
    }

    /// The sampler admits exactly one call in every aligned window of
    /// `every` calls, whatever the seed — and the same seed always admits
    /// the same positions.
    #[test]
    fn sampler_rate_is_exact_and_seeded(every in 1u64..64, seed in any::<u64>(), calls in 1usize..512) {
        let a = Sampler::new(every, seed);
        let picks_a: Vec<bool> = (0..calls).map(|_| a.sample()).collect();
        let b = Sampler::new(every, seed);
        let picks_b: Vec<bool> = (0..calls).map(|_| b.sample()).collect();
        prop_assert_eq!(&picks_a, &picks_b, "same seed must sample identically");
        let admitted = picks_a.iter().filter(|&&p| p).count();
        let expect = calls / every as usize;
        prop_assert!(
            admitted == expect || admitted == expect + 1,
            "{} admitted of {} at 1/{}", admitted, calls, every
        );
        // A different seed shifts which calls are admitted, not how many.
        let c = Sampler::new(every, seed.wrapping_add(1));
        let admitted_c = (0..calls).filter(|_| c.sample()).count();
        prop_assert!(admitted_c.abs_diff(admitted) <= 1);
    }

    /// `every = 0` disables sampling entirely.
    #[test]
    fn zero_rate_never_samples(calls in 0usize..256, seed in any::<u64>()) {
        let s = Sampler::new(0, seed);
        prop_assert!((0..calls).all(|_| !s.sample()));
    }
}

/// Concurrent writers never lose a push: the ring ends up holding
/// exactly `capacity` entries, every held entry is one that was pushed,
/// and pushed/overwritten counters balance.
#[test]
fn concurrent_writers_preserve_ring_invariants() {
    let capacity = 64;
    let writers = 8;
    let per_writer = 500u64;
    let ring = Arc::new(FlightRing::new(capacity));
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..per_writer {
                    let id = w * per_writer + i;
                    ring.push(id, id);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = writers * per_writer;
    assert_eq!(ring.pushed(), total);
    assert_eq!(ring.overwritten(), total - capacity as u64);
    let recent = ring.recent(capacity);
    assert_eq!(recent.len(), capacity);
    let mut seen = std::collections::BTreeSet::new();
    for (id, entry) in recent {
        assert_eq!(id, entry, "entry stored under the wrong id");
        assert!(id < total);
        assert!(seen.insert(id), "id {id} held twice");
    }
    // And the ring is still live: a fresh push lands and is newest.
    ring.push(total, total);
    assert_eq!(ring.recent(1), vec![(total, total)]);
}

/// A zero-capacity ring is disabled: pushes are counted but nothing is
/// held.
#[test]
fn zero_capacity_ring_is_disabled() {
    let ring = FlightRing::new(0);
    for id in 0..10u64 {
        ring.push(id, id);
    }
    assert!(ring.recent(10).is_empty());
    assert!(ring.get(3).is_none());
}
