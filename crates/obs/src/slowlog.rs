//! Slow-query log export: CRC-framed line records, the same crash story
//! as the WAL.
//!
//! The serve layer appends one JSON line per over-threshold request to a
//! slowlog file. A plain text file would leave a torn last line
//! indistinguishable from a valid one after a crash; framing each line as
//! `[magic u32][payload_len u32][crc32 u32][payload]` (little-endian, the
//! WAL's exact layout with its own magic) lets a reader stop cleanly at
//! the first torn frame — every acknowledged entry sits in front of it.
//!
//! The codec here is pure bytes-in/bytes-out: `obs` has no filesystem
//! access and no dependency on the columnstore's `Vfs`, so the caller
//! appends [`frame_line`] output through whatever I/O layer it owns and
//! hands the raw file contents back to [`read_lines`].

/// `"GBSL"` — graph-BI slow log. Distinct from the WAL's `"GBWL"` so a
/// misrouted file is detected as torn at frame zero.
pub const SLOWLOG_MAGIC: u32 = 0x4742_534c;

/// CRC32 (IEEE 802.3, the zlib polynomial), table-driven — bit-identical
/// to `graphbi_columnstore::vfs::crc32`, re-derived here because `obs`
/// depends on nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Encodes one line as a self-checking frame ready to append. Any
/// trailing newline is part of the payload the caller chose; none is
/// added.
pub fn frame_line(line: &str) -> Vec<u8> {
    let payload = line.as_bytes();
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&SLOWLOG_MAGIC.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes every intact frame, in order. Scanning stops — without error —
/// at the first torn frame (bad magic, truncated length, CRC mismatch,
/// or non-UTF-8 payload): by the append-only contract of the writer that
/// can only be an unacknowledged suffix.
pub fn read_lines(bytes: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 12 {
        let magic = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().expect("4 bytes"));
        if magic != SLOWLOG_MAGIC || bytes.len() - at - 12 < len {
            break;
        }
        let payload = &bytes[at + 12..at + 12 + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(line) = std::str::from_utf8(payload) else {
            break;
        };
        out.push(line.to_owned());
        at += 12 + len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn lines_round_trip() {
        let lines = ["{\"rid\":1}", "", "{\"rid\":2,\"msg\":\"sl\\\"ow\"}"];
        let mut file = Vec::new();
        for l in &lines {
            file.extend_from_slice(&frame_line(l));
        }
        assert_eq!(read_lines(&file), lines);
    }

    #[test]
    fn torn_tail_stops_at_last_intact_frame() {
        let mut file = Vec::new();
        file.extend_from_slice(&frame_line("{\"rid\":1}"));
        file.extend_from_slice(&frame_line("{\"rid\":2}"));
        let last = frame_line("{\"rid\":3}");
        for cut in 0..last.len() {
            let mut torn = file.clone();
            torn.extend_from_slice(&last[..cut]);
            assert_eq!(read_lines(&torn).len(), 2, "cut at {cut}");
        }
        // A flipped payload byte in the middle cuts from that frame on.
        let mut corrupt = file.clone();
        corrupt[12] ^= 0xff;
        assert!(read_lines(&corrupt).is_empty());
        // Wrong magic (e.g. a WAL file fed in by mistake) reads as empty.
        let mut wrong = file;
        wrong[0] ^= 0x01;
        assert!(read_lines(&wrong).is_empty());
    }
}
