//! Zero-dependency observability: a span/event tracer and a metrics
//! registry, hand-rolled because the build environment cannot reach
//! crates.io (no `tracing`, no `prometheus` — same policy as `shims/`).
//!
//! # Tracer
//!
//! A [`Collector`] gathers [`SpanRecord`]s and [`EventRecord`]s. It is
//! *installed* into the current thread with [`install`]; instrumentation
//! sites call [`span`] / [`event`], which are near-no-ops when no collector
//! is installed (one thread-local read and an `Option` check — no clock
//! read, no allocation, no lock). Timing uses a process-wide monotonic
//! epoch ([`now_ns`]), never the wall clock.
//!
//! The collector is deliberately thread-*local* rather than process-global:
//! `cargo test` runs many tests concurrently in one process, and a global
//! tracer would leak spans between unrelated queries. Worker pools that
//! fan a traced query out over threads (e.g. `graphbi`'s shard pool)
//! capture [`current`] before spawning and [`install`] it in each worker,
//! so per-shard spans land in the installing query's collector.
//!
//! Spans carry integer attributes (e.g. the `IoStats` counter deltas of the
//! phase they cover) so traces can be reconciled against the cost model —
//! the testkit oracle checks span counters against `IoStats` exactly.
//!
//! # Metrics
//!
//! A [`Registry`] names [`Counter`]s, [`Gauge`]s and log₂-bucketed
//! [`Histogram`]s. Recording is lock-free (one atomic RMW per update);
//! registration (name lookup) takes a lock, so callers cache the returned
//! `Arc` handles. [`Registry::snapshot`] produces a mergeable [`Snapshot`]
//! renderable as Prometheus exposition text or JSON (parsable back with
//! [`json::parse`]). Counters and histogram cells saturate on overflow —
//! the same semantics as `IoStats::merge`.

pub mod flight;
pub mod json;
pub mod slowlog;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Monotonic clock
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide monotonic epoch (first use).
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Spans and events
// ---------------------------------------------------------------------------

/// One completed span: a named, timed region with integer attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"phase.plan"`).
    pub name: &'static str,
    /// Start, nanoseconds since [`now_ns`]'s epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Integer attributes attached while the span was open.
    pub attrs: Vec<(&'static str, u64)>,
}

/// One point-in-time event with integer attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Static event name (e.g. `"rewrite.cover"`).
    pub name: &'static str,
    /// Timestamp, nanoseconds since [`now_ns`]'s epoch.
    pub at_ns: u64,
    /// Integer attributes.
    pub attrs: Vec<(&'static str, u64)>,
}

/// Thread-safe sink for spans and events.
#[derive(Default)]
pub struct Collector {
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    fn push_span(&self, s: SpanRecord) {
        self.spans.lock().expect("collector lock").push(s);
    }

    fn push_event(&self, e: EventRecord) {
        self.events.lock().expect("collector lock").push(e);
    }

    /// A copy of everything recorded so far.
    pub fn trace(&self) -> Trace {
        Trace {
            spans: self.spans.lock().expect("collector lock").clone(),
            events: self.events.lock().expect("collector lock").clone(),
        }
    }

    /// Drops everything recorded so far.
    pub fn clear(&self) {
        self.spans.lock().expect("collector lock").clear();
        self.events.lock().expect("collector lock").clear();
    }
}

/// Everything a [`Collector`] recorded, with aggregation helpers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Events, in emission order.
    pub events: Vec<EventRecord>,
}

impl Trace {
    /// Total nanoseconds across spans named `name`.
    pub fn sum_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .fold(0u64, |a, s| a.saturating_add(s.dur_ns))
    }

    /// Number of spans named `name`.
    pub fn count(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).count() as u64
    }

    /// Sum of attribute `attr` over spans named `span`.
    pub fn sum_attr(&self, span: &str, attr: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == span)
            .flat_map(|s| &s.attrs)
            .filter(|(k, _)| *k == attr)
            .fold(0u64, |a, (_, v)| a.saturating_add(*v))
    }

    /// Smallest value of attribute `attr` over spans named `span`.
    pub fn min_attr(&self, span: &str, attr: &str) -> Option<u64> {
        self.spans
            .iter()
            .filter(|s| s.name == span)
            .flat_map(|s| &s.attrs)
            .filter(|(k, _)| *k == attr)
            .map(|(_, v)| *v)
            .min()
    }

    /// Sum of attribute `attr` over every span, regardless of name — for
    /// reconciling a counter that several phases contribute to.
    pub fn sum_attr_all(&self, attr: &str) -> u64 {
        self.spans
            .iter()
            .flat_map(|s| &s.attrs)
            .filter(|(k, _)| *k == attr)
            .fold(0u64, |a, (_, v)| a.saturating_add(*v))
    }

    /// Sum of attribute `attr` over events named `event`.
    pub fn sum_event_attr(&self, event: &str, attr: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == event)
            .flat_map(|e| &e.attrs)
            .filter(|(k, _)| *k == attr)
            .fold(0u64, |a, (_, v)| a.saturating_add(*v))
    }

    /// Distinct span names, sorted.
    pub fn span_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.spans.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Collector>>> = const { RefCell::new(None) };
}

/// The collector installed on this thread, if any.
pub fn current() -> Option<Arc<Collector>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `collector` as this thread's span sink until the returned guard
/// drops (the previous collector, if any, is restored). The guard is
/// `!Send` — an installation never outlives its thread.
#[must_use = "tracing stops when the guard drops"]
pub fn install(collector: &Arc<Collector>) -> Installed {
    let prev = CURRENT.with(|c| c.replace(Some(Arc::clone(collector))));
    Installed {
        prev,
        _not_send: PhantomData,
    }
}

/// RAII guard of [`install`]; restores the previous collector on drop.
pub struct Installed {
    prev: Option<Arc<Collector>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Installed {
    fn drop(&mut self) {
        CURRENT.with(|c| c.replace(self.prev.take()));
    }
}

/// Opens a span named `name` on the current thread's collector. With no
/// collector installed this returns an inert guard without reading the
/// clock — the disabled cost is one thread-local read.
pub fn span(name: &'static str) -> Span {
    Span {
        active: current().map(|collector| ActiveSpan {
            collector,
            name,
            start_ns: now_ns(),
            attrs: Vec::new(),
        }),
    }
}

/// An open span; records itself into the collector on drop.
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    collector: Arc<Collector>,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, u64)>,
}

impl Span {
    /// Attaches an integer attribute (no-op on an inert span).
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, value));
        }
    }

    /// True when a collector is receiving this span.
    pub fn is_live(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let dur_ns = now_ns().saturating_sub(a.start_ns);
            a.collector.push_span(SpanRecord {
                name: a.name,
                start_ns: a.start_ns,
                dur_ns,
                attrs: a.attrs,
            });
        }
    }
}

/// Emits a point-in-time event (no-op without an installed collector; the
/// attribute slice is only copied when a collector is present).
pub fn event(name: &'static str, attrs: &[(&'static str, u64)]) {
    if let Some(collector) = current() {
        collector.push_event(EventRecord {
            name,
            at_ns: now_ns(),
            attrs: attrs.to_vec(),
        });
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Saturating add on an atomic cell — the overflow semantics of
/// `IoStats::merge`, so traced counters and cost-model counters agree all
/// the way to the top of the range.
fn sat_add_u64(cell: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotone counter (saturating at `u64::MAX`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` (saturating).
    pub fn add(&self, n: u64) {
        sat_add_u64(&self.0, n);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (saturating at the i64 range ends).
    pub fn add(&self, d: i64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(d);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per bit length, 0..=64.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of `v`: its bit length. Bucket 0 holds only 0; bucket `i`
/// holds `2^(i-1) ..= 2^i - 1`.
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
/// Strictly monotone in `i`.
pub fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in ns, sizes in
/// bytes). Recording is one atomic add per cell; count and sum saturate.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        sat_add_u64(&self.buckets[bucket_index(v)], 1);
        sat_add_u64(&self.count, 1);
        sat_add_u64(&self.sum, v);
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot; merging is elementwise saturating
/// addition, hence associative and commutative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts ([`HIST_BUCKETS`] cells).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Accumulates `other` into `self` (saturating, elementwise).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `0.0..=1.0`) estimated from the
    /// log₂ buckets: the bucket holding the rank-`⌈q·count⌉` sample is
    /// located exactly, and the value is linearly interpolated across the
    /// bucket's `[lower, upper]` range by the rank's position inside it.
    ///
    /// Guarantees, property-tested against a sorted-sample reference:
    /// monotone in `q`, saturating (never above `u64::MAX` or the top
    /// bucket's bound), 0 on an empty snapshot, and always within the
    /// bucket that actually contains the exact sample of that rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in 1..=count of the order statistic we estimate.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum = cum.saturating_add(c);
            if cum >= rank {
                let lower = if i == 0 { 0 } else { bucket_bound(i - 1).saturating_add(1) };
                let upper = bucket_bound(i);
                // Position of the rank inside this bucket, in [0, 1].
                let frac = if c <= 1 {
                    1.0
                } else {
                    (rank - prev - 1) as f64 / (c - 1) as f64
                };
                let width = (upper - lower) as f64;
                let v = lower as f64 + frac * width;
                return if v >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    (v as u64).clamp(lower, upper)
                };
            }
        }
        // Counts saturated inconsistently (count > Σ buckets): the best
        // answer left is the top non-empty bucket's bound.
        bucket_bound(self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0))
    }
}

/// A named family of counters, gauges and histograms.
///
/// Lookup by name takes a lock; the returned `Arc` handle records without
/// one — fetch handles once, record hot.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().expect("registry lock");
        Arc::clone(m.entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().expect("registry lock");
        Arc::clone(m.entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().expect("registry lock");
        Arc::clone(m.entry(name.to_owned()).or_default())
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry. Components that exist before any query (the
/// VFS, the column cache) record here; per-query visibility comes from
/// snapshot deltas.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A mergeable point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Accumulates `other` (counters/histograms saturating-add per name,
    /// gauges saturating-add). Associative and commutative, like
    /// `IoStats::merge`.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Renders in Prometheus exposition style: one `# TYPE` line per
    /// metric, cumulative `_bucket{le="…"}` series plus `_sum`/`_count`
    /// for histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let last = h
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0)
                .min(HIST_BUCKETS - 2);
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
                cum = cum.saturating_add(c);
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_bound(i));
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Renders as JSON, parsable with [`json::parse`]. Histogram buckets
    /// appear as `[upper_bound, count]` pairs for non-empty buckets only.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json::quote(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json::quote(k));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json::quote(k),
                h.count,
                h.sum
            );
            let mut first = true;
            for (bi, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{c}]", bucket_bound(bi));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Rebuilds a snapshot from [`Snapshot::render_json`] output. Exact for
    /// values below 2^53 (JSON numbers are doubles).
    pub fn from_json(text: &str) -> Result<Snapshot, json::ParseError> {
        let v = json::parse(text)?;
        let mut snap = Snapshot::default();
        if let Some(counters) = v.get("counters").and_then(|c| c.as_obj()) {
            for (k, val) in counters {
                snap.counters
                    .insert(k.clone(), val.as_u64().unwrap_or_default());
            }
        }
        if let Some(gauges) = v.get("gauges").and_then(|c| c.as_obj()) {
            for (k, val) in gauges {
                snap.gauges
                    .insert(k.clone(), val.as_f64().unwrap_or_default() as i64);
            }
        }
        if let Some(hists) = v.get("histograms").and_then(|c| c.as_obj()) {
            for (k, val) in hists {
                let mut buckets = vec![0u64; HIST_BUCKETS];
                if let Some(pairs) = val.get("buckets").and_then(|b| b.as_arr()) {
                    for pair in pairs {
                        if let (Some(bound), Some(count)) = (
                            pair.item(0).and_then(|x| x.as_u64()),
                            pair.item(1).and_then(|x| x.as_u64()),
                        ) {
                            // Invert bucket_bound: bound 0 → bucket 0,
                            // 2^i - 1 → bucket i, u64::MAX → last bucket.
                            buckets[bucket_index(bound)] = count;
                        }
                    }
                }
                snap.histograms.insert(
                    k.clone(),
                    HistSnapshot {
                        buckets,
                        count: val.get("count").and_then(|x| x.as_u64()).unwrap_or(0),
                        sum: val.get("sum").and_then(|x| x.as_u64()).unwrap_or(0),
                    },
                );
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        assert!(current().is_none());
        let mut s = span("noop");
        assert!(!s.is_live());
        s.attr("k", 1);
        drop(s);
        event("noop", &[("k", 1)]);
    }

    #[test]
    fn installed_collector_captures_spans_and_events() {
        let c = Arc::new(Collector::new());
        {
            let _g = install(&c);
            let mut s = span("work");
            s.attr("items", 3);
            drop(s);
            event("mark", &[("x", 7)]);
            {
                let inner = Arc::new(Collector::new());
                let _g2 = install(&inner);
                span("inner_only");
                assert_eq!(inner.trace().spans.len(), 1);
            }
            // Previous collector restored after the inner guard dropped.
            span("again");
        }
        assert!(current().is_none());
        let t = c.trace();
        assert_eq!(t.count("work"), 1);
        assert_eq!(t.count("again"), 1);
        assert_eq!(t.count("inner_only"), 0);
        assert_eq!(t.sum_attr("work", "items"), 3);
        assert_eq!(t.sum_event_attr("mark", "x"), 7);
    }

    #[test]
    fn span_durations_are_monotone() {
        let c = Arc::new(Collector::new());
        {
            let _g = install(&c);
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let t = c.trace();
        assert!(t.sum_ns("outer") >= 1_000_000, "{t:?}");
    }

    #[test]
    fn bucket_boundaries_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i);
        }
    }

    #[test]
    fn counter_and_histogram_saturate() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().sum, u64::MAX);
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn registry_snapshot_and_text_render() {
        let r = Registry::new();
        r.counter("graphbi_demo_total").add(2);
        r.gauge("graphbi_level").set(-3);
        r.histogram("graphbi_lat_ns").record(100);
        r.histogram("graphbi_lat_ns").record(300);
        let s = r.snapshot();
        assert_eq!(s.counters["graphbi_demo_total"], 2);
        assert_eq!(s.gauges["graphbi_level"], -3);
        assert_eq!(s.histograms["graphbi_lat_ns"].count, 2);
        let text = s.render_text();
        assert!(text.contains("# TYPE graphbi_demo_total counter"), "{text}");
        assert!(
            text.contains("graphbi_lat_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("graphbi_lat_ns_sum 400"), "{text}");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = Registry::new();
        r.counter("a_total").add(41);
        r.gauge("g").set(7);
        let h = r.histogram("h_ns");
        for v in [0, 1, 5, 1000, 1 << 40] {
            h.record(v);
        }
        let s = r.snapshot();
        let parsed = Snapshot::from_json(&s.render_json()).expect("parses");
        assert_eq!(parsed, s);
    }
}
