//! The flight recorder's core: a bounded overwrite-oldest ring of
//! completed request traces, plus the deterministic head-based sampler
//! that decides which requests pay for a full trace.
//!
//! Both pieces are generic and zero-dependency: the ring stores any `T`
//! (the serve layer puts its `RequestTrace` here), and the sampler is a
//! pure counter — no clock, no RNG state beyond the seed. The hot-path
//! cost for an *unsampled* request is one atomic fetch-add in
//! [`Sampler::sample`]; the ring is only touched for requests that are
//! actually captured.
//!
//! # Memory bound
//!
//! The ring allocates its `capacity` slots once at construction and never
//! grows: pushing into a full ring overwrites the oldest entry (and
//! counts it in [`FlightRing::overwritten`]). A server with a 1024-entry
//! ring therefore holds at most 1024 traces regardless of uptime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Deterministic head-based sampler: samples the `k`-th call iff
/// `(k + seed) % every == 0`. With `every = 0` nothing is ever sampled
/// (capture then happens only when forced — errors and slow requests).
///
/// Determinism matters for tests and for reasoning about overhead: given
/// the same seed and call sequence, the same calls sample. The seed
/// offsets the phase so several servers sharing a load balancer do not
/// all sample the same client's requests.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    seed: u64,
    calls: AtomicU64,
}

impl Sampler {
    /// A sampler capturing one call in `every` (0 = never), with phase
    /// offset `seed`.
    pub fn new(every: u64, seed: u64) -> Sampler {
        Sampler {
            every,
            seed,
            calls: AtomicU64::new(0),
        }
    }

    /// The sampling period (0 = head sampling disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Decides the next call: true when this request should be traced.
    /// One atomic fetch-add; never reads a clock.
    pub fn sample(&self) -> bool {
        let k = self.calls.fetch_add(1, Ordering::Relaxed);
        self.every > 0 && (k.wrapping_add(self.seed)) % self.every == 0
    }

    /// Calls decided so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

struct RingInner<T> {
    /// Preallocated slots; `None` until first wrapped.
    slots: Vec<Option<(u64, T)>>,
    /// Next slot to write (monotone; slot index is `next % capacity`).
    next: u64,
}

/// A fixed-capacity overwrite-oldest ring of `(id, entry)` pairs.
///
/// All slots are allocated up front; [`FlightRing::push`] moves the entry
/// into a slot under a short mutex hold and never allocates. Entries are
/// looked up by id ([`FlightRing::get`]) or enumerated newest-first
/// ([`FlightRing::recent`]).
pub struct FlightRing<T> {
    inner: Mutex<RingInner<T>>,
    capacity: usize,
    pushed: AtomicU64,
    overwritten: AtomicU64,
}

impl<T> FlightRing<T> {
    /// A ring holding at most `capacity` entries (0 = recording disabled;
    /// every push is dropped).
    pub fn new(capacity: usize) -> FlightRing<T> {
        FlightRing {
            inner: Mutex::new(RingInner {
                slots: (0..capacity).map(|_| None).collect(),
                next: 0,
            }),
            capacity,
            pushed: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("flight ring lock");
        inner.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.pushed.load(Ordering::Relaxed) == 0
    }

    /// Total entries ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Entries evicted by overwrite since construction.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Records `entry` under `id`, overwriting the oldest entry when the
    /// ring is full. No allocation; the mutex guards one slot write.
    pub fn push(&self, id: u64, entry: T) {
        if self.capacity == 0 {
            return;
        }
        let evicted = {
            let mut inner = self.inner.lock().expect("flight ring lock");
            let at = (inner.next % self.capacity as u64) as usize;
            inner.next += 1;
            inner.slots[at].replace((id, entry))
        };
        self.pushed.fetch_add(1, Ordering::Relaxed);
        if evicted.is_some() {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        // Evicted entry drops outside the lock.
        drop(evicted);
    }
}

impl<T: Clone> FlightRing<T> {
    /// The entry recorded under `id`, if it is still in the ring.
    pub fn get(&self, id: u64) -> Option<T> {
        let inner = self.inner.lock().expect("flight ring lock");
        inner
            .slots
            .iter()
            .flatten()
            .find(|(eid, _)| *eid == id)
            .map(|(_, e)| e.clone())
    }

    /// Up to `n` most recent entries, newest first.
    pub fn recent(&self, n: usize) -> Vec<(u64, T)> {
        let inner = self.inner.lock().expect("flight ring lock");
        let cap = self.capacity as u64;
        if cap == 0 || n == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n.min(self.capacity));
        // Walk backwards from the most recently written slot.
        let written = inner.next.min(cap);
        for back in 0..written {
            if out.len() >= n {
                break;
            }
            let at = ((inner.next - 1 - back) % cap) as usize;
            if let Some((id, e)) = &inner.slots[at] {
                out.push((*id, e.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let ring: FlightRing<u32> = FlightRing::new(3);
        for i in 0..5u64 {
            ring.push(i, i as u32 * 10);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.overwritten(), 2);
        assert_eq!(ring.get(0), None);
        assert_eq!(ring.get(1), None);
        assert_eq!(ring.get(4), Some(40));
        assert_eq!(ring.recent(10), vec![(4, 40), (3, 30), (2, 20)]);
        assert_eq!(ring.recent(1), vec![(4, 40)]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let ring: FlightRing<u32> = FlightRing::new(0);
        ring.push(1, 1);
        assert_eq!(ring.len(), 0);
        assert!(ring.recent(4).is_empty());
        assert_eq!(ring.get(1), None);
    }

    #[test]
    fn sampler_is_periodic_and_deterministic() {
        let s = Sampler::new(4, 0);
        let hits: Vec<bool> = (0..8).map(|_| s.sample()).collect();
        assert_eq!(hits, [true, false, false, false, true, false, false, false]);
        // A seed shifts the phase but keeps the rate.
        let s = Sampler::new(4, 3);
        let hits: Vec<bool> = (0..8).map(|_| s.sample()).collect();
        assert_eq!(hits.iter().filter(|&&h| h).count(), 2);
        let s = Sampler::new(0, 7);
        assert!((0..100).all(|_| !s.sample()));
        assert_eq!(s.calls(), 100);
    }
}
