//! A minimal JSON reader/writer.
//!
//! The bench harness emits BENCH JSON lines and the profiler emits
//! EXPLAIN ANALYZE snapshots; this module lets the workspace *parse* what
//! it writes (round-trip validation in tests and the CI profile-smoke job)
//! without an external JSON dependency. Accepts standard JSON; numbers are
//! `f64` (exact for integers below 2^53).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i` of an array.
    pub fn item(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects negatives and
    /// non-numbers; saturates above 2^64-1).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

/// Quotes and escapes `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates render as the replacement char;
                            // the workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole run up to the next quote or escape.
                    let rest = &self.bytes[self.pos..];
                    let end = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let chunk = std::str::from_utf8(&rest[..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5e1}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(|b| b.item(0)), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("b").and_then(|b| b.item(2)).and_then(Json::as_str),
            Some("x\n")
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-25.0)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn quote_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}";
        let parsed = parse(&quote(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse(r#""héllo é""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo é"));
    }
}
