//! Record synthesis by random walks (§7.1).

use graphbi_graph::{EdgeId, GraphRecord, RecordBuilder};
use rand::rngs::StdRng;
use rand::Rng;

use crate::base::BaseGraph;
use crate::DatasetSpec;

/// Synthesizes `spec.n_records` records: each is the distinct-edge trace of
/// one or more random walks over the base graph ("invoking multiple random
/// walk processes"), with a uniform random measure on every collected edge.
pub fn generate(base: &BaseGraph, spec: &DatasetSpec, rng: &mut StdRng) -> Vec<GraphRecord> {
    let starts = base.walkable();
    assert!(!starts.is_empty(), "base graph has no walkable node");
    (0..spec.n_records)
        .map(|_| {
            let target = rng.gen_range(spec.min_edges..=spec.max_edges);
            walk_record(base, &starts, target, rng)
        })
        .collect()
}

/// One record: random walks restarted until `target` distinct edges are
/// collected (or the whole edge universe is exhausted).
pub fn walk_record(
    base: &BaseGraph,
    starts: &[usize],
    target: usize,
    rng: &mut StdRng,
) -> GraphRecord {
    let mut collected: Vec<EdgeId> = Vec::with_capacity(target);
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let universe_edges = base.edge_count();
    let mut node = starts[rng.gen_range(0..starts.len())];
    let mut stall = 0usize;
    while collected.len() < target.min(universe_edges) {
        let outs = &base.succ[node];
        if outs.is_empty() {
            node = starts[rng.gen_range(0..starts.len())];
            continue;
        }
        let &(next, edge) = &outs[rng.gen_range(0..outs.len())];
        if seen.insert(edge) {
            collected.push(edge);
            stall = 0;
        } else {
            stall += 1;
            // Walk is circling ground it has covered: restart elsewhere.
            if stall > 16 {
                node = starts[rng.gen_range(0..starts.len())];
                stall = 0;
                continue;
            }
        }
        node = next;
    }
    let mut b = RecordBuilder::with_capacity(collected.len());
    for e in collected {
        b.add(e, measure(rng));
    }
    b.build()
}

/// A random measure value, as the paper assigns ("a random real value to
/// each of their edges").
#[inline]
pub fn measure(rng: &mut StdRng) -> f64 {
    // Uniform in [0.5, 10.5): strictly positive so SUM/MIN/MAX results are
    // never degenerate, with enough spread for aggregation to be meaningful.
    rng.gen_range(0.5..10.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::road_network;
    use graphbi_graph::Universe;
    use rand::SeedableRng;

    #[test]
    fn records_collect_distinct_edges() {
        let mut u = Universe::new();
        let mut rng = StdRng::seed_from_u64(3);
        let base = road_network(&mut u, 500, &mut rng);
        let starts = base.walkable();
        for _ in 0..20 {
            let r = walk_record(&base, &starts, 40, &mut rng);
            assert_eq!(r.edge_count(), 40);
            // RecordBuilder dedups; equality of count proves distinctness.
        }
    }

    #[test]
    fn target_larger_than_universe_is_capped() {
        let mut u = Universe::new();
        let mut rng = StdRng::seed_from_u64(5);
        let base = road_network(&mut u, 60, &mut rng);
        let starts = base.walkable();
        let r = walk_record(&base, &starts, 1000, &mut rng);
        assert!(r.edge_count() <= 60);
        assert!(
            r.edge_count() > 30,
            "walk should cover most of a tiny graph"
        );
    }

    #[test]
    fn measures_are_positive_and_spread() {
        let mut rng = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..1000).map(|_| measure(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (0.5..10.5).contains(&x)));
        let lo = xs.iter().filter(|&&x| x < 3.0).count();
        let hi = xs.iter().filter(|&&x| x > 8.0).count();
        assert!(lo > 100 && hi > 100);
    }
}
