//! Zipf-distributed sampling for skewed query workloads.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`: rank `k` has probability
/// proportional to `1/(k+1)^α`.
///
/// Sampling is O(log n) via binary search over the precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `alpha` is not finite and non-negative.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0usize;
        const N: usize = 10_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With α=1 over 1000 ranks, the top-10 mass is H(10)/H(1000) ≈ 39%.
        assert!(low > N * 3 / 10, "only {low}/{N} in top 10");
        assert!(low < N * 5 / 10);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_stays_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
