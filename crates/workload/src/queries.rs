//! Query-workload generation (§7.1): "query graphs that are generated
//! either with uniform or with Zipf distribution from the set of paths
//! resulting from the random walk processes".

use graphbi_graph::{EdgeId, GraphQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::base::BaseGraph;
use crate::zipf::Zipf;

/// How queries are drawn from the path pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryDistribution {
    /// Every query is an independent fresh path.
    Uniform,
    /// Queries pick from a pool of `pool` paths with Zipf(α) rank skew —
    /// hot paths recur, creating the sharing Figure 8 exploits.
    Zipf {
        /// Skew exponent.
        alpha: f64,
        /// Pool size.
        pool: usize,
    },
}

/// Structural shape of generated queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryShapeKind {
    /// One simple path per query — always acyclic, usable for path
    /// aggregation.
    SinglePath,
    /// A union of simple paths totalling the requested edge count — the
    /// shape used for the large-query sensitivity sweeps (Figure 3b).
    MultiPath,
}

/// Full workload specification.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Number of queries (the paper uses sets of 100).
    pub count: usize,
    /// Minimum edges per query.
    pub min_len: usize,
    /// Maximum edges per query.
    pub max_len: usize,
    /// Draw distribution.
    pub distribution: QueryDistribution,
    /// Query shape.
    pub shape: QueryShapeKind,
    /// RNG seed.
    pub seed: u64,
}

impl QuerySpec {
    /// The paper's default workload: 100 uniform path queries.
    pub fn uniform(count: usize) -> QuerySpec {
        QuerySpec {
            count,
            min_len: 3,
            max_len: 6,
            distribution: QueryDistribution::Uniform,
            shape: QueryShapeKind::SinglePath,
            seed: 0x71,
        }
    }

    /// The skewed workload of Figure 8.
    pub fn zipf(count: usize) -> QuerySpec {
        QuerySpec {
            distribution: QueryDistribution::Zipf {
                alpha: 1.0,
                pool: (count / 3).max(2),
            },
            ..QuerySpec::uniform(count)
        }
    }
}

/// Generates the workload.
pub fn generate(base: &BaseGraph, spec: &QuerySpec) -> Vec<GraphQuery> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let starts = base.walkable();
    assert!(!starts.is_empty(), "base graph has no walkable node");
    let fresh = |rng: &mut StdRng| -> GraphQuery {
        let target = rng.gen_range(spec.min_len..=spec.max_len);
        match spec.shape {
            QueryShapeKind::SinglePath => {
                GraphQuery::from_edges(simple_path(base, &starts, target, rng))
            }
            QueryShapeKind::MultiPath => {
                let mut edges: Vec<EdgeId> = Vec::with_capacity(target);
                let mut guard = 0;
                while edges.len() < target && guard < 512 {
                    edges.extend(simple_path(base, &starts, target - edges.len(), rng));
                    edges.sort_unstable();
                    edges.dedup();
                    guard += 1;
                }
                GraphQuery::from_edges(edges)
            }
        }
    };
    match spec.distribution {
        QueryDistribution::Uniform => (0..spec.count).map(|_| fresh(&mut rng)).collect(),
        QueryDistribution::Zipf { alpha, pool } => {
            let paths: Vec<GraphQuery> = (0..pool).map(|_| fresh(&mut rng)).collect();
            let z = Zipf::new(pool, alpha);
            (0..spec.count)
                .map(|_| paths[z.sample(&mut rng)].clone())
                .collect()
        }
    }
}

/// A simple (node-repetition-free) random walk of up to `target` edges; the
/// result is the walk's edge list (which forms an acyclic path graph).
/// Restarts a few times if the walk dead-ends too early.
fn simple_path(base: &BaseGraph, starts: &[usize], target: usize, rng: &mut StdRng) -> Vec<EdgeId> {
    let mut best: Vec<EdgeId> = Vec::new();
    for _attempt in 0..8 {
        let mut edges = Vec::with_capacity(target);
        let mut visited = std::collections::HashSet::new();
        let mut node = starts[rng.gen_range(0..starts.len())];
        visited.insert(node);
        while edges.len() < target {
            let outs: Vec<&(usize, EdgeId)> = base.succ[node]
                .iter()
                .filter(|(t, _)| !visited.contains(t))
                .collect();
            if outs.is_empty() {
                break;
            }
            let &(next, e) = outs[rng.gen_range(0..outs.len())];
            edges.push(e);
            visited.insert(next);
            node = next;
        }
        if edges.len() >= target {
            return edges;
        }
        if edges.len() > best.len() {
            best = edges;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::road_network;
    use graphbi_graph::Universe;

    fn setup() -> (Universe, BaseGraph) {
        let mut u = Universe::new();
        let mut rng = StdRng::seed_from_u64(17);
        let g = road_network(&mut u, 1000, &mut rng);
        (u, g)
    }

    #[test]
    fn uniform_queries_are_paths_within_bounds() {
        let (u, base) = setup();
        let spec = QuerySpec::uniform(50);
        let qs = generate(&base, &spec);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert!(q.len() >= 2 && q.len() <= spec.max_len, "len {}", q.len());
            // Single-path queries must be acyclic with one maximal path.
            let paths = q.maximal_paths(&u).unwrap();
            assert_eq!(paths.len(), 1, "query is not a single path");
            assert_eq!(paths[0].edge_len(), q.len());
        }
    }

    #[test]
    fn zipf_workload_repeats_hot_queries() {
        let (_, base) = setup();
        let qs = generate(&base, &QuerySpec::zipf(100));
        let mut distinct: Vec<&GraphQuery> = qs.iter().collect();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() < 60,
            "expected repetition, got {} distinct of 100",
            distinct.len()
        );
    }

    #[test]
    fn multipath_queries_reach_large_sizes() {
        let (_, base) = setup();
        let spec = QuerySpec {
            min_len: 40,
            max_len: 40,
            shape: QueryShapeKind::MultiPath,
            ..QuerySpec::uniform(10)
        };
        let qs = generate(&base, &spec);
        for q in &qs {
            assert!(q.len() >= 30, "multipath query too small: {}", q.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, base) = setup();
        let a = generate(&base, &QuerySpec::uniform(20));
        let b = generate(&base, &QuerySpec::uniform(20));
        assert_eq!(a, b);
    }
}
