//! Domain scenarios: ready-made universes and record streams for the
//! paper's motivating applications (§1–§2).
//!
//! * [`ScmScenario`] — a supply chain in the shape of Figure 1: production
//!   lines feed regional hub networks that deliver to customer endpoints.
//!   Orders are traced as graph records with shipping-time measures;
//!   regions support the zoom/aggregate-node analyses of Q3.
//! * [`WorkflowScenario`] — a workflow management system: process instances
//!   walk a state machine that may loop (rework); records are flattened
//!   into DAGs via node versioning (§6.2) before storage, exactly the
//!   pipeline the paper prescribes for cyclic traces.

use graphbi_graph::{flatten, GraphRecord, NodeId, Universe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::records::measure;

/// A Figure-1-style supply chain.
pub struct ScmScenario {
    /// Production-line nodes.
    pub lines: Vec<NodeId>,
    /// Hub nodes, grouped by region.
    pub regions: Vec<Vec<NodeId>>,
    /// Customer endpoints.
    pub customers: Vec<NodeId>,
    /// Forward adjacency over all tiers.
    succ: Vec<(NodeId, Vec<NodeId>)>,
}

impl ScmScenario {
    /// Builds the network: `lines` production lines, `regions` regions of
    /// `hubs_per_region` hubs each, `customers` endpoints. All edges are
    /// interned in `universe`.
    pub fn build(
        universe: &mut Universe,
        lines: usize,
        regions: usize,
        hubs_per_region: usize,
        customers: usize,
        seed: u64,
    ) -> ScmScenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let line_nodes: Vec<NodeId> = (0..lines)
            .map(|i| universe.node(&format!("line{i}")))
            .collect();
        let region_nodes: Vec<Vec<NodeId>> = (0..regions)
            .map(|r| {
                (0..hubs_per_region)
                    .map(|h| universe.node(&format!("hub{r}_{h}")))
                    .collect()
            })
            .collect();
        let customer_nodes: Vec<NodeId> = (0..customers)
            .map(|i| universe.node(&format!("cust{i}")))
            .collect();

        let mut succ: std::collections::BTreeMap<NodeId, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        let connect =
            |u2: &mut Universe,
             s: NodeId,
             t: NodeId,
             succ: &mut std::collections::BTreeMap<NodeId, Vec<NodeId>>| {
                u2.edge(s, t);
                succ.entry(s).or_default().push(t);
            };
        // Lines feed 1–2 hubs of their nearest region.
        for (i, &l) in line_nodes.iter().enumerate() {
            let region = &region_nodes[i % regions];
            for k in 0..2 {
                let hub = region[(i + k) % region.len()];
                connect(universe, l, hub, &mut succ);
            }
        }
        // Hub chains inside a region, plus one cross-region link each.
        for (r, hubs) in region_nodes.iter().enumerate() {
            for w in 0..hubs.len() {
                let next = hubs[(w + 1) % hubs.len()];
                if hubs[w] != next {
                    connect(universe, hubs[w], next, &mut succ);
                }
                if rng.gen_bool(0.5) {
                    let other = &region_nodes[(r + 1) % regions];
                    connect(universe, hubs[w], other[w % other.len()], &mut succ);
                }
            }
        }
        // Hubs deliver to customers.
        for (r, hubs) in region_nodes.iter().enumerate() {
            for (w, &h) in hubs.iter().enumerate() {
                let c = customer_nodes[(r * hubs.len() + w) % customer_nodes.len()];
                connect(universe, h, c, &mut succ);
            }
        }
        ScmScenario {
            lines: line_nodes,
            regions: region_nodes,
            customers: customer_nodes,
            succ: succ.into_iter().collect(),
        }
    }

    fn successors(&self, n: NodeId) -> &[NodeId] {
        self.succ
            .binary_search_by_key(&n, |&(k, _)| k)
            .map(|i| self.succ[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// Traces one order: a walk from a random production line toward a
    /// customer, with shipping-time measures per leg. Walks may revisit
    /// nodes (returns, re-routing); the trace is flattened into a DAG.
    pub fn order(&self, universe: &mut Universe, rng: &mut StdRng) -> GraphRecord {
        let mut walk = vec![self.lines[rng.gen_range(0..self.lines.len())]];
        let mut steps = Vec::new();
        for _ in 0..32 {
            let here = *walk.last().expect("walk non-empty");
            let outs = self.successors(here);
            if outs.is_empty() {
                break; // reached a customer
            }
            walk.push(outs[rng.gen_range(0..outs.len())]);
            steps.push(measure(rng));
        }
        flatten::flatten_walk(universe, &walk, &steps)
    }

    /// Generates `n` order records.
    pub fn orders(&self, universe: &mut Universe, n: usize, seed: u64) -> Vec<GraphRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.order(universe, &mut rng)).collect()
    }
}

/// A workflow state machine with rework loops.
pub struct WorkflowScenario {
    states: Vec<NodeId>,
    /// `(from, to)` transition indices into `states`.
    transitions: Vec<(usize, usize)>,
}

impl WorkflowScenario {
    /// Builds a linear review pipeline of `stages` stages where every stage
    /// can bounce back to the previous one (rework) and the final stage
    /// completes.
    pub fn build(universe: &mut Universe, stages: usize) -> WorkflowScenario {
        assert!(stages >= 2, "a workflow needs at least start and end");
        let states: Vec<NodeId> = (0..stages)
            .map(|i| universe.node(&format!("stage{i}")))
            .collect();
        let mut transitions = Vec::new();
        for i in 0..stages - 1 {
            universe.edge(states[i], states[i + 1]);
            transitions.push((i, i + 1));
            if i > 0 {
                universe.edge(states[i], states[i - 1]);
                transitions.push((i, i - 1));
            }
        }
        WorkflowScenario {
            states,
            transitions,
        }
    }

    /// The workflow's states.
    pub fn states(&self) -> &[NodeId] {
        &self.states
    }

    /// Runs one process instance: forward progress with probability
    /// `1 - rework`, bounce-back otherwise; the (possibly cyclic) trace is
    /// flattened into an acyclic record with per-transition latencies.
    pub fn instance(&self, universe: &mut Universe, rework: f64, rng: &mut StdRng) -> GraphRecord {
        let _ = &self.transitions;
        let mut at = 0usize;
        let mut walk = vec![self.states[0]];
        let mut steps = Vec::new();
        let mut guard = 0;
        while at + 1 < self.states.len() && guard < 256 {
            guard += 1;
            let back = at > 0 && rng.gen_bool(rework);
            at = if back { at - 1 } else { at + 1 };
            walk.push(self.states[at]);
            steps.push(measure(rng));
        }
        flatten::flatten_walk(universe, &walk, &steps)
    }

    /// Generates `n` instances.
    pub fn instances(
        &self,
        universe: &mut Universe,
        n: usize,
        rework: f64,
        seed: u64,
    ) -> Vec<GraphRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| self.instance(universe, rework, &mut rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphbi_graph::QueryShape;

    #[test]
    fn scm_orders_are_valid_dags() {
        let mut u = Universe::new();
        let scm = ScmScenario::build(&mut u, 3, 2, 4, 5, 7);
        assert_eq!(scm.lines.len(), 3);
        assert_eq!(scm.regions.len(), 2);
        let orders = scm.orders(&mut u, 25, 11);
        assert_eq!(orders.len(), 25);
        for o in &orders {
            assert!(o.edge_count() > 0);
            let edges: Vec<_> = o.edges().iter().map(|&(e, _)| e).collect();
            assert!(QueryShape::from_edges(&edges, &u).is_dag());
        }
    }

    #[test]
    fn scm_regions_have_internal_edges() {
        let mut u = Universe::new();
        let scm = ScmScenario::build(&mut u, 2, 2, 5, 4, 3);
        let internal = u.edges_within(&scm.regions[0]);
        assert!(!internal.is_empty(), "region hubs must interconnect");
    }

    #[test]
    fn workflow_instances_flatten_rework_loops() {
        let mut u = Universe::new();
        let wf = WorkflowScenario::build(&mut u, 5);
        let instances = wf.instances(&mut u, 50, 0.3, 13);
        let mut versioned = 0;
        for inst in &instances {
            let edges: Vec<_> = inst.edges().iter().map(|&(e, _)| e).collect();
            assert!(QueryShape::from_edges(&edges, &u).is_dag());
            // Rework produces versioned stage copies in some instances.
            for &(e, _) in inst.edges() {
                let (s, _) = u.endpoints(e);
                if u.node_name(s).contains('~') {
                    versioned += 1;
                }
            }
        }
        assert!(versioned > 0, "30% rework must create versioned nodes");
    }

    #[test]
    fn zero_rework_is_the_plain_pipeline() {
        let mut u = Universe::new();
        let wf = WorkflowScenario::build(&mut u, 4);
        let inst = wf.instances(&mut u, 5, 0.0, 1);
        for i in &inst {
            assert_eq!(i.edge_count(), 3, "start→s1→s2→end");
        }
        assert_eq!(u.node_count(), 4, "no versions created");
    }

    #[test]
    fn scenarios_are_deterministic() {
        let mut u1 = Universe::new();
        let mut u2 = Universe::new();
        let a = ScmScenario::build(&mut u1, 2, 2, 3, 3, 5).orders(&mut u1, 10, 9);
        let b = ScmScenario::build(&mut u2, 2, 2, 3, 3, 5).orders(&mut u2, 10, 9);
        assert_eq!(a, b);
    }
}
