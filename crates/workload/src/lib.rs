#![warn(missing_docs)]

//! Synthetic datasets and query workloads (§7.1).
//!
//! The paper synthesizes millions of graph records "by invoking multiple
//! random walk processes" over two base graphs — the New York road network
//! and a Gnutella P2P snapshot — assigning "a random real value to each of
//! their edges". Neither raw file ships with this repository, so the base
//! graphs themselves are synthesized with matching structure:
//!
//! * [`base::road_network`] — a planar grid with avenue/street asymmetry and
//!   a sprinkling of diagonal expressways, the NY-road stand-in;
//! * [`base::p2p_network`] — a preferential-attachment digraph with the
//!   heavy-tailed degree distribution of a Gnutella crawl.
//!
//! What the experiments actually consume is the *walk structure* over a
//! fixed edge universe (Table 2: 1000 distinct edge ids by default), which
//! these generators reproduce exactly. Record synthesis ([`records`]),
//! query generation ([`queries`]) with uniform and Zipf path selection, and
//! the Zipf sampler ([`zipf`]) complete the §7.1 setup.

pub mod base;
pub mod queries;
pub mod records;
pub mod scenarios;
pub mod zipf;

use graphbi_graph::{GraphQuery, GraphRecord, Universe};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which base graph to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseKind {
    /// Grid-with-expressways road network (the NY stand-in).
    RoadNetwork,
    /// Preferential-attachment digraph (the Gnutella stand-in).
    P2pNetwork,
}

/// Full specification of a synthetic dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Base graph family.
    pub kind: BaseKind,
    /// Number of graph records to synthesize.
    pub n_records: usize,
    /// Size of the edge universe (Table 2: 1000 by default, up to 100k in
    /// sensitivity tests).
    pub edge_domain: usize,
    /// Minimum distinct edges per record (Table 2: 35 for NY, 45 for GNU).
    pub min_edges: usize,
    /// Maximum distinct edges per record (Table 2: 100).
    pub max_edges: usize,
    /// RNG seed — all synthesis is deterministic given the spec.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's NY dataset shape (record counts scaled by the caller).
    pub fn ny(n_records: usize) -> DatasetSpec {
        DatasetSpec {
            kind: BaseKind::RoadNetwork,
            n_records,
            edge_domain: 1000,
            min_edges: 35,
            max_edges: 100,
            seed: 0x4e59,
        }
    }

    /// The paper's GNU dataset shape.
    pub fn gnu(n_records: usize) -> DatasetSpec {
        DatasetSpec {
            kind: BaseKind::P2pNetwork,
            n_records,
            edge_domain: 1000,
            min_edges: 45,
            max_edges: 100,
            seed: 0x6e75,
        }
    }
}

/// A synthesized dataset: the shared universe, the base graph and the
/// records.
pub struct Dataset {
    /// The naming scheme shared by records and queries.
    pub universe: Universe,
    /// The base graph the walks ran on.
    pub base: base::BaseGraph,
    /// The graph records.
    pub records: Vec<GraphRecord>,
}

impl Dataset {
    /// Synthesizes a dataset from its spec.
    pub fn synthesize(spec: &DatasetSpec) -> Dataset {
        let mut universe = Universe::new();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let base = match spec.kind {
            BaseKind::RoadNetwork => base::road_network(&mut universe, spec.edge_domain, &mut rng),
            BaseKind::P2pNetwork => base::p2p_network(&mut universe, spec.edge_domain, &mut rng),
        };
        let records = records::generate(&base, spec, &mut rng);
        Dataset {
            universe,
            base,
            records,
        }
    }

    /// Generates a query workload over this dataset.
    pub fn queries(&self, spec: &queries::QuerySpec) -> Vec<GraphQuery> {
        queries::generate(&self.base, spec)
    }

    /// Average distinct edges per record.
    pub fn avg_edges_per_record(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(GraphRecord::edge_count)
            .sum::<usize>() as f64
            / self.records.len() as f64
    }

    /// Total measures stored across all records (Table 2).
    pub fn total_measures(&self) -> u64 {
        self.records.iter().map(|r| r.edge_count() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let spec = DatasetSpec {
            n_records: 50,
            ..DatasetSpec::ny(50)
        };
        let a = Dataset::synthesize(&spec);
        let b = Dataset::synthesize(&spec);
        assert_eq!(a.records.len(), 50);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn record_sizes_respect_spec_bounds() {
        let spec = DatasetSpec::ny(100);
        let d = Dataset::synthesize(&spec);
        for r in &d.records {
            assert!(r.edge_count() >= spec.min_edges, "{}", r.edge_count());
            assert!(r.edge_count() <= spec.max_edges, "{}", r.edge_count());
        }
        let avg = d.avg_edges_per_record();
        assert!(avg > spec.min_edges as f64 && avg < spec.max_edges as f64);
    }

    #[test]
    fn edge_domain_is_respected() {
        for kind in [BaseKind::RoadNetwork, BaseKind::P2pNetwork] {
            let spec = DatasetSpec {
                kind,
                ..DatasetSpec::ny(20)
            };
            let d = Dataset::synthesize(&spec);
            assert_eq!(d.universe.edge_count(), spec.edge_domain);
            for r in &d.records {
                for &(e, _) in r.edges() {
                    assert!(e.index() < spec.edge_domain);
                }
            }
        }
    }
}
