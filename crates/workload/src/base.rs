//! Base-graph generators.
//!
//! Both generators build a digraph with *exactly* `edge_domain` directed
//! edges, interned in the shared universe so edge ids are the dense column
//! indices `0..edge_domain`.

use graphbi_graph::{EdgeId, NodeId, Universe};
use rand::rngs::StdRng;
use rand::Rng;

/// A base graph: the substrate the record/query walks run on.
pub struct BaseGraph {
    /// The graph's nodes (universe ids).
    pub nodes: Vec<NodeId>,
    /// Outgoing adjacency: `succ[i]` lists `(target index, edge id)`.
    pub succ: Vec<Vec<(usize, EdgeId)>>,
}

impl BaseGraph {
    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Nodes with at least one outgoing edge (walk start candidates).
    pub fn walkable(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| !self.succ[i].is_empty())
            .collect()
    }
}

/// Builds the road-network stand-in: a near-square grid where horizontal
/// "streets" run in both directions, vertical "avenues" alternate direction
/// (the Manhattan pattern), plus a few random diagonal expressways; the edge
/// set is then trimmed to exactly `edge_domain` edges.
pub fn road_network(universe: &mut Universe, edge_domain: usize, rng: &mut StdRng) -> BaseGraph {
    // Pick grid dimensions so the raw edge count slightly exceeds the
    // domain: a W×H grid has ~2·W·H street edges + W·H avenue edges.
    let mut wh = 2usize;
    while 3 * wh * wh < edge_domain + 10 {
        wh += 1;
    }
    let (w, h) = (wh, wh);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let idx = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                // Streets: bidirectional.
                pairs.push((idx(x, y), idx(x + 1, y)));
                pairs.push((idx(x + 1, y), idx(x, y)));
            }
            if y + 1 < h {
                // Avenues: alternate direction by column.
                if x % 2 == 0 {
                    pairs.push((idx(x, y), idx(x, y + 1)));
                } else {
                    pairs.push((idx(x, y + 1), idx(x, y)));
                }
            }
        }
    }
    // Diagonal expressways: ~2% extra connectivity.
    let n = w * h;
    for _ in 0..(edge_domain / 50).max(1) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            pairs.push((a, b));
        }
    }
    finish(universe, "ny", n, pairs, edge_domain, rng)
}

/// Builds the P2P stand-in: a preferential-attachment digraph — each new
/// host links to `m` existing hosts chosen with probability proportional to
/// their degree, producing the heavy-tailed degree profile of a Gnutella
/// crawl; trimmed to exactly `edge_domain` edges.
pub fn p2p_network(universe: &mut Universe, edge_domain: usize, rng: &mut StdRng) -> BaseGraph {
    let m = 3usize; // out-links per arriving host
    let n = (edge_domain / m + 2).max(4);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<usize> = vec![0, 1, 1, 0];
    pairs.push((1, 0));
    pairs.push((0, 1));
    for v in 2..n {
        for _ in 0..m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !pairs.contains(&(v, t)) {
                pairs.push((v, t));
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        // Occasional back-link so walks can leave old hubs too.
        if v % 4 == 0 {
            let s = endpoints[rng.gen_range(0..endpoints.len())];
            if s != v {
                pairs.push((s, v));
            }
        }
    }
    finish(universe, "p2p", n, pairs, edge_domain, rng)
}

/// Trims/pads the pair list to exactly `edge_domain` unique edges, interns
/// everything and assembles adjacency.
fn finish(
    universe: &mut Universe,
    prefix: &str,
    n: usize,
    mut pairs: Vec<(usize, usize)>,
    edge_domain: usize,
    rng: &mut StdRng,
) -> BaseGraph {
    pairs.sort_unstable();
    pairs.dedup();
    // Pad with random extra edges if the generator under-produced.
    while pairs.len() < edge_domain {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !pairs.contains(&(a, b)) {
            pairs.push((a, b));
        }
    }
    // Deterministic trim: shuffle-free, keep a stride-sampled subset so the
    // survivors stay spatially spread out.
    if pairs.len() > edge_domain {
        let keep_every = pairs.len() as f64 / edge_domain as f64;
        let mut kept = Vec::with_capacity(edge_domain);
        let mut acc = 0.0f64;
        for p in &pairs {
            acc += 1.0;
            if acc >= keep_every {
                acc -= keep_every;
                kept.push(*p);
                if kept.len() == edge_domain {
                    break;
                }
            }
        }
        let mut i = 0;
        while kept.len() < edge_domain {
            if !kept.contains(&pairs[i]) {
                kept.push(pairs[i]);
            }
            i += 1;
        }
        pairs = kept;
        pairs.sort_unstable();
    }

    let nodes: Vec<NodeId> = (0..n)
        .map(|i| universe.node(&format!("{prefix}{i}")))
        .collect();
    let mut succ: Vec<Vec<(usize, EdgeId)>> = vec![Vec::new(); n];
    for &(a, b) in &pairs {
        let e = universe.edge(nodes[a], nodes[b]);
        succ[a].push((b, e));
    }
    BaseGraph { nodes, succ }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn road_network_hits_exact_edge_domain() {
        for domain in [100usize, 1000, 5000] {
            let mut u = Universe::new();
            let mut rng = StdRng::seed_from_u64(7);
            let g = road_network(&mut u, domain, &mut rng);
            assert_eq!(g.edge_count(), domain);
            assert_eq!(u.edge_count(), domain);
        }
    }

    #[test]
    fn p2p_network_hits_exact_edge_domain() {
        for domain in [100usize, 1000] {
            let mut u = Universe::new();
            let mut rng = StdRng::seed_from_u64(9);
            let g = p2p_network(&mut u, domain, &mut rng);
            assert_eq!(g.edge_count(), domain);
        }
    }

    #[test]
    fn p2p_degrees_are_heavy_tailed() {
        let mut u = Universe::new();
        let mut rng = StdRng::seed_from_u64(11);
        let g = p2p_network(&mut u, 2000, &mut rng);
        // In-degree concentration: the top 5% of nodes should hold a
        // disproportionate share of incoming links.
        let mut indeg = vec![0usize; g.nodes.len()];
        for outs in &g.succ {
            for &(t, _) in outs {
                indeg[t] += 1;
            }
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = indeg[..indeg.len() / 20].iter().sum();
        let total: usize = indeg.iter().sum();
        assert!(
            top * 3 > total,
            "top 5% hold {top}/{total} — not heavy-tailed"
        );
    }

    #[test]
    fn road_network_is_mostly_walkable() {
        let mut u = Universe::new();
        let mut rng = StdRng::seed_from_u64(13);
        let g = road_network(&mut u, 1000, &mut rng);
        assert!(g.walkable().len() * 10 >= g.nodes.len() * 8);
    }
}
