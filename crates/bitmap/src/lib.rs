#![warn(missing_docs)]

//! Compressed bitmaps for graphbi.
//!
//! The EDBT'14 framework this workspace reproduces stores, for every edge id
//! in the universe, a *bitmap column* marking which graph records contain
//! that edge. Evaluating a graph query is then a conjunction of bitmap
//! columns, and a materialized graph view is simply a precomputed bitmap.
//! Everything in the system leans on fast, compact bitmaps, so this crate
//! implements them from scratch.
//!
//! The main type, [`Bitmap`], is a roaring-style two-level structure: the
//! 32-bit key space is split into 64Ki chunks addressed by the high 16 bits,
//! and each non-empty chunk is stored in one of three container
//! representations chosen by density:
//!
//! * **array** — a sorted `Vec<u16>` of the low bits (sparse chunks),
//! * **words** — a 1024-word (8 KiB) uncompressed bit array (dense chunks),
//! * **runs** — sorted, disjoint `[start, start+len]` intervals
//!   (clustered chunks, the common case for record ids assigned by a
//!   sequential loader).
//!
//! A plain uncompressed bitmap, [`dense::DenseBitmap`], is provided for the
//! ablation benchmarks.
//!
//! ```
//! use graphbi_bitmap::Bitmap;
//!
//! let a: Bitmap = (0..1000).collect();
//! let b: Bitmap = (500..1500).collect();
//! let both = a.and(&b);
//! assert_eq!(both.len(), 500);
//! assert!(both.contains(700));
//! ```

mod bitmap;
mod builder;
mod codec;
mod container;
pub mod dense;
pub mod ewah;
pub mod intcodec;
mod iter;
pub mod kernels;
mod ops;

pub use bitmap::Bitmap;
pub use builder::BitmapBuilder;
pub use codec::DecodeError;
pub use iter::Iter;

/// Identifier of a graph record within a store.
///
/// The paper works with up to 320 M records; `u32` covers that with room to
/// spare and keeps containers compact.
pub type RecordId = u32;
