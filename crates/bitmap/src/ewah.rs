//! EWAH: word-aligned run-length bitmap compression.
//!
//! The bitmap indexes the paper builds on (its reference \[4\], O'Neil &
//! Quass) are classically implemented with word-aligned RLE — BBC, WAH,
//! EWAH — rather than roaring-style containers. This module implements
//! 64-bit EWAH as the ablation counterpart to [`crate::Bitmap`]: the
//! `bitmap_ops` bench compares the two under the workloads the engine
//! generates.
//!
//! Encoding: a sequence of *marker* words, each followed by a burst of
//! literal words.
//!
//! ```text
//! marker := run_bit (1) | run_len (31) | literal_count (32)
//! ```
//!
//! `run_len` counts 64-bit words filled entirely with `run_bit`;
//! `literal_count` verbatim words follow the marker. Compression shines on
//! long all-zero (or all-one) stretches — exactly the shape of a sparse
//! edge bitmap over sequential record ids.

use crate::RecordId;

const RUN_LEN_MAX: u64 = (1 << 31) - 1;
const LIT_MAX: u64 = u32::MAX as u64;

/// An immutable EWAH-compressed bitmap.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct EwahBitmap {
    /// Marker/literal word stream.
    words: Vec<u64>,
    /// Cached cardinality.
    len: u64,
}

#[inline]
fn marker(run_bit: bool, run_len: u64, literals: u64) -> u64 {
    debug_assert!(run_len <= RUN_LEN_MAX && literals <= LIT_MAX);
    (u64::from(run_bit) << 63) | (run_len << 32) | literals
}

#[inline]
fn marker_parts(m: u64) -> (bool, u64, u64) {
    (m >> 63 == 1, (m >> 32) & RUN_LEN_MAX, m & LIT_MAX)
}

/// Builds EWAH bitmaps from ascending ids.
#[derive(Default)]
pub struct EwahBuilder {
    words: Vec<u64>,
    len: u64,
    /// The literal word currently being filled and its index.
    current_word: u64,
    current_idx: u64,
    /// Zero-run length accumulated since the last flushed word.
    pending_zero_run: u64,
    /// Pending literal words (flushed under one marker).
    literals: Vec<u64>,
    last: Option<RecordId>,
}

impl EwahBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a strictly ascending id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-order or duplicate ids.
    pub fn push(&mut self, v: RecordId) {
        assert!(
            self.last.is_none_or(|l| l < v),
            "EwahBuilder::push out of order: {v} after {:?}",
            self.last
        );
        self.last = Some(v);
        self.len += 1;
        let word_idx = u64::from(v) / 64;
        if word_idx != self.current_idx {
            self.flush_current();
            // Words between current and the new one are all zero.
            self.pending_zero_run += word_idx - self.current_idx - 1;
            self.current_idx = word_idx;
        }
        self.current_word |= 1 << (v % 64);
    }

    fn flush_current(&mut self) {
        if self.current_word != 0 {
            // A zero run can only be emitted under a marker together with
            // following literals; stage the literal.
            if self.pending_zero_run > 0 {
                self.flush_marker();
                self.emit_run(self.pending_zero_run);
                self.pending_zero_run = 0;
            }
            self.literals.push(self.current_word);
            self.current_word = 0;
        } else {
            self.pending_zero_run += 1;
        }
    }

    fn emit_run(&mut self, mut run: u64) {
        while run > 0 {
            let chunk = run.min(RUN_LEN_MAX);
            self.words.push(marker(false, chunk, 0));
            run -= chunk;
        }
    }

    fn flush_marker(&mut self) {
        let mut lits = std::mem::take(&mut self.literals);
        let mut first = true;
        while !lits.is_empty() || first {
            let take = lits.len().min(LIT_MAX as usize);
            self.words.push(marker(false, 0, take as u64));
            self.words.extend(lits.drain(..take));
            first = false;
            if lits.is_empty() {
                break;
            }
        }
    }

    /// Finishes the bitmap.
    pub fn finish(mut self) -> EwahBitmap {
        self.flush_current();
        if !self.literals.is_empty() {
            // Merge any pending zero run in front of the trailing literals.
            // (flush_current staged the run before literals already when
            // needed; a leftover run here means trailing zeros — drop them,
            // they encode nothing.)
            self.flush_marker();
        }
        EwahBitmap {
            words: self.words,
            len: self.len,
        }
    }
}

impl EwahBitmap {
    /// Builds from ascending ids.
    pub fn from_sorted<I: IntoIterator<Item = RecordId>>(ids: I) -> EwahBitmap {
        let mut b = EwahBuilder::new();
        for v in ids {
            b.push(v);
        }
        b.finish()
    }

    /// Number of set bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes used.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Iterates the uncompressed 64-bit words (with their word indices).
    fn iter_words(&self) -> WordIter<'_> {
        WordIter {
            words: &self.words,
            pos: 0,
            word_idx: 0,
            run_left: 0,
            run_bit: false,
            lit_left: 0,
        }
    }

    /// Iterates set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.iter_words().flat_map(|(idx, word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let tz = word.trailing_zeros();
                word &= word - 1;
                Some(u32::try_from(idx * 64 + u64::from(tz)).expect("EWAH id fits u32"))
            })
        })
    }

    /// Converts to the roaring-style representation.
    pub fn to_bitmap(&self) -> crate::Bitmap {
        self.iter().collect()
    }

    /// Intersection — word-aligned merge of the two compressed streams.
    pub fn and(&self, other: &EwahBitmap) -> EwahBitmap {
        self.merge(other, |a, b| a & b)
    }

    /// Union.
    pub fn or(&self, other: &EwahBitmap) -> EwahBitmap {
        self.merge(other, |a, b| a | b)
    }

    fn merge(&self, other: &EwahBitmap, op: impl Fn(u64, u64) -> u64) -> EwahBitmap {
        let mut a = self.iter_words().peekable();
        let mut b = other.iter_words().peekable();
        let mut out = EwahBuilder::new();
        loop {
            match (a.peek().copied(), b.peek().copied()) {
                (Some((ia, wa)), Some((ib, wb))) => {
                    let (idx, word) = match ia.cmp(&ib) {
                        std::cmp::Ordering::Less => {
                            a.next();
                            (ia, op(wa, 0))
                        }
                        std::cmp::Ordering::Greater => {
                            b.next();
                            (ib, op(0, wb))
                        }
                        std::cmp::Ordering::Equal => {
                            a.next();
                            b.next();
                            (ia, op(wa, wb))
                        }
                    };
                    push_word(&mut out, idx, word);
                }
                (Some((ia, wa)), None) => {
                    a.next();
                    push_word(&mut out, ia, op(wa, 0));
                }
                (None, Some((ib, wb))) => {
                    b.next();
                    push_word(&mut out, ib, op(0, wb));
                }
                (None, None) => break,
            }
        }
        out.finish()
    }
}

struct WordIter<'a> {
    words: &'a [u64],
    pos: usize,
    word_idx: u64,
    run_left: u64,
    run_bit: bool,
    lit_left: u64,
}

impl Iterator for WordIter<'_> {
    /// `(word index, word)` for every *non-zero* uncompressed word.
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        loop {
            if self.run_left > 0 {
                if self.run_bit {
                    let idx = self.word_idx;
                    self.word_idx += 1;
                    self.run_left -= 1;
                    return Some((idx, u64::MAX));
                }
                // Zero runs encode nothing: skip them whole.
                self.word_idx += self.run_left;
                self.run_left = 0;
                continue;
            }
            if self.lit_left > 0 {
                let word = self.words[self.pos];
                self.pos += 1;
                self.lit_left -= 1;
                let idx = self.word_idx;
                self.word_idx += 1;
                if word != 0 {
                    return Some((idx, word));
                }
                continue;
            }
            if self.pos >= self.words.len() {
                return None;
            }
            let (bit, run, lits) = marker_parts(self.words[self.pos]);
            self.pos += 1;
            self.run_bit = bit;
            self.run_left = run;
            self.lit_left = lits;
        }
    }
}

fn push_word(out: &mut EwahBuilder, idx: u64, word: u64) {
    let mut w = word;
    while w != 0 {
        let tz = w.trailing_zeros();
        w &= w - 1;
        out.push(u32::try_from(idx * 64 + u64::from(tz)).expect("EWAH id fits u32"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_sparse_and_clustered() {
        for ids in [
            vec![0u32, 1, 2, 3],
            vec![5, 64, 65, 1_000_000],
            (0..10_000).map(|i| i * 17).collect::<Vec<_>>(),
            (500_000..501_000).collect::<Vec<_>>(),
        ] {
            let e = EwahBitmap::from_sorted(ids.iter().copied());
            assert_eq!(e.len(), ids.len() as u64);
            assert_eq!(e.iter().collect::<Vec<_>>(), ids);
        }
    }

    #[test]
    fn sparse_bitmaps_compress() {
        // 1000 bits spread over 100M ids: EWAH must be ~ 2 words per bit,
        // not 100M/64 words.
        let ids: Vec<u32> = (0..1000u32).map(|i| i * 100_000).collect();
        let e = EwahBitmap::from_sorted(ids.iter().copied());
        assert!(
            e.size_in_bytes() < 1000 * 24,
            "{} bytes is not compressed",
            e.size_in_bytes()
        );
    }

    #[test]
    fn and_or_match_set_semantics() {
        use std::collections::BTreeSet;
        let a_ids: Vec<u32> = (0..5000u32).map(|i| i * 7).collect();
        let b_ids: Vec<u32> = (0..7000u32).map(|i| i * 5).collect();
        let sa: BTreeSet<u32> = a_ids.iter().copied().collect();
        let sb: BTreeSet<u32> = b_ids.iter().copied().collect();
        let a = EwahBitmap::from_sorted(a_ids.iter().copied());
        let b = EwahBitmap::from_sorted(b_ids.iter().copied());
        assert_eq!(
            a.and(&b).iter().collect::<Vec<_>>(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.or(&b).iter().collect::<Vec<_>>(),
            sa.union(&sb).copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn agrees_with_roaring() {
        let ids: Vec<u32> = (0..20_000u32)
            .filter(|v| v % 13 == 0 || v % 101 < 3)
            .collect();
        let e = EwahBitmap::from_sorted(ids.iter().copied());
        let r: crate::Bitmap = ids.iter().copied().collect();
        assert_eq!(e.len(), r.len());
        assert_eq!(e.to_bitmap(), r);
    }

    #[test]
    fn empty_and_single() {
        let empty = EwahBitmap::from_sorted(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.iter().count(), 0);
        let one = EwahBitmap::from_sorted([42u32]);
        assert_eq!(one.iter().collect::<Vec<_>>(), vec![42]);
        assert_eq!(empty.and(&one).len(), 0);
        assert_eq!(empty.or(&one).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_unsorted() {
        let mut b = EwahBuilder::new();
        b.push(10);
        b.push(10);
    }
}
