//! Chunk containers: the per-64Ki-key-range storage of a [`crate::Bitmap`].
//!
//! A container holds the low 16 bits of every value falling in one chunk.
//! Three representations are used, mirroring the classic roaring design:
//! sorted arrays for sparse chunks, an 8 KiB word array for dense chunks and
//! run-length intervals for clustered chunks. All binary operations keep the
//! result in the cheapest of array/words form; run form is only produced by
//! [`Container::optimize`], which callers invoke after bulk loads.
//!
//! Word-level loops (AND/OR/ANDNOT/XOR over dense containers, cardinality
//! recounts, galloping probes) are delegated to [`crate::kernels`], which
//! dispatches between scalar and AVX2 implementations at runtime.

use crate::kernels;

/// Maximum cardinality at which the sorted-array representation is kept.
///
/// Above this the array (2 bytes/value) would exceed the fixed 8 KiB words
/// representation, so we switch — the same threshold roaring uses.
pub(crate) const ARRAY_MAX: usize = 4096;

/// Number of `u64` words in a dense container (covers 65536 bits).
pub(crate) const WORDS: usize = 1024;

/// An inclusive run `[start, start + len]` of set values within a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Run {
    pub start: u16,
    /// Number of values in the run *minus one*, so a run can cover the whole
    /// chunk (65536 values) without overflowing `u16`.
    pub len: u16,
}

impl Run {
    #[inline]
    pub fn end(self) -> u16 {
        self.start + self.len
    }

    #[inline]
    pub fn cardinality(self) -> u64 {
        u64::from(self.len) + 1
    }
}

/// Dense representation: a fixed bit array plus a maintained cardinality.
#[derive(Clone)]
pub(crate) struct Words {
    pub bits: [u64; WORDS],
    pub card: u32,
}

impl Words {
    pub fn empty() -> Box<Self> {
        Box::new(Words {
            bits: [0; WORDS],
            card: 0,
        })
    }

    #[inline]
    pub fn contains(&self, v: u16) -> bool {
        self.bits[usize::from(v >> 6)] & (1 << (v & 63)) != 0
    }

    /// Sets bit `v`; returns true if it was newly set.
    #[inline]
    pub fn insert(&mut self, v: u16) -> bool {
        let w = &mut self.bits[usize::from(v >> 6)];
        let mask = 1u64 << (v & 63);
        let new = *w & mask == 0;
        *w |= mask;
        self.card += u32::from(new);
        new
    }

    /// Clears bit `v`; returns true if it was previously set.
    #[inline]
    pub fn remove(&mut self, v: u16) -> bool {
        let w = &mut self.bits[usize::from(v >> 6)];
        let mask = 1u64 << (v & 63);
        let was = *w & mask != 0;
        *w &= !mask;
        self.card -= u32::from(was);
        was
    }

    pub fn recount(&mut self) {
        self.card = u32::try_from(kernels::popcount(&self.bits)).expect("container card fits u32");
    }

    /// Debug-build check that the maintained cardinality matches an actual
    /// recount — every incremental update path funnels through here via
    /// [`Container::shrink`] and `Bitmap::push_container`.
    #[inline]
    pub fn debug_check_card(&self) {
        debug_assert_eq!(
            u64::from(self.card),
            kernels::popcount(&self.bits),
            "cached words cardinality diverged from recount"
        );
    }
}

/// One chunk of a bitmap, in whichever representation currently fits best.
#[derive(Clone)]
pub(crate) enum Container {
    /// Sorted, deduplicated values; `len() <= ARRAY_MAX` is maintained by all
    /// mutating operations.
    Array(Vec<u16>),
    /// Uncompressed 65536-bit array.
    Words(Box<Words>),
    /// Sorted, disjoint, non-adjacent runs.
    Runs(Vec<Run>),
}

impl Container {
    pub fn singleton(v: u16) -> Self {
        Container::Array(vec![v])
    }

    pub fn len(&self) -> u64 {
        match self {
            Container::Array(a) => a.len() as u64,
            Container::Words(w) => u64::from(w.card),
            Container::Runs(rs) => rs.iter().map(|r| r.cardinality()).sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        match self {
            Container::Array(a) => a.is_empty(),
            Container::Words(w) => w.card == 0,
            Container::Runs(rs) => rs.is_empty(),
        }
    }

    pub fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&v).is_ok(),
            Container::Words(w) => w.contains(v),
            Container::Runs(rs) => rs
                .binary_search_by(|r| {
                    if v < r.start {
                        std::cmp::Ordering::Greater
                    } else if v > r.end() {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Inserts `v`, converting representation if needed. Returns true when
    /// `v` was not already present.
    pub fn insert(&mut self, v: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    if a.len() >= ARRAY_MAX {
                        let mut w = words_from_array(a);
                        w.insert(v);
                        *self = Container::Words(w);
                    } else {
                        a.insert(pos, v);
                    }
                    true
                }
            },
            Container::Words(w) => w.insert(v),
            Container::Runs(rs) => {
                // Fast path for sequential loads: extend the last run.
                if let Some(last) = rs.last_mut() {
                    if v == last.end().wrapping_add(1) && last.end() != u16::MAX {
                        last.len += 1;
                        return true;
                    }
                    if v >= last.start && v <= last.end() {
                        return false;
                    }
                    if v > last.end() {
                        rs.push(Run { start: v, len: 0 });
                        return true;
                    }
                }
                // General case: fall back to words form.
                let mut w = words_from_runs(rs);
                let new = w.insert(v);
                *self = Container::Words(w);
                self.shrink();
                new
            }
        }
    }

    /// Removes `v`. Returns true when it was present.
    pub fn remove(&mut self, v: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&v) {
                Ok(pos) => {
                    a.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Words(w) => {
                let was = w.remove(v);
                if usize::try_from(w.card).expect("card fits usize") <= ARRAY_MAX {
                    *self = Container::Array(array_from_words(w));
                }
                was
            }
            Container::Runs(_) => {
                if !self.contains(v) {
                    return false;
                }
                let mut w = self.to_words();
                w.remove(v);
                *self = Container::Words(w);
                self.shrink();
                true
            }
        }
    }

    /// Position of `v` among the set values (number of set values `< v`).
    pub fn rank(&self, v: u16) -> u64 {
        match self {
            Container::Array(a) => match a.binary_search(&v) {
                Ok(p) | Err(p) => p as u64,
            },
            Container::Words(w) => {
                let word = usize::from(v >> 6);
                let mut r = kernels::popcount(&w.bits[..word]);
                let mask = (1u64 << (v & 63)) - 1;
                r += u64::from((w.bits[word] & mask).count_ones());
                r
            }
            Container::Runs(rs) => {
                let mut r = 0u64;
                for run in rs {
                    if v <= run.start {
                        break;
                    }
                    if v > run.end() {
                        r += run.cardinality();
                    } else {
                        r += u64::from(v - run.start);
                        break;
                    }
                }
                r
            }
        }
    }

    /// The `i`-th smallest set value (0-based). `i` must be `< self.len()`.
    pub fn select(&self, i: u64) -> u16 {
        match self {
            Container::Array(a) => a[usize::try_from(i).expect("index fits")],
            Container::Words(w) => {
                let mut remaining = i;
                for (wi, word) in w.bits.iter().enumerate() {
                    let ones = u64::from(word.count_ones());
                    if remaining < ones {
                        return (wi as u16) << 6 | select_in_word(*word, remaining as u32);
                    }
                    remaining -= ones;
                }
                unreachable!("select index out of range")
            }
            Container::Runs(rs) => {
                let mut remaining = i;
                for run in rs {
                    if remaining < run.cardinality() {
                        return run.start + u16::try_from(remaining).expect("run offset fits u16");
                    }
                    remaining -= run.cardinality();
                }
                unreachable!("select index out of range")
            }
        }
    }

    pub fn min(&self) -> Option<u16> {
        match self {
            Container::Array(a) => a.first().copied(),
            Container::Words(w) => w
                .bits
                .iter()
                .enumerate()
                .find(|(_, x)| **x != 0)
                .map(|(i, x)| (i as u16) << 6 | x.trailing_zeros() as u16),
            Container::Runs(rs) => rs.first().map(|r| r.start),
        }
    }

    pub fn max(&self) -> Option<u16> {
        match self {
            Container::Array(a) => a.last().copied(),
            Container::Words(w) => w
                .bits
                .iter()
                .enumerate()
                .rev()
                .find(|(_, x)| **x != 0)
                .map(|(i, x)| (i as u16) << 6 | (63 - x.leading_zeros()) as u16),
            Container::Runs(rs) => rs.last().map(|r| r.end()),
        }
    }

    /// Normalizes words form down to array form when it is small enough.
    pub fn shrink(&mut self) {
        if let Container::Words(w) = self {
            w.debug_check_card();
            if usize::try_from(w.card).expect("card fits usize") <= ARRAY_MAX {
                *self = Container::Array(array_from_words(w));
            }
        }
    }

    /// Picks the globally smallest representation (enables run form).
    pub fn optimize(&mut self) {
        let runs = self.count_runs();
        let card = self.len();
        let run_bytes = 4 + runs * 4;
        let array_bytes = 8 + card * 2;
        let words_bytes = (WORDS * 8) as u64;
        if run_bytes < array_bytes.min(words_bytes) {
            *self = Container::Runs(self.to_runs());
        } else if card <= ARRAY_MAX as u64 {
            if let Container::Words(w) = self {
                *self = Container::Array(array_from_words(w));
            } else if matches!(self, Container::Runs(_)) {
                *self = Container::Array(self.to_array());
            }
        } else if !matches!(self, Container::Words(_)) {
            *self = Container::Words(self.to_words());
        }
    }

    fn count_runs(&self) -> u64 {
        match self {
            Container::Runs(rs) => rs.len() as u64,
            Container::Array(a) => {
                let mut runs = 0u64;
                let mut prev: Option<u16> = None;
                for &v in a {
                    if prev != v.checked_sub(1) {
                        runs += 1;
                    }
                    prev = Some(v);
                }
                runs
            }
            Container::Words(w) => {
                // Count 0→1 transitions across the bit array.
                let mut runs = 0u64;
                let mut carry = 0u64; // last bit of previous word
                for &word in &w.bits {
                    let starts = word & !((word << 1) | carry);
                    runs += u64::from(starts.count_ones());
                    carry = word >> 63;
                }
                runs
            }
        }
    }

    pub fn to_array(&self) -> Vec<u16> {
        match self {
            Container::Array(a) => a.clone(),
            Container::Words(w) => array_from_words(w),
            Container::Runs(rs) => {
                let mut out = Vec::with_capacity(
                    usize::try_from(self.len()).expect("container cardinality fits usize"),
                );
                for r in rs {
                    out.extend(u32::from(r.start)..=u32::from(r.end()));
                }
                out.into_iter()
                    .map(|v| u16::try_from(v).expect("chunk value fits u16"))
                    .collect()
            }
        }
    }

    pub fn to_words(&self) -> Box<Words> {
        match self {
            Container::Array(a) => words_from_array(a),
            Container::Words(w) => w.clone(),
            Container::Runs(rs) => words_from_runs(rs),
        }
    }

    pub fn to_runs(&self) -> Vec<Run> {
        match self {
            Container::Runs(rs) => rs.clone(),
            _ => {
                let mut runs: Vec<Run> = Vec::new();
                for v in self.to_array() {
                    match runs.last_mut() {
                        Some(last) if last.end() + 1 == v => last.len += 1,
                        _ => runs.push(Run { start: v, len: 0 }),
                    }
                }
                runs
            }
        }
    }

    /// Bytes this container occupies in memory (heap payload only).
    pub fn size_in_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.len() * 2,
            Container::Words(_) => WORDS * 8 + 4,
            Container::Runs(rs) => rs.len() * 4,
        }
    }
}

#[inline]
fn select_in_word(mut word: u64, mut rank: u32) -> u16 {
    // Simple loop; containers call this rarely (select is not on hot paths).
    let mut pos = 0u16;
    loop {
        let tz = word.trailing_zeros() as u16;
        pos += tz;
        word >>= tz;
        if rank == 0 {
            return pos;
        }
        rank -= 1;
        word >>= 1;
        pos += 1;
    }
}

pub(crate) fn words_from_array(a: &[u16]) -> Box<Words> {
    let mut w = self::Words::empty();
    for &v in a {
        w.bits[usize::from(v >> 6)] |= 1 << (v & 63);
    }
    w.card = u32::try_from(a.len()).expect("array container length fits u32");
    w
}

pub(crate) fn words_from_runs(rs: &[Run]) -> Box<Words> {
    let mut w = self::Words::empty();
    for r in rs {
        set_word_range(&mut w.bits, r.start, r.end());
        w.card += u32::try_from(r.cardinality()).expect("run cardinality fits u32");
    }
    w
}

/// Sets bits `from..=to` in a 1024-word bit array.
fn set_word_range(bits: &mut [u64; WORDS], from: u16, to: u16) {
    let (fw, fb) = (usize::from(from >> 6), from & 63);
    let (tw, tb) = (usize::from(to >> 6), to & 63);
    let first_mask = !0u64 << fb;
    let last_mask = !0u64 >> (63 - tb);
    if fw == tw {
        bits[fw] |= first_mask & last_mask;
    } else {
        bits[fw] |= first_mask;
        for w in &mut bits[fw + 1..tw] {
            *w = !0;
        }
        bits[tw] |= last_mask;
    }
}

pub(crate) fn array_from_words(w: &Words) -> Vec<u16> {
    let mut out = Vec::with_capacity(usize::try_from(w.card).expect("card fits usize"));
    for (wi, &word) in w.bits.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let tz = word.trailing_zeros();
            out.push((wi as u16) << 6 | tz as u16);
            word &= word - 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Binary operations between containers.
// ---------------------------------------------------------------------------

impl Container {
    /// Intersection. Returns `None` when the result is empty.
    pub fn and(&self, other: &Container) -> Option<Container> {
        use Container::*;
        let mut out = match (self, other) {
            (Array(a), Array(b)) => Array(intersect_arrays(a, b)),
            (Array(a), Words(w)) | (Words(w), Array(a)) => {
                Array(a.iter().copied().filter(|&v| w.contains(v)).collect())
            }
            (Words(a), Words(b)) => {
                let mut w = a.clone();
                w.card = u32::try_from(kernels::and_words(&mut w.bits, &b.bits))
                    .expect("container card fits u32");
                Words(w)
            }
            (Runs(a), Runs(b)) => Runs(intersect_runs(a, b)),
            (Runs(rs), other) | (other, Runs(rs)) => {
                return Container::Runs(rs.clone()).densify().and(other);
            }
        };
        out.shrink();
        (!out.is_empty()).then_some(out)
    }

    /// Cardinality of the intersection without materializing it.
    pub fn and_len(&self, other: &Container) -> u64 {
        use Container::*;
        match (self, other) {
            (Words(a), Words(b)) => kernels::and_card(&a.bits, &b.bits),
            (Array(a), Words(w)) | (Words(w), Array(a)) => {
                a.iter().filter(|&&v| w.contains(v)).count() as u64
            }
            (Array(a), Array(b)) => intersect_arrays(a, b).len() as u64,
            (Runs(a), Runs(b)) => intersect_runs(a, b).iter().map(|r| r.cardinality()).sum(),
            (Runs(rs), other) | (other, Runs(rs)) => {
                Container::Runs(rs.clone()).densify().and_len(other)
            }
        }
    }

    /// Union. The result is never empty (both inputs are non-empty).
    pub fn or(&self, other: &Container) -> Container {
        use Container::*;
        let mut out = match (self, other) {
            (Array(a), Array(b)) => {
                if a.len() + b.len() <= ARRAY_MAX {
                    Array(union_arrays(a, b))
                } else {
                    let mut w = words_from_array(a);
                    for &v in b {
                        w.insert(v);
                    }
                    Words(w)
                }
            }
            (Array(a), Words(w)) | (Words(w), Array(a)) => {
                let mut w = w.clone();
                for &v in a {
                    w.insert(v);
                }
                Words(w)
            }
            (Words(a), Words(b)) => {
                let mut w = a.clone();
                w.card = u32::try_from(kernels::or_words(&mut w.bits, &b.bits))
                    .expect("container card fits u32");
                Words(w)
            }
            (Runs(a), Runs(b)) => Runs(union_runs(a, b)),
            (Runs(rs), other) | (other, Runs(rs)) => {
                return Container::Runs(rs.clone()).densify().or(other);
            }
        };
        out.shrink();
        out
    }

    /// Difference `self \ other`. Returns `None` when empty.
    pub fn and_not(&self, other: &Container) -> Option<Container> {
        use Container::*;
        let mut out = match (self, other) {
            (Array(a), Array(b)) => Array(difference_arrays(a, b)),
            (Array(a), Words(w)) => Array(a.iter().copied().filter(|&v| !w.contains(v)).collect()),
            (Words(a), Words(b)) => {
                let mut w = a.clone();
                w.card = u32::try_from(kernels::andnot_words(&mut w.bits, &b.bits))
                    .expect("container card fits u32");
                Words(w)
            }
            (Words(w), Array(b)) => {
                let mut w = w.clone();
                for &v in b {
                    w.remove(v);
                }
                Words(w)
            }
            (Runs(rs), other) => return Container::Runs(rs.clone()).densify().and_not(other),
            (this, Runs(rs)) => return this.and_not(&Container::Runs(rs.clone()).densify()),
        };
        out.shrink();
        (!out.is_empty()).then_some(out)
    }

    /// Symmetric difference. Returns `None` when empty.
    pub fn xor(&self, other: &Container) -> Option<Container> {
        use Container::*;
        let mut out = match (self, other) {
            (Array(a), Array(b)) => {
                let sym = symmetric_difference_arrays(a, b);
                if sym.len() <= ARRAY_MAX {
                    Array(sym)
                } else {
                    let mut w = self::Words::empty();
                    for v in sym {
                        w.insert(v);
                    }
                    Words(w)
                }
            }
            (Array(a), Words(w)) | (Words(w), Array(a)) => {
                let mut w = w.clone();
                for &v in a {
                    if !w.remove(v) {
                        w.insert(v);
                    }
                }
                Words(w)
            }
            (Words(a), Words(b)) => {
                let mut w = a.clone();
                w.card = u32::try_from(kernels::xor_words(&mut w.bits, &b.bits))
                    .expect("container card fits u32");
                Words(w)
            }
            (Runs(rs), other) | (other, Runs(rs)) => {
                return Container::Runs(rs.clone()).densify().xor(other);
            }
        };
        out.shrink();
        (!out.is_empty()).then_some(out)
    }

    /// True iff every value of `self` is in `other`.
    pub fn is_subset(&self, other: &Container) -> bool {
        self.and_len(other) == self.len()
    }

    /// Converts run form to array or words (whichever fits); other forms are
    /// returned unchanged.
    fn densify(self) -> Container {
        match self {
            Container::Runs(rs) => {
                let card: u64 = rs.iter().map(|r| r.cardinality()).sum();
                if card <= ARRAY_MAX as u64 {
                    Container::Array(Container::Runs(rs).to_array())
                } else {
                    Container::Words(words_from_runs(&rs))
                }
            }
            other => other,
        }
    }

    /// Replaces run form with array/words form without going through a clone.
    fn densify_in_place(&mut self) {
        if matches!(self, Container::Runs(_)) {
            let this = std::mem::replace(self, Container::Array(Vec::new()));
            *self = this.densify();
        }
    }
}

// ---------------------------------------------------------------------------
// In-place (destructive) kernels: `*self op= other` without allocating a
// fresh result container. These carry repeated ANDs of query evaluation.
// ---------------------------------------------------------------------------

impl Container {
    /// In-place intersection: `*self &= other`. May leave `self` empty;
    /// the caller drops empty containers.
    pub fn and_inplace(&mut self, other: &Container) {
        use Container::*;
        if let Runs(_) = self {
            match other {
                Runs(b) => {
                    let Runs(a) = &*self else { unreachable!() };
                    *self = Runs(intersect_runs(a, b));
                    self.shrink();
                    return;
                }
                _ => self.densify_in_place(),
            }
        }
        match (&mut *self, other) {
            (Array(a), Array(b)) => intersect_arrays_inplace(a, b),
            (Array(a), Words(w)) => a.retain(|&v| w.contains(v)),
            (Array(a), Runs(rs)) => {
                let mut ri = 0;
                a.retain(|&v| {
                    while ri < rs.len() && rs[ri].end() < v {
                        ri += 1;
                    }
                    ri < rs.len() && rs[ri].start <= v
                });
            }
            (Words(w), Array(b)) => {
                // The result has at most `b.len() <= ARRAY_MAX` values, so it
                // lands in array form anyway; build it directly from `b`.
                let filtered: Vec<u16> = b.iter().copied().filter(|&v| w.contains(v)).collect();
                *self = Array(filtered);
            }
            (Words(a), Words(b)) => {
                a.card = u32::try_from(kernels::and_words(&mut a.bits, &b.bits))
                    .expect("container card fits u32");
            }
            (Words(w), Runs(rs)) => {
                let mut masks = RunMasks::new(rs);
                let mut card = 0u32;
                for i in 0..WORDS {
                    let nw = w.bits[i] & masks.mask(i);
                    w.bits[i] = nw;
                    card += nw.count_ones();
                }
                w.card = card;
            }
            (Runs(_), _) => unreachable!("runs densified above"),
        }
        self.shrink();
    }

    /// In-place difference: `*self &= !other`. May leave `self` empty.
    pub fn and_not_inplace(&mut self, other: &Container) {
        use Container::*;
        self.densify_in_place();
        match (&mut *self, other) {
            (Array(a), Array(b)) => difference_arrays_inplace(a, b),
            (Array(a), Words(w)) => a.retain(|&v| !w.contains(v)),
            (Array(a), Runs(rs)) => {
                let mut ri = 0;
                a.retain(|&v| {
                    while ri < rs.len() && rs[ri].end() < v {
                        ri += 1;
                    }
                    !(ri < rs.len() && rs[ri].start <= v)
                });
            }
            (Words(w), Array(b)) => {
                for &v in b {
                    w.remove(v);
                }
            }
            (Words(a), Words(b)) => {
                a.card = u32::try_from(kernels::andnot_words(&mut a.bits, &b.bits))
                    .expect("container card fits u32");
            }
            (Words(w), Runs(rs)) => {
                let mut masks = RunMasks::new(rs);
                let mut card = 0u32;
                for i in 0..WORDS {
                    let nw = w.bits[i] & !masks.mask(i);
                    w.bits[i] = nw;
                    card += nw.count_ones();
                }
                w.card = card;
            }
            (Runs(_), _) => unreachable!("runs densified above"),
        }
        self.shrink();
    }

    /// In-place union: `*self |= other`. Never leaves `self` empty.
    pub fn or_inplace(&mut self, other: &Container) {
        use Container::*;
        match (&mut *self, other) {
            (Array(a), Array(b)) => {
                if a.len() + b.len() <= ARRAY_MAX {
                    *a = union_arrays(a, b);
                } else {
                    let mut w = words_from_array(a);
                    for &v in b {
                        w.insert(v);
                    }
                    *self = Words(w);
                    self.shrink();
                }
            }
            (Array(a), Words(wb)) => {
                let mut w = words_from_array(a);
                w.card = u32::try_from(kernels::or_words(&mut w.bits, &wb.bits))
                    .expect("container card fits u32");
                *self = Words(w);
            }
            (Words(w), Array(b)) => {
                for &v in b {
                    w.insert(v);
                }
            }
            (Words(a), Words(b)) => {
                a.card = u32::try_from(kernels::or_words(&mut a.bits, &b.bits))
                    .expect("container card fits u32");
            }
            (Words(w), Runs(rs)) => {
                let mut masks = RunMasks::new(rs);
                for i in 0..WORDS {
                    let m = masks.mask(i);
                    w.card += (m & !w.bits[i]).count_ones();
                    w.bits[i] |= m;
                }
            }
            (Runs(a), Runs(b)) => *a = union_runs(a, b),
            // Rare mixed run/array unions: fall back to the allocating path.
            (Array(_) | Runs(_), _) => *self = self.or(other),
        }
    }
}

/// Streams the 64-bit masks of a run list, one word at a time. Each call to
/// `mask(i)` must use a non-decreasing word index.
struct RunMasks<'a> {
    rs: &'a [Run],
    ri: usize,
}

impl<'a> RunMasks<'a> {
    fn new(rs: &'a [Run]) -> Self {
        RunMasks { rs, ri: 0 }
    }

    /// Mask of the runs' bits falling in word `wi` (values `wi*64..wi*64+63`).
    #[inline]
    fn mask(&mut self, wi: usize) -> u64 {
        let lo = (wi as u16) << 6;
        let hi = lo | 63;
        while self.ri < self.rs.len() && self.rs[self.ri].end() < lo {
            self.ri += 1;
        }
        let mut mask = 0u64;
        let mut j = self.ri;
        while j < self.rs.len() && self.rs[j].start <= hi {
            let s = u32::from(self.rs[j].start.max(lo) - lo);
            let e = u32::from(self.rs[j].end().min(hi) - lo);
            mask |= (!0u64 << s) & (!0u64 >> (63 - e));
            if self.rs[j].end() > hi {
                break;
            }
            j += 1;
        }
        mask
    }
}

/// Size ratio beyond which array×array intersection switches from a linear
/// merge to galloping (exponential) search in the larger operand.
const GALLOP_RATIO: usize = 64;

/// Galloping search in sorted `s` for `v`: returns the index of the first
/// element `>= v` and whether that element equals `v`. O(log d) where `d`
/// is the distance from the front, so repeated searches with ascending `v`
/// over a suffix stay cheap. The bounded window left by the exponential
/// phase is resolved by the dispatched probe kernel (bisection down to a
/// short window, then a 16-lane scan on the simd path).
#[inline]
fn gallop(s: &[u16], v: u16) -> (usize, bool) {
    if s.is_empty() {
        return (0, false);
    }
    let mut hi = 1usize;
    while hi < s.len() && s[hi] < v {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let hi = (hi + 1).min(s.len());
    let p = lo + kernels::find_first_geq_u16(&s[lo..hi], v);
    (p, p < s.len() && s[p] == v)
}

fn intersect_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    // Lopsided inputs: gallop through the big side instead of scanning it.
    if a.len() > b.len() * GALLOP_RATIO {
        return gallop_intersect(b, a);
    }
    if b.len() > a.len() * GALLOP_RATIO {
        return gallop_intersect(a, b);
    }
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Intersection where `small` is much shorter than `big`: for each value of
/// `small`, gallop in the still-unsearched suffix of `big`.
fn gallop_intersect(small: &[u16], big: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &v in small {
        if lo >= big.len() {
            break;
        }
        let (p, found) = gallop(&big[lo..], v);
        lo += p;
        if found {
            out.push(v);
            lo += 1;
        }
    }
    out
}

/// In-place `*a &= b` with a write cursor; gallops when sizes are lopsided.
fn intersect_arrays_inplace(a: &mut Vec<u16>, b: &[u16]) {
    if a.is_empty() {
        return;
    }
    if b.is_empty() {
        a.clear();
        return;
    }
    if a.len() > b.len() * GALLOP_RATIO || b.len() > a.len() * GALLOP_RATIO {
        // `a` big: probe `a` for each of `b`'s values, keeping hits in place.
        // `a` small: probe `b` for each of `a`'s values. Same skeleton either
        // way, with the roles of probe sequence and haystack swapped.
        let a_is_big = a.len() > b.len();
        let mut w = 0usize;
        let mut lo = 0usize;
        for i in 0.. {
            let (probe, hay_len) = if a_is_big {
                let Some(&v) = b.get(i) else { break };
                (v, a.len())
            } else {
                if i >= a.len() {
                    break;
                }
                (a[i], b.len())
            };
            if lo >= hay_len {
                break;
            }
            let (p, found) = if a_is_big {
                gallop(&a[lo..], probe)
            } else {
                gallop(&b[lo..], probe)
            };
            lo += p;
            if found {
                a[w] = probe;
                w += 1;
                lo += 1;
            }
        }
        a.truncate(w);
        return;
    }
    let (mut i, mut j, mut w) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                a[w] = a[i];
                w += 1;
                i += 1;
                j += 1;
            }
        }
    }
    a.truncate(w);
}

/// In-place `*a \= b` with a write cursor.
fn difference_arrays_inplace(a: &mut Vec<u16>, b: &[u16]) {
    let mut j = 0;
    let mut w = 0;
    for i in 0..a.len() {
        let v = a[i];
        while j < b.len() && b[j] < v {
            j += 1;
        }
        if j == b.len() || b[j] != v {
            a[w] = v;
            w += 1;
        }
    }
    a.truncate(w);
}

fn union_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::with_capacity(a.len() + b.len());
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn difference_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut j = 0;
    let mut out = Vec::with_capacity(a.len());
    for &v in a {
        while j < b.len() && b[j] < v {
            j += 1;
        }
        if j == b.len() || b[j] != v {
            out.push(v);
        }
    }
    out
}

fn symmetric_difference_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::with_capacity(a.len() + b.len());
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn intersect_runs(a: &[Run], b: &[Run]) -> Vec<Run> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let lo = a[i].start.max(b[j].start);
        let hi = a[i].end().min(b[j].end());
        if lo <= hi {
            out.push(Run {
                start: lo,
                len: hi - lo,
            });
        }
        if a[i].end() < b[j].end() {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

fn union_runs(a: &[Run], b: &[Run]) -> Vec<Run> {
    let (mut i, mut j) = (0, 0);
    let mut out: Vec<Run> = Vec::new();
    let push = |r: Run, out: &mut Vec<Run>| match out.last_mut() {
        // Merge overlapping or adjacent runs.
        Some(last) if u32::from(r.start) <= u32::from(last.end()) + 1 => {
            if r.end() > last.end() {
                last.len = r.end() - last.start;
            }
        }
        _ => out.push(r),
    };
    while i < a.len() || j < b.len() {
        let take_a = j == b.len() || (i < a.len() && a[i].start <= b[j].start);
        if take_a {
            push(a[i], &mut out);
            i += 1;
        } else {
            push(b[j], &mut out);
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(vals: &[u16]) -> Container {
        Container::Array(vals.to_vec())
    }

    #[test]
    fn insert_promotes_array_to_words() {
        let mut c = Container::Array((0..ARRAY_MAX as u16).map(|v| v * 2).collect());
        assert!(matches!(c, Container::Array(_)));
        assert!(c.insert(1));
        assert!(matches!(c, Container::Words(_)));
        assert_eq!(c.len(), ARRAY_MAX as u64 + 1);
        assert!(c.contains(1));
        assert!(c.contains(0));
        assert!(!c.contains(3));
    }

    #[test]
    fn remove_demotes_words_to_array() {
        let mut c = Container::Array((0..=(ARRAY_MAX as u16)).collect());
        c = Container::Words(c.to_words());
        assert!(c.remove(7));
        assert!(matches!(c, Container::Array(_)));
        assert!(!c.contains(7));
        assert_eq!(c.len(), ARRAY_MAX as u64);
    }

    #[test]
    fn run_sequential_insert_extends_last_run() {
        let mut c = Container::Runs(vec![Run { start: 0, len: 9 }]);
        assert!(c.insert(10));
        match &c {
            Container::Runs(rs) => assert_eq!(rs, &vec![Run { start: 0, len: 10 }]),
            _ => panic!("expected runs"),
        }
        assert!(!c.insert(5));
    }

    #[test]
    fn run_non_sequential_insert_converts() {
        let mut c = Container::Runs(vec![Run { start: 10, len: 9 }]);
        assert!(c.insert(3));
        assert!(c.contains(3));
        assert!(c.contains(15));
        assert_eq!(c.len(), 11);
    }

    #[test]
    fn rank_and_select_agree_across_forms() {
        let vals: Vec<u16> = (0..300).map(|v| v * 7).collect();
        let forms = [
            array(&vals),
            Container::Words(words_from_array(&vals)),
            Container::Runs(array(&vals).to_runs()),
        ];
        for c in &forms {
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(c.rank(v), i as u64);
                assert_eq!(c.select(i as u64), v);
            }
            assert_eq!(c.rank(vals.last().unwrap() + 1), vals.len() as u64);
        }
    }

    #[test]
    fn and_across_all_form_pairs() {
        let a_vals: Vec<u16> = (0..2000).map(|v| v * 3).collect();
        let b_vals: Vec<u16> = (0..3000).map(|v| v * 2).collect();
        let expect: Vec<u16> = a_vals.iter().copied().filter(|v| v % 6 == 0).collect();
        let a_forms = [
            array(&a_vals),
            Container::Words(words_from_array(&a_vals)),
            Container::Runs(array(&a_vals).to_runs()),
        ];
        let b_forms = [
            array(&b_vals),
            Container::Words(words_from_array(&b_vals)),
            Container::Runs(array(&b_vals).to_runs()),
        ];
        for a in &a_forms {
            for b in &b_forms {
                let r = a.and(b).expect("non-empty");
                assert_eq!(r.to_array(), expect);
                assert_eq!(a.and_len(b), expect.len() as u64);
            }
        }
    }

    #[test]
    fn or_merges_and_coalesces_runs() {
        let a = Container::Runs(vec![Run { start: 0, len: 4 }, Run { start: 10, len: 0 }]);
        let b = Container::Runs(vec![Run { start: 5, len: 4 }]);
        let r = a.or(&b);
        assert_eq!(r.to_runs(), vec![Run { start: 0, len: 10 }]);
    }

    #[test]
    fn and_not_and_xor_match_set_semantics() {
        use std::collections::BTreeSet;
        let a_vals: Vec<u16> = (0..500).map(|v| v * 5).collect();
        let b_vals: Vec<u16> = (0..500).map(|v| v * 3).collect();
        let sa: BTreeSet<u16> = a_vals.iter().copied().collect();
        let sb: BTreeSet<u16> = b_vals.iter().copied().collect();
        let a = array(&a_vals);
        let b = array(&b_vals);
        let diff: Vec<u16> = sa.difference(&sb).copied().collect();
        let sym: Vec<u16> = sa.symmetric_difference(&sb).copied().collect();
        assert_eq!(a.and_not(&b).unwrap().to_array(), diff);
        assert_eq!(a.xor(&b).unwrap().to_array(), sym);
    }

    #[test]
    fn optimize_picks_runs_for_contiguous_data() {
        let mut c = array(&(100..5000).collect::<Vec<u16>>());
        c = Container::Words(c.to_words());
        c.optimize();
        assert!(matches!(c, Container::Runs(_)));
        assert_eq!(c.len(), 4900);
        assert!(c.contains(100));
        assert!(c.contains(4999));
        assert!(!c.contains(99));
    }

    #[test]
    fn optimize_prefers_array_for_scattered_data() {
        let vals: Vec<u16> = (0..100).map(|v| v * 601).collect();
        let mut c = Container::Words(words_from_array(&vals));
        c.optimize();
        assert!(matches!(c, Container::Array(_)));
    }

    #[test]
    fn min_max_across_forms() {
        let vals: Vec<u16> = vec![3, 77, 1024, 40000];
        for c in [
            array(&vals),
            Container::Words(words_from_array(&vals)),
            Container::Runs(array(&vals).to_runs()),
        ] {
            assert_eq!(c.min(), Some(3));
            assert_eq!(c.max(), Some(40000));
        }
    }

    #[test]
    fn full_chunk_run_round_trips() {
        let c = Container::Runs(vec![Run {
            start: 0,
            len: u16::MAX,
        }]);
        assert_eq!(c.len(), 65536);
        let w = c.to_words();
        assert_eq!(w.card, 65536);
        assert!(c.contains(0));
        assert!(c.contains(u16::MAX));
    }

    #[test]
    fn subset_detection() {
        let small = array(&[2, 4, 6]);
        let big = array(&(0..100).collect::<Vec<u16>>());
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }
}
