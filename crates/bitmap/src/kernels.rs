//! Runtime-dispatched compute kernels: the data-parallel layer under every
//! hot loop of the bitmap and column-store crates.
//!
//! Every kernel exists in two implementations that produce **bit-identical
//! results**:
//!
//! * **scalar** — portable Rust, one element at a time, compiled for the
//!   baseline target. This is the reference semantics.
//! * **simd** — explicit AVX2 `std::arch` intrinsics behind
//!   `#[target_feature]`-gated `unsafe fn`s, selected only after
//!   `is_x86_feature_detected!("avx2")` confirms the hardware supports
//!   them. On non-x86 targets (or pre-AVX2 CPUs) the simd path degrades to
//!   the scalar implementation, so forcing `simd` is always safe.
//!
//! # Dispatch
//!
//! The active path is resolved by [`active`] from three sources, highest
//! priority first:
//!
//! 1. a process-wide programmatic override installed with [`force`]
//!    (used by the differential oracle and the bench harness),
//! 2. the `GRAPHBI_KERNELS` environment variable (`scalar`, `simd` or
//!    `auto`, read once per process),
//! 3. CPU feature detection (`auto`): AVX2 present → simd, else scalar.
//!
//! Each public kernel also has a `*_path` variant taking an explicit
//! [`KernelPath`], so tests can compare both implementations side by side
//! without mutating process-global state from parallel test threads.
//!
//! # Float-order contract
//!
//! [`fold_f64`] defines the one floating-point summation order used by
//! every aggregation that goes through it, on **both** paths: four
//! accumulator lanes, lane `j` folding elements `j, j+4, j+8, …` in
//! sequence, combined at the end as `(l0 + l1) + (l2 + l3)`. Min/max lanes
//! follow the AVX2 `vminpd`/`vmaxpd` rule `if acc < v { acc } else { v }`
//! (respectively `>`), which also fixes NaN propagation: a NaN input
//! poisons its lane from the point it appears. The scalar implementation
//! applies the identical per-lane recurrence, so mem ≡ disk ≡ sharded
//! answers stay bit-identical whichever path served them.
//!
//! One caveat bounds that promise: when *arithmetic itself* produces a NaN
//! (`∞ + −∞` in a sum lane, or a NaN input flowing through `+`), Rust
//! leaves the resulting NaN's payload and sign bits unspecified — LLVM may
//! canonicalize them differently per path and per optimization level. So
//! sums are bit-identical whenever finite (and same-NaN-ness is always
//! identical), while min/max — which only *select* input values, never
//! create new ones — are bit-exact unconditionally.
//!
//! # Safety argument
//!
//! All `unsafe` here is of one shape: calling a `#[target_feature(enable =
//! "avx2")]` function. Such a call is sound iff the CPU supports AVX2,
//! and every call site is dominated by a [`simd_available`] check that
//! performs the runtime detection. The intrinsic bodies themselves use
//! unaligned loads/stores (`loadu`/`storeu`) over ranges bounds-checked in
//! safe code before the call, and gathers are only issued for byte offsets
//! proven in-bounds by the caller loop, so no further invariants are
//! required.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable one-element-at-a-time Rust (the reference semantics).
    Scalar,
    /// AVX2 intrinsics where the hardware allows; falls back to scalar
    /// per-call when it does not.
    Simd,
}

impl KernelPath {
    /// Stable lowercase name (`"scalar"` / `"simd"`), as used by the
    /// `GRAPHBI_KERNELS` environment variable and observability surfaces.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Simd => "simd",
        }
    }
}

/// Programmatic override: 0 = none, 1 = scalar, 2 = simd.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// `GRAPHBI_KERNELS` parse result, read once per process. `None` = auto.
static ENV_CHOICE: OnceLock<Option<KernelPath>> = OnceLock::new();

fn env_choice() -> Option<KernelPath> {
    *ENV_CHOICE.get_or_init(|| match std::env::var("GRAPHBI_KERNELS") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Some(KernelPath::Scalar),
        Ok(v) if v.eq_ignore_ascii_case("simd") => Some(KernelPath::Simd),
        // "auto", unset, or anything unrecognized: hardware decides.
        _ => None,
    })
}

/// True when the running CPU supports the AVX2 kernels.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Installs (or with `None` removes) a process-wide path override, taking
/// precedence over `GRAPHBI_KERNELS`. Intended for single-threaded
/// harnesses — the bench binary and the forced-path oracle test; parallel
/// test code should use the `*_path` kernel variants instead.
pub fn force(path: Option<KernelPath>) {
    let v = match path {
        None => 0,
        Some(KernelPath::Scalar) => 1,
        Some(KernelPath::Simd) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The path the dispatched kernels will run right now. A requested `simd`
/// without AVX2 hardware resolves to [`KernelPath::Scalar`]: the answer is
/// identical either way, so "forced simd" stays meaningful in CI on any
/// machine.
pub fn active() -> KernelPath {
    let want = match FORCED.load(Ordering::Relaxed) {
        1 => Some(KernelPath::Scalar),
        2 => Some(KernelPath::Simd),
        _ => env_choice(),
    };
    match want {
        Some(KernelPath::Scalar) => KernelPath::Scalar,
        Some(KernelPath::Simd) | None => {
            if simd_available() {
                KernelPath::Simd
            } else {
                KernelPath::Scalar
            }
        }
    }
}

/// Name of the currently active path (`"scalar"` / `"simd"`).
pub fn path_name() -> &'static str {
    active().name()
}

/// Comma-separated list of the vector features detected on this CPU
/// (empty on non-x86). Recorded in bench output so historical rows are
/// comparable across machines.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats: Vec<&str> = Vec::new();
        if std::arch::is_x86_feature_detected!("sse2") {
            feats.push("sse2");
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            feats.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("popcnt") {
            feats.push("popcnt");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            feats.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("bmi2") {
            feats.push("bmi2");
        }
        feats.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::new()
    }
}

// ---------------------------------------------------------------------------
// Word kernels: bitwise ops over u64 slices with fused popcount.
// ---------------------------------------------------------------------------

macro_rules! word_kernel {
    ($(#[$doc:meta])* $name:ident, $name_path:ident, $scalar:ident, $avx2:ident) => {
        $(#[$doc])*
        ///
        /// Returns the number of set bits in the result. `a` and `b` must
        /// have equal length.
        #[inline]
        pub fn $name(a: &mut [u64], b: &[u64]) -> u64 {
            $name_path(active(), a, b)
        }

        /// Explicit-path variant of the same kernel (see [`KernelPath`]).
        #[inline]
        pub fn $name_path(path: KernelPath, a: &mut [u64], b: &[u64]) -> u64 {
            assert_eq!(a.len(), b.len(), "word kernel operand length mismatch");
            match path {
                KernelPath::Scalar => scalar::$scalar(a, b),
                KernelPath::Simd => {
                    #[cfg(target_arch = "x86_64")]
                    if simd_available() {
                        // SAFETY: AVX2 verified by `simd_available`.
                        return unsafe { x86::$avx2(a, b) };
                    }
                    scalar::$scalar(a, b)
                }
            }
        }
    };
}

word_kernel!(
    /// In-place intersection: `a[i] &= b[i]`.
    and_words, and_words_path, and_words, and_words_avx2
);
word_kernel!(
    /// In-place union: `a[i] |= b[i]`.
    or_words, or_words_path, or_words, or_words_avx2
);
word_kernel!(
    /// In-place difference: `a[i] &= !b[i]`.
    andnot_words, andnot_words_path, andnot_words, andnot_words_avx2
);
word_kernel!(
    /// In-place symmetric difference: `a[i] ^= b[i]`.
    xor_words, xor_words_path, xor_words, xor_words_avx2
);

/// Number of set bits in `a[i] & b[i]` without materializing the result.
/// `a` and `b` must have equal length.
#[inline]
pub fn and_card(a: &[u64], b: &[u64]) -> u64 {
    and_card_path(active(), a, b)
}

/// Explicit-path variant of [`and_card`].
#[inline]
pub fn and_card_path(path: KernelPath, a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "word kernel operand length mismatch");
    match path {
        KernelPath::Scalar => scalar::and_card(a, b),
        KernelPath::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd_available() {
                // SAFETY: AVX2 verified by `simd_available`.
                return unsafe { x86::and_card_avx2(a, b) };
            }
            scalar::and_card(a, b)
        }
    }
}

/// Total number of set bits across `words` — the batched `count_ones`
/// behind `recount`, `rank` and cardinality maintenance.
#[inline]
pub fn popcount(words: &[u64]) -> u64 {
    popcount_path(active(), words)
}

/// Explicit-path variant of [`popcount`].
#[inline]
pub fn popcount_path(path: KernelPath, words: &[u64]) -> u64 {
    match path {
        KernelPath::Scalar => scalar::popcount(words),
        KernelPath::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd_available() {
                // SAFETY: AVX2 verified by `simd_available`.
                return unsafe { x86::popcount_avx2(words) };
            }
            scalar::popcount(words)
        }
    }
}

/// Index of the first element of sorted `s` that is `>= v` (`s.len()` when
/// none is). The galloping-intersection probe: binary search narrows to a
/// small window, then the window is scanned 16 lanes at a time.
#[inline]
pub fn find_first_geq_u16(s: &[u16], v: u16) -> usize {
    find_first_geq_u16_path(active(), s, v)
}

/// Window below which the probe switches from bisection to a linear
/// (possibly vectorized) scan.
const PROBE_SCAN: usize = 64;

/// Explicit-path variant of [`find_first_geq_u16`].
#[inline]
pub fn find_first_geq_u16_path(path: KernelPath, s: &[u16], v: u16) -> usize {
    let (mut lo, mut hi) = (0usize, s.len());
    while hi - lo > PROBE_SCAN {
        let mid = lo + (hi - lo) / 2;
        if s[mid] < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let w = &s[lo..hi];
    let p = match path {
        KernelPath::Scalar => scalar::scan_geq_u16(w, v),
        KernelPath::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd_available() {
                // SAFETY: AVX2 verified by `simd_available`.
                lo += unsafe { x86::scan_geq_u16_avx2(w, v) };
                return lo;
            }
            scalar::scan_geq_u16(w, v)
        }
    };
    lo + p
}

// ---------------------------------------------------------------------------
// Float fold: the one aggregation order (see module docs).
// ---------------------------------------------------------------------------

/// Four-lane SUM/MIN/MAX/COUNT accumulator implementing the float-order
/// contract described in the module docs. Both kernel paths produce
/// bit-identical lane states for the same input sequence.
#[derive(Clone, Copy, Debug)]
pub struct FoldAgg {
    count: u64,
    sums: [f64; 4],
    mins: [f64; 4],
    maxs: [f64; 4],
}

impl Default for FoldAgg {
    fn default() -> Self {
        Self::new()
    }
}

impl FoldAgg {
    /// An empty accumulator: sums 0, mins +∞, maxs −∞.
    pub fn new() -> Self {
        FoldAgg {
            count: 0,
            sums: [0.0; 4],
            mins: [f64::INFINITY; 4],
            maxs: [f64::NEG_INFINITY; 4],
        }
    }

    /// Folds one value into lane `count % 4` — the scalar form of the
    /// contract. `min` uses `if acc < v { acc } else { v }` and `max` the
    /// `>` mirror, matching AVX2 `vminpd`/`vmaxpd` NaN semantics exactly.
    #[inline]
    pub fn push(&mut self, v: f64) {
        let l = (self.count & 3) as usize;
        self.sums[l] += v;
        self.mins[l] = if self.mins[l] < v { self.mins[l] } else { v };
        self.maxs[l] = if self.maxs[l] > v { self.maxs[l] } else { v };
        self.count += 1;
    }

    /// Number of values folded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lane-combined sum: `(l0 + l1) + (l2 + l3)`.
    pub fn sum(&self) -> f64 {
        (self.sums[0] + self.sums[1]) + (self.sums[2] + self.sums[3])
    }

    /// Lane-combined minimum (+∞ when empty), combined pairwise with the
    /// same `<` rule the lanes use.
    pub fn min(&self) -> f64 {
        let m01 = if self.mins[0] < self.mins[1] {
            self.mins[0]
        } else {
            self.mins[1]
        };
        let m23 = if self.mins[2] < self.mins[3] {
            self.mins[2]
        } else {
            self.mins[3]
        };
        if m01 < m23 {
            m01
        } else {
            m23
        }
    }

    /// Lane-combined maximum (−∞ when empty).
    pub fn max(&self) -> f64 {
        let m01 = if self.maxs[0] > self.maxs[1] {
            self.maxs[0]
        } else {
            self.maxs[1]
        };
        let m23 = if self.maxs[2] > self.maxs[3] {
            self.maxs[2]
        } else {
            self.maxs[3]
        };
        if m01 > m23 {
            m01
        } else {
            m23
        }
    }

    /// Raw lane states `(sums, mins, maxs)`, exposed so tests can assert
    /// bit-identity lane by lane, not just on the combined results.
    pub fn lanes(&self) -> ([f64; 4], [f64; 4], [f64; 4]) {
        (self.sums, self.mins, self.maxs)
    }
}

/// Folds a contiguous value slice into a [`FoldAgg`] — the vectorizable
/// core of `SparseColumn::fold_aggregate`.
#[inline]
pub fn fold_f64(values: &[f64]) -> FoldAgg {
    fold_f64_path(active(), values)
}

/// Explicit-path variant of [`fold_f64`].
pub fn fold_f64_path(path: KernelPath, values: &[f64]) -> FoldAgg {
    match path {
        KernelPath::Scalar => scalar::fold_f64(values),
        KernelPath::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd_available() {
                // SAFETY: AVX2 verified by `simd_available`.
                return unsafe { x86::fold_f64_avx2(values) };
            }
            scalar::fold_f64(values)
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-unpacking: the frame-of-reference / dictionary-index block decoder.
// ---------------------------------------------------------------------------

/// Unpacks `out.len()` fixed-width integers from the LSB-first bit stream
/// `bytes`, the first starting at bit offset `bit_start`. Bits past the
/// end of `bytes` read as zero, matching the `BitWriter`/`PackedInts`
/// convention. `width` must be `<= 64`.
#[inline]
pub fn unpack_bits(bytes: &[u8], bit_start: usize, width: u32, out: &mut [u64]) {
    unpack_bits_path(active(), bytes, bit_start, width, out)
}

/// Widest packed integer the AVX2 unpacker handles: an unaligned 8-byte
/// window shifted by up to 7 bits holds at most 57 whole values' bits, so
/// width 56 is the safe bound. Wider packs (none of the on-disk codecs
/// produce them — FoR deltas are ≤16 bits, dictionary indices ≤32) fall
/// back to scalar.
const UNPACK_SIMD_MAX_WIDTH: u32 = 56;

/// Explicit-path variant of [`unpack_bits`].
pub fn unpack_bits_path(
    path: KernelPath,
    bytes: &[u8],
    bit_start: usize,
    width: u32,
    out: &mut [u64],
) {
    assert!(width <= 64, "unpack width {width} > 64");
    if width == 0 {
        out.fill(0);
        return;
    }
    match path {
        KernelPath::Scalar => scalar::unpack_bits(bytes, bit_start, width, out),
        KernelPath::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd_available() && width <= UNPACK_SIMD_MAX_WIDTH {
                // SAFETY: AVX2 verified by `simd_available`.
                return unsafe { x86::unpack_bits_avx2(bytes, bit_start, width, out) };
            }
            scalar::unpack_bits(bytes, bit_start, width, out)
        }
    }
}

/// Dictionary gather: `out[i] = dict[idx[i]]`. Returns `false` (leaving
/// `out` unspecified) when any index is out of range, so callers can keep
/// their corrupt-input error paths. Both paths read the same values; the
/// AVX2 variant uses hardware gathers after a scalar bounds check.
#[inline]
pub fn gather_f64(dict: &[f64], idx: &[u64], out: &mut [f64]) -> bool {
    gather_f64_path(active(), dict, idx, out)
}

/// Explicit-path variant of [`gather_f64`].
pub fn gather_f64_path(path: KernelPath, dict: &[f64], idx: &[u64], out: &mut [f64]) -> bool {
    assert_eq!(idx.len(), out.len(), "gather shape mismatch");
    match path {
        KernelPath::Scalar => scalar::gather_f64(dict, idx, out),
        KernelPath::Simd => {
            #[cfg(target_arch = "x86_64")]
            if simd_available() {
                // SAFETY: AVX2 verified by `simd_available`.
                return unsafe { x86::gather_f64_avx2(dict, idx, out) };
            }
            scalar::gather_f64(dict, idx, out)
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar implementations: the reference semantics.
// ---------------------------------------------------------------------------

mod scalar {
    use super::FoldAgg;

    macro_rules! scalar_word_op {
        ($name:ident, $op:expr) => {
            pub(super) fn $name(a: &mut [u64], b: &[u64]) -> u64 {
                let op = $op;
                let mut card = 0u64;
                for (x, &y) in a.iter_mut().zip(b) {
                    let w = op(*x, y);
                    *x = w;
                    card += u64::from(w.count_ones());
                }
                card
            }
        };
    }

    scalar_word_op!(and_words, |x: u64, y: u64| x & y);
    scalar_word_op!(or_words, |x: u64, y: u64| x | y);
    scalar_word_op!(andnot_words, |x: u64, y: u64| x & !y);
    scalar_word_op!(xor_words, |x: u64, y: u64| x ^ y);

    pub(super) fn and_card(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| u64::from((x & y).count_ones()))
            .sum()
    }

    pub(super) fn popcount(words: &[u64]) -> u64 {
        words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    pub(super) fn scan_geq_u16(s: &[u16], v: u16) -> usize {
        s.partition_point(|&x| x < v)
    }

    pub(super) fn fold_f64(values: &[f64]) -> FoldAgg {
        let mut agg = FoldAgg::new();
        for &v in values {
            agg.push(v);
        }
        agg
    }

    pub(super) fn unpack_bits(bytes: &[u8], bit_start: usize, width: u32, out: &mut [u64]) {
        let m = super::width_mask(width);
        let mut pos = bit_start;
        for slot in out.iter_mut() {
            let byte = pos / 8;
            let off = (pos % 8) as u32;
            // Fast path: a whole unaligned 8-byte window is available and
            // the shifted value fits in it.
            if byte + 8 <= bytes.len() && off + width <= 64 {
                let w =
                    u64::from_le_bytes(bytes[byte..byte + 8].try_into().expect("8-byte window"));
                *slot = (w >> off) & m;
            } else {
                *slot = super::read_bits_portable(bytes, pos, width) & m;
            }
            pos += width as usize;
        }
    }

    pub(super) fn gather_f64(dict: &[f64], idx: &[u64], out: &mut [f64]) -> bool {
        for (slot, &i) in out.iter_mut().zip(idx) {
            let Some(&v) = dict.get(usize::try_from(i).unwrap_or(usize::MAX)) else {
                return false;
            };
            *slot = v;
        }
        true
    }
}

/// `width`-bit mask, `width <= 64`.
#[inline]
fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Byte-at-a-time bit read used near buffer boundaries; bits past the end
/// of `bytes` read as zero (the `BitWriter` zero-pads its last byte).
fn read_bits_portable(bytes: &[u8], pos: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let first = pos / 8;
    let bit = pos % 8;
    let nbytes = (bit + width as usize).div_ceil(8);
    let mut acc: u128 = 0;
    for i in 0..nbytes {
        acc |= u128::from(bytes.get(first + i).copied().unwrap_or(0)) << (8 * i);
    }
    ((acc >> bit) as u64) & width_mask(width)
}

// ---------------------------------------------------------------------------
// AVX2 implementations.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::FoldAgg;
    use std::arch::x86_64::*;

    /// Per-lane popcount of a 256-bit vector, as 4 × u64 partial sums
    /// (Mula's nibble-LUT algorithm: two `pshufb` lookups + `psadbw`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt256(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Horizontal sum of 4 × u64 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes.iter().sum()
    }

    macro_rules! avx2_word_op {
        ($name:ident, $vop:ident, $sop:expr) => {
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(a: &mut [u64], b: &[u64]) -> u64 {
                let n = a.len();
                let mut acc = _mm256_setzero_si256();
                let mut i = 0usize;
                while i + 4 <= n {
                    let av = _mm256_loadu_si256(a.as_ptr().add(i).cast());
                    let bv = _mm256_loadu_si256(b.as_ptr().add(i).cast());
                    let r = $vop(av, bv);
                    _mm256_storeu_si256(a.as_mut_ptr().add(i).cast(), r);
                    acc = _mm256_add_epi64(acc, popcnt256(r));
                    i += 4;
                }
                let mut card = hsum_epi64(acc);
                let sop = $sop;
                while i < n {
                    let w = sop(a[i], b[i]);
                    a[i] = w;
                    card += u64::from(w.count_ones());
                    i += 1;
                }
                card
            }
        };
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn vandnot(a: __m256i, b: __m256i) -> __m256i {
        // `_mm256_andnot_si256(x, y)` computes `!x & y`; we want `a & !b`.
        _mm256_andnot_si256(b, a)
    }

    avx2_word_op!(and_words_avx2, _mm256_and_si256, |x: u64, y: u64| x & y);
    avx2_word_op!(or_words_avx2, _mm256_or_si256, |x: u64, y: u64| x | y);
    avx2_word_op!(andnot_words_avx2, vandnot, |x: u64, y: u64| x & !y);
    avx2_word_op!(xor_words_avx2, _mm256_xor_si256, |x: u64, y: u64| x ^ y);

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_card_avx2(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let av = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let bv = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            acc = _mm256_add_epi64(acc, popcnt256(_mm256_and_si256(av, bv)));
            i += 4;
        }
        let mut card = hsum_epi64(acc);
        while i < n {
            card += u64::from((a[i] & b[i]).count_ones());
            i += 1;
        }
        card
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn popcount_avx2(words: &[u64]) -> u64 {
        let n = words.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(words.as_ptr().add(i).cast());
            acc = _mm256_add_epi64(acc, popcnt256(v));
            i += 4;
        }
        let mut card = hsum_epi64(acc);
        while i < n {
            card += u64::from(words[i].count_ones());
            i += 1;
        }
        card
    }

    /// Linear scan for the first element `>= v` in a short sorted window,
    /// 16 u16 lanes per step. AVX2 has no unsigned 16-bit compare, so both
    /// sides are biased by 0x8000 and compared signed.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_geq_u16_avx2(s: &[u16], v: u16) -> usize {
        let bias = _mm256_set1_epi16(i16::MIN);
        let vv = _mm256_xor_si256(_mm256_set1_epi16(v as i16), bias);
        let mut i = 0usize;
        while i + 16 <= s.len() {
            let x = _mm256_xor_si256(_mm256_loadu_si256(s.as_ptr().add(i).cast()), bias);
            // x >= v  ⇔  !(v > x)
            let lt = _mm256_cmpgt_epi16(vv, x);
            let mask = !(_mm256_movemask_epi8(lt) as u32);
            if mask != 0 {
                return i + (mask.trailing_zeros() / 2) as usize;
            }
            i += 16;
        }
        i + s[i..].partition_point(|&x| x < v)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fold_f64_avx2(values: &[f64]) -> FoldAgg {
        let mut agg = FoldAgg::new();
        let n = values.len();
        if n >= 4 {
            let mut sums = _mm256_setzero_pd();
            let mut mins = _mm256_set1_pd(f64::INFINITY);
            let mut maxs = _mm256_set1_pd(f64::NEG_INFINITY);
            let mut i = 0usize;
            while i + 4 <= n {
                let v = _mm256_loadu_pd(values.as_ptr().add(i));
                sums = _mm256_add_pd(sums, v);
                mins = _mm256_min_pd(mins, v);
                maxs = _mm256_max_pd(maxs, v);
                i += 4;
            }
            _mm256_storeu_pd(agg.sums.as_mut_ptr(), sums);
            _mm256_storeu_pd(agg.mins.as_mut_ptr(), mins);
            _mm256_storeu_pd(agg.maxs.as_mut_ptr(), maxs);
            agg.count = i as u64;
            for &v in &values[i..] {
                agg.push(v);
            }
        } else {
            for &v in values {
                agg.push(v);
            }
        }
        agg
    }

    /// Gather-based fixed-width unpack: 4 values per step, each read as an
    /// unaligned 8-byte window via `vpgatherqq`, shifted right by its bit
    /// offset within the byte and masked. Caller guarantees
    /// `width <= 56`, so `offset (≤7) + width ≤ 63` always fits the window.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn unpack_bits_avx2(
        bytes: &[u8],
        bit_start: usize,
        width: u32,
        out: &mut [u64],
    ) {
        let m = super::width_mask(width);
        let mvec = _mm256_set1_epi64x(m as i64);
        let w = width as usize;
        let n = out.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let p0 = bit_start + i * w;
            let p3 = p0 + 3 * w;
            // The highest lane's window must end inside the buffer.
            if p3 / 8 + 8 > bytes.len() {
                break;
            }
            let (p1, p2) = (p0 + w, p0 + 2 * w);
            let idx = _mm256_set_epi64x(
                (p3 / 8) as i64,
                (p2 / 8) as i64,
                (p1 / 8) as i64,
                (p0 / 8) as i64,
            );
            // SAFETY (gather): every lane reads 8 bytes at byte offset
            // p/8, and p3/8 + 8 <= bytes.len() bounds all four.
            let windows = _mm256_i64gather_epi64::<1>(bytes.as_ptr().cast(), idx);
            let shifts = _mm256_set_epi64x(
                (p3 % 8) as i64,
                (p2 % 8) as i64,
                (p1 % 8) as i64,
                (p0 % 8) as i64,
            );
            let vals = _mm256_and_si256(_mm256_srlv_epi64(windows, shifts), mvec);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), vals);
            i += 4;
        }
        // Tail (and any prefix the bounds check rejected): scalar.
        super::scalar::unpack_bits(bytes, bit_start + i * w, width, &mut out[i..]);
    }

    /// Hardware dictionary gather. Indices are bounds-checked in scalar
    /// code per 4-lane block before the `vgatherqpd` is issued.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_f64_avx2(dict: &[f64], idx: &[u64], out: &mut [f64]) -> bool {
        let bound = dict.len() as u64;
        let n = idx.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let (i0, i1, i2, i3) = (idx[i], idx[i + 1], idx[i + 2], idx[i + 3]);
            if i0 >= bound || i1 >= bound || i2 >= bound || i3 >= bound {
                return false;
            }
            let iv = _mm256_set_epi64x(i3 as i64, i2 as i64, i1 as i64, i0 as i64);
            // SAFETY (gather): all four indices verified `< dict.len()`.
            let v = _mm256_i64gather_pd::<8>(dict.as_ptr(), iv);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), v);
            i += 4;
        }
        super::scalar::gather_f64(dict, &idx[i..], &mut out[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_names_round_trip() {
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Simd.name(), "simd");
        // `active` resolves to one of the two concrete paths.
        assert!(matches!(active(), KernelPath::Scalar | KernelPath::Simd));
        let _ = cpu_features();
    }

    #[test]
    fn word_ops_both_paths_agree() {
        let a0: Vec<u64> = (0..1027u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let b: Vec<u64> = (0..1027u64)
            .map(|i| (i + 7).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .collect();
        type WordFn = fn(KernelPath, &mut [u64], &[u64]) -> u64;
        let word_fns: [WordFn; 4] = [
            and_words_path,
            or_words_path,
            andnot_words_path,
            xor_words_path,
        ];
        for f in word_fns {
            let mut s = a0.clone();
            let mut v = a0.clone();
            let cs = f(KernelPath::Scalar, &mut s, &b);
            let cv = f(KernelPath::Simd, &mut v, &b);
            assert_eq!(s, v);
            assert_eq!(cs, cv);
            assert_eq!(cs, popcount_path(KernelPath::Scalar, &s));
        }
        assert_eq!(
            and_card_path(KernelPath::Scalar, &a0, &b),
            and_card_path(KernelPath::Simd, &a0, &b)
        );
        assert_eq!(
            popcount_path(KernelPath::Scalar, &a0),
            popcount_path(KernelPath::Simd, &a0)
        );
    }

    #[test]
    fn probe_matches_partition_point() {
        let s: Vec<u16> = (0..2000u16).map(|i| i * 31).collect();
        for v in [0u16, 1, 30, 31, 32, 61_969, 62_000, u16::MAX] {
            let want = s.partition_point(|&x| x < v);
            assert_eq!(find_first_geq_u16_path(KernelPath::Scalar, &s, v), want);
            assert_eq!(find_first_geq_u16_path(KernelPath::Simd, &s, v), want);
        }
    }

    #[test]
    fn fold_paths_bit_identical_with_specials() {
        let mut vals: Vec<f64> = (0..997).map(|i| (f64::from(i) - 300.0) * 0.377).collect();
        vals[13] = f64::NAN;
        vals[500] = f64::NEG_INFINITY;
        vals[900] = -0.0;
        let a = fold_f64_path(KernelPath::Scalar, &vals);
        let b = fold_f64_path(KernelPath::Simd, &vals);
        // Sum bits are compared modulo NaN payload: arithmetic-produced NaN
        // bits are unspecified in Rust (see module docs).
        let sum_eq = |x: f64, y: f64| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan());
        assert_eq!(a.count(), b.count());
        assert!(sum_eq(a.sum(), b.sum()));
        assert_eq!(a.min().to_bits(), b.min().to_bits());
        assert_eq!(a.max().to_bits(), b.max().to_bits());
        let (s1, m1, x1) = a.lanes();
        let (s2, m2, x2) = b.lanes();
        for l in 0..4 {
            assert!(sum_eq(s1[l], s2[l]), "sum lane {l}");
            assert_eq!(m1[l].to_bits(), m2[l].to_bits(), "min lane {l}");
            assert_eq!(x1[l].to_bits(), x2[l].to_bits(), "max lane {l}");
        }
    }

    #[test]
    fn unpack_and_gather_agree_across_paths() {
        for width in [1u32, 3, 7, 11, 16, 24, 33, 56] {
            let m = width_mask(width);
            let vals: Vec<u64> = (0..317u64)
                .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d) & m)
                .collect();
            let p = crate::intcodec::PackedInts::pack(&vals, width);
            let mut a = vec![0u64; vals.len()];
            let mut b = vec![0u64; vals.len()];
            unpack_bits_path(KernelPath::Scalar, p.as_bytes(), 0, width, &mut a);
            unpack_bits_path(KernelPath::Simd, p.as_bytes(), 0, width, &mut b);
            assert_eq!(a, vals, "scalar unpack width {width}");
            assert_eq!(b, vals, "simd unpack width {width}");
        }
        let dict: Vec<f64> = (0..64).map(|i| f64::from(i) * 1.5 - 3.0).collect();
        let idx: Vec<u64> = (0..333u64).map(|i| i % 64).collect();
        let mut a = vec![0f64; idx.len()];
        let mut b = vec![0f64; idx.len()];
        assert!(gather_f64_path(KernelPath::Scalar, &dict, &idx, &mut a));
        assert!(gather_f64_path(KernelPath::Simd, &dict, &idx, &mut b));
        assert_eq!(a, b);
        let bad = vec![64u64];
        assert!(!gather_f64_path(
            KernelPath::Scalar,
            &dict,
            &bad,
            &mut [0.0]
        ));
        assert!(!gather_f64_path(KernelPath::Simd, &dict, &bad, &mut [0.0]));
    }
}
