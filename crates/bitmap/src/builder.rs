//! Bulk construction of bitmaps from ascending id streams.

use crate::bitmap::{split, Bitmap};
use crate::container::{Container, Run};
use crate::RecordId;

/// Builds a [`Bitmap`] from strictly ascending ids in O(1) amortized per id.
///
/// Record ids are handed out sequentially by the loader, so every bitmap
/// column is built through this path: values land directly in run containers
/// without any per-insert search.
#[derive(Default)]
pub struct BitmapBuilder {
    keys: Vec<u16>,
    containers: Vec<Container>,
    current_key: Option<u16>,
    runs: Vec<Run>,
    last: Option<RecordId>,
}

impl BitmapBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `v`, which must be strictly greater than every id appended so
    /// far.
    ///
    /// # Panics
    ///
    /// Panics when ids are appended out of order or duplicated.
    pub fn push(&mut self, v: RecordId) {
        assert!(
            self.last.is_none_or(|l| l < v),
            "BitmapBuilder::push out of order: {v} after {:?}",
            self.last
        );
        self.last = Some(v);
        let (key, low) = split(v);
        if self.current_key != Some(key) {
            self.flush_chunk();
            self.current_key = Some(key);
        }
        match self.runs.last_mut() {
            Some(r) if u32::from(r.end()) + 1 == u32::from(low) => r.len += 1,
            _ => self.runs.push(Run { start: low, len: 0 }),
        }
    }

    fn flush_chunk(&mut self) {
        if let Some(key) = self.current_key.take() {
            let mut c = Container::Runs(std::mem::take(&mut self.runs));
            c.optimize();
            self.keys.push(key);
            self.containers.push(c);
        }
    }

    /// Finishes the build.
    pub fn finish(mut self) -> Bitmap {
        self.flush_chunk();
        let mut b = Bitmap::new();
        for (key, c) in self.keys.into_iter().zip(self.containers) {
            b.push_container(key, c);
        }
        b
    }
}

impl FromIterator<RecordId> for BitmapBuilder {
    fn from_iter<T: IntoIterator<Item = RecordId>>(iter: T) -> Self {
        let mut b = BitmapBuilder::new();
        for v in iter {
            b.push(v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_same_set_as_inserts() {
        let ids: Vec<u32> = (0..50_000u32).filter(|v| v % 7 != 3).collect();
        let built = ids.iter().copied().collect::<BitmapBuilder>().finish();
        let inserted: Bitmap = ids.iter().copied().collect();
        assert_eq!(built, inserted);
        assert_eq!(built.len(), ids.len() as u64);
    }

    #[test]
    fn chunk_boundaries_are_respected() {
        let ids = [65_534u32, 65_535, 65_536, 65_537, 200_000];
        let b = ids.iter().copied().collect::<BitmapBuilder>().finish();
        assert_eq!(b.to_vec(), ids);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_out_of_order() {
        let mut b = BitmapBuilder::new();
        b.push(10);
        b.push(10);
    }

    #[test]
    fn empty_builder_finishes_empty() {
        assert!(BitmapBuilder::new().finish().is_empty());
    }
}
