//! Ascending-order iteration over a bitmap.

use crate::bitmap::{join, Bitmap};
use crate::container::{Container, Run};
use crate::RecordId;

/// Iterator over the ids of a [`Bitmap`], in ascending order.
pub struct Iter<'a> {
    bitmap: &'a Bitmap,
    /// Index of the container currently being drained.
    chunk: usize,
    state: ChunkIter<'a>,
}

enum ChunkIter<'a> {
    Done,
    Array(std::slice::Iter<'a, u16>),
    Words {
        words: &'a [u64],
        word_idx: usize,
        current: u64,
    },
    Runs {
        runs: std::slice::Iter<'a, Run>,
        /// Remaining values of the active run, as a half-open u32 range so a
        /// full-chunk run does not overflow.
        lo: u32,
        hi: u32,
    },
}

impl<'a> Iter<'a> {
    pub(crate) fn new(bitmap: &'a Bitmap) -> Self {
        let mut it = Iter {
            bitmap,
            chunk: 0,
            state: ChunkIter::Done,
        };
        it.load_chunk();
        it
    }

    fn load_chunk(&mut self) {
        self.state = match self.bitmap.containers.get(self.chunk) {
            None => ChunkIter::Done,
            Some(Container::Array(a)) => ChunkIter::Array(a.iter()),
            Some(Container::Words(w)) => ChunkIter::Words {
                words: &w.bits,
                word_idx: 0,
                current: w.bits[0],
            },
            Some(Container::Runs(rs)) => ChunkIter::Runs {
                runs: rs.iter(),
                lo: 0,
                hi: 0,
            },
        };
    }

    fn next_low(&mut self) -> Option<u16> {
        match &mut self.state {
            ChunkIter::Done => None,
            ChunkIter::Array(it) => it.next().copied(),
            ChunkIter::Words {
                words,
                word_idx,
                current,
            } => loop {
                if *current != 0 {
                    let tz = current.trailing_zeros();
                    *current &= *current - 1;
                    return Some((*word_idx as u16) << 6 | tz as u16);
                }
                *word_idx += 1;
                if *word_idx >= words.len() {
                    return None;
                }
                *current = words[*word_idx];
            },
            ChunkIter::Runs { runs, lo, hi } => {
                if lo >= hi {
                    let r = runs.next()?;
                    *lo = u32::from(r.start);
                    *hi = u32::from(r.end()) + 1;
                }
                let v = *lo as u16;
                *lo += 1;
                Some(v)
            }
        }
    }
}

impl Iterator for Iter<'_> {
    type Item = RecordId;

    fn next(&mut self) -> Option<RecordId> {
        loop {
            if let Some(low) = self.next_low() {
                return Some(join(self.bitmap.keys[self.chunk], low));
            }
            if self.chunk + 1 >= self.bitmap.containers.len() {
                return None;
            }
            self.chunk += 1;
            self.load_chunk();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Cheap lower bound: we do not track position, so report unknown.
        (0, self.bitmap.len().try_into().ok())
    }
}

impl Bitmap {
    /// Calls `f` for every id in ascending order.
    ///
    /// Equivalent to draining [`Bitmap::iter`] but without per-item iterator
    /// state, so the per-id cost is a branch and a shift; fused kernels that
    /// fold millions of ids use this path.
    pub fn for_each(&self, mut f: impl FnMut(RecordId)) {
        for (ci, c) in self.containers.iter().enumerate() {
            let key = self.keys[ci];
            match c {
                Container::Array(a) => {
                    for &low in a {
                        f(join(key, low));
                    }
                }
                Container::Words(w) => {
                    for (wi, &bits) in w.bits.iter().enumerate() {
                        let mut word = bits;
                        while word != 0 {
                            let tz = word.trailing_zeros();
                            f(join(key, (wi as u16) << 6 | tz as u16));
                            word &= word - 1;
                        }
                    }
                }
                Container::Runs(rs) => {
                    for r in rs {
                        for low in u32::from(r.start)..=u32::from(r.end()) {
                            f(join(key, low as u16));
                        }
                    }
                }
            }
        }
    }
}

impl<'a> IntoIterator for &'a Bitmap {
    type Item = RecordId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use crate::Bitmap;

    #[test]
    fn iterates_sorted_across_chunk_forms() {
        let mut b = Bitmap::from_range(60_000..70_000); // spans two chunks
        b.extend([5u32, 500_000, 500_007]);
        b.optimize();
        let v = b.to_vec();
        assert_eq!(v.len(), 10_003);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v[0], 5);
        assert_eq!(*v.last().unwrap(), 500_007);
    }

    #[test]
    fn iter_matches_contains() {
        let b: Bitmap = (0..1000u32).map(|v| v * v).collect();
        for v in &b {
            assert!(b.contains(v));
        }
        assert_eq!(b.iter().count() as u64, b.len());
    }

    #[test]
    fn full_chunk_run_iterates_fully() {
        let mut b = Bitmap::from_range(0..65_536);
        b.optimize();
        assert_eq!(b.iter().count(), 65_536);
        assert_eq!(b.iter().last(), Some(65_535));
    }
}
