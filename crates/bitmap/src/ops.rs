//! Binary set algebra between bitmaps.
//!
//! The paper reduces graph-query evaluation to conjunctions of edge bitmaps
//! and logical query combinators to OR / AND NOT over result bitmaps
//! (Section 3.2), so these four operations carry the whole query engine.

use crate::bitmap::Bitmap;

impl Bitmap {
    /// Intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(c) = self.containers[i].and(&other.containers[j]) {
                        out.push_container(self.keys[i], c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() || j < other.keys.len() {
            let ka = self.keys.get(i).copied();
            let kb = other.keys.get(j).copied();
            match (ka, kb) {
                (Some(a), Some(b)) if a == b => {
                    out.push_container(a, self.containers[i].or(&other.containers[j]));
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (Some(a), None) => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// Difference: ids in `self` but not in `other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        for (i, &k) in self.keys.iter().enumerate() {
            match other.keys.binary_search(&k) {
                Ok(j) => {
                    if let Some(c) = self.containers[i].and_not(&other.containers[j]) {
                        out.push_container(k, c);
                    }
                }
                Err(_) => out.push_container(k, self.containers[i].clone()),
            }
        }
        out
    }

    /// Symmetric difference.
    pub fn xor(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() || j < other.keys.len() {
            let ka = self.keys.get(i).copied();
            let kb = other.keys.get(j).copied();
            match (ka, kb) {
                (Some(a), Some(b)) if a == b => {
                    if let Some(c) = self.containers[i].xor(&other.containers[j]) {
                        out.push_container(a, c);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (Some(a), None) => {
                    out.push_container(a, self.containers[i].clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push_container(b, other.containers[j].clone());
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// In-place intersection: `*self &= other`.
    ///
    /// Dense (words) chunks are intersected without reallocating, which is
    /// what makes the repeated ANDs of query evaluation cheap; other chunk
    /// forms fall back to allocating the result container.
    pub fn and_assign(&mut self, other: &Bitmap) {
        let mut write = 0usize;
        for read in 0..self.keys.len() {
            let k = self.keys[read];
            let Ok(j) = other.keys.binary_search(&k) else {
                continue;
            };
            let keep = {
                let mine = &mut self.containers[read];
                match (&mut *mine, &other.containers[j]) {
                    (
                        crate::container::Container::Words(a),
                        crate::container::Container::Words(b),
                    ) => {
                        for i in 0..crate::container::WORDS {
                            a.bits[i] &= b.bits[i];
                        }
                        a.recount();
                        mine.shrink();
                        !mine.is_empty()
                    }
                    (mine_ref, theirs) => match mine_ref.and(theirs) {
                        Some(c) => {
                            *mine_ref = c;
                            true
                        }
                        None => false,
                    },
                }
            };
            if keep {
                self.keys.swap(write, read);
                self.containers.swap(write, read);
                write += 1;
            }
        }
        self.keys.truncate(write);
        self.containers.truncate(write);
    }

    /// In-place union: `*self |= other`.
    pub fn or_assign(&mut self, other: &Bitmap) {
        // Union changes the key set; build via the allocating path but only
        // for chunks that actually differ.
        *self = self.or(other);
    }

    /// Conjunction of many bitmaps — the core of graph-query evaluation.
    ///
    /// Intersects cheapest-first (smallest cardinality) so the running result
    /// shrinks as fast as possible; returns the empty bitmap for no inputs.
    pub fn and_many<'a, I>(bitmaps: I) -> Bitmap
    where
        I: IntoIterator<Item = &'a Bitmap>,
    {
        let mut v: Vec<&Bitmap> = bitmaps.into_iter().collect();
        let Some(smallest) = v
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| b.len())
            .map(|(i, _)| i)
        else {
            return Bitmap::new();
        };
        let first = v.swap_remove(smallest);
        let mut acc = first.clone();
        v.sort_by_key(|b| b.len());
        for b in v {
            if acc.is_empty() {
                break;
            }
            acc.and_assign(b);
        }
        acc
    }

    /// Disjunction of many bitmaps.
    pub fn or_many<'a, I>(bitmaps: I) -> Bitmap
    where
        I: IntoIterator<Item = &'a Bitmap>,
    {
        let mut acc = Bitmap::new();
        for b in bitmaps {
            acc = acc.or(b);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(vals: &[u32]) -> Bitmap {
        vals.iter().copied().collect()
    }

    #[test]
    fn and_or_andnot_xor_basic() {
        let a = bm(&[1, 2, 3, 100_000, 200_000]);
        let b = bm(&[2, 3, 4, 200_000]);
        assert_eq!(a.and(&b).to_vec(), vec![2, 3, 200_000]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 2, 3, 4, 100_000, 200_000]);
        assert_eq!(a.and_not(&b).to_vec(), vec![1, 100_000]);
        assert_eq!(a.xor(&b).to_vec(), vec![1, 4, 100_000]);
    }

    #[test]
    fn ops_with_empty() {
        let a = bm(&[5, 70_000]);
        let e = Bitmap::new();
        assert!(a.and(&e).is_empty());
        assert_eq!(a.or(&e), a);
        assert_eq!(a.and_not(&e), a);
        assert_eq!(a.xor(&e), a);
        assert_eq!(e.and_not(&a), e);
    }

    #[test]
    fn and_many_orders_by_cardinality() {
        let a: Bitmap = (0..10_000u32).collect();
        let b: Bitmap = (5_000..15_000u32).collect();
        let c = bm(&[5_001, 5_002, 20_000]);
        let r = Bitmap::and_many([&a, &b, &c]);
        assert_eq!(r.to_vec(), vec![5_001, 5_002]);
    }

    #[test]
    fn and_many_empty_input() {
        assert!(Bitmap::and_many(std::iter::empty::<&Bitmap>()).is_empty());
    }

    #[test]
    fn or_many_unions_all() {
        let parts: Vec<Bitmap> = (0..5u32).map(|i| bm(&[i, i + 100])).collect();
        let r = Bitmap::or_many(parts.iter());
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn and_assign_matches_and() {
        let cases: Vec<(Bitmap, Bitmap)> = vec![
            ((0..100_000u32).collect(), (50_000..150_000u32).collect()),
            (bm(&[1, 70_000]), bm(&[2, 70_000])),
            (Bitmap::from_range(0..70_000), bm(&[5, 65_000, 69_999])),
            (bm(&[1]), Bitmap::new()),
            (
                (0..200_000u32).step_by(3).collect(),
                (0..200_000u32).step_by(2).collect(),
            ),
        ];
        for (a, b) in cases {
            let expect = a.and(&b);
            let mut inplace = a.clone();
            inplace.and_assign(&b);
            assert_eq!(inplace, expect);
            let mut orr = a.clone();
            orr.or_assign(&b);
            assert_eq!(orr, a.or(&b));
        }
    }

    #[test]
    fn ops_across_dense_and_run_forms() {
        let mut a = Bitmap::from_range(0..100_000);
        a.optimize();
        let b: Bitmap = (0..200_000u32).step_by(3).collect();
        let r = a.and(&b);
        assert_eq!(r.len(), 100_000_u64.div_ceil(3));
        let u = a.or(&b);
        assert_eq!(u.len(), 100_000 + (200_000u64 - 100_002).div_ceil(3));
    }
}
